//! Offline drop-in subset of `proptest`.
//!
//! Implements the API surface this workspace's property tests use: the
//! [`proptest!`] macro, [`prelude::any`], integer-range strategies, string
//! strategies from a small regex subset, tuple strategies, and
//! [`collection::vec`]. Cases are generated from a fixed seed so failures
//! reproduce; there is NO shrinking — a failing case panics with its inputs
//! printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Number of cases each `proptest!` test runs.
pub const DEFAULT_CASES: usize = 96;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for any value of a type, uniform over its range.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                // Uniform in [start, end): 53 (or 24) random mantissa bits.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start() + unit * (self.end() - self.start())
            }
        }
    )*};
}
impl_float_range_strategies!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// `&str` strategies generate strings matching a regex subset: literals,
/// `[a-z0-9]` classes, `(...)` groups, `a|b` alternation, and the
/// quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::generate(&ast, rng, &mut out);
        out
    }
}

mod regex {
    //! Tiny regex-subset parser/generator for string strategies.
    use rand::rngs::StdRng;
    use rand::Rng;

    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, usize, usize),
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let (nodes, consumed) = parse_alternatives(&chars, 0, None);
        assert_eq!(
            consumed,
            chars.len(),
            "proptest shim: trailing characters in pattern {pattern:?}"
        );
        match nodes.len() {
            1 => nodes.into_iter().next().unwrap(),
            _ => vec![Node::Group(nodes)],
        }
    }

    /// Parses `a|b|c` until `stop` (exclusive) or end; returns the branches
    /// and the index after the last consumed character.
    fn parse_alternatives(
        chars: &[char],
        mut i: usize,
        stop: Option<char>,
    ) -> (Vec<Vec<Node>>, usize) {
        let mut branches = Vec::new();
        let mut current = Vec::new();
        while i < chars.len() {
            let c = chars[i];
            if Some(c) == stop {
                break;
            }
            match c {
                '|' => {
                    branches.push(std::mem::take(&mut current));
                    i += 1;
                }
                '(' => {
                    let (inner, after) = parse_alternatives(chars, i + 1, Some(')'));
                    assert!(
                        after < chars.len() && chars[after] == ')',
                        "proptest shim: unclosed group"
                    );
                    i = after + 1;
                    let node = Node::Group(inner);
                    i = maybe_quantify(chars, i, node, &mut current);
                }
                '[' => {
                    let (ranges, after) = parse_class(chars, i + 1);
                    i = after;
                    let node = Node::Class(ranges);
                    i = maybe_quantify(chars, i, node, &mut current);
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "proptest shim: dangling backslash");
                    let node = Node::Literal(chars[i + 1]);
                    i += 2;
                    i = maybe_quantify(chars, i, node, &mut current);
                }
                _ => {
                    let node = Node::Literal(c);
                    i += 1;
                    i = maybe_quantify(chars, i, node, &mut current);
                }
            }
        }
        branches.push(current);
        (branches, i)
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = chars[i];
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((lo, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((lo, lo));
                i += 1;
            }
        }
        assert!(i < chars.len(), "proptest shim: unclosed character class");
        (ranges, i + 1)
    }

    fn maybe_quantify(chars: &[char], i: usize, node: Node, out: &mut Vec<Node>) -> usize {
        match chars.get(i) {
            Some('?') => {
                out.push(Node::Repeat(Box::new(node), 0, 1));
                i + 1
            }
            Some('*') => {
                out.push(Node::Repeat(Box::new(node), 0, 8));
                i + 1
            }
            Some('+') => {
                out.push(Node::Repeat(Box::new(node), 1, 8));
                i + 1
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("proptest shim: unclosed {} quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                out.push(Node::Repeat(Box::new(node), lo, hi));
                close + 1
            }
            _ => {
                out.push(node);
                i
            }
        }
    }

    pub fn generate(nodes: &[Node], rng: &mut StdRng, out: &mut String) {
        for node in nodes {
            generate_one(node, rng, out);
        }
    }

    fn generate_one(node: &Node, rng: &mut StdRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo);
                out.push(c);
            }
            Node::Group(branches) => {
                let branch = &branches[rng.gen_range(0..branches.len())];
                generate(branch, rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    generate_one(inner, rng, out);
                }
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a `Vec` strategy; `len` is any usize strategy (a range or a
    /// fixed size).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Lengths accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::Strategy;
}

pub mod prelude {
    //! Common imports for property tests.
    pub use super::collection;
    pub use super::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs one strategy; used by the [`proptest!`] expansion.
pub fn draw<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Derives the per-test RNG seed. Override with `PROPTEST_SEED` to
/// reproduce a CI failure locally.
pub fn base_seed(test_name: &str) -> u64 {
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x9e37_79b9);
    let mut h = env ^ 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0u8..10, v in collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])+
        fn $name() {
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::base_seed(stringify!($name)),
            );
            for __case in 0..$crate::DEFAULT_CASES {
                $(let $arg = $crate::draw(&$strategy, &mut __rng);)+
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), "={:?}"),+),
                    __case, $(&$arg),+
                );
                let __run = || -> () { $body };
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let Err(__panic) = __result {
                    eprintln!("proptest failure inputs: {__inputs}");
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )+};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when the assumption doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[doc(hidden)]
pub use rand as __rand;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_vecs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = super::draw(&(0u8..4), &mut rng);
            assert!(x < 4);
            let v = super::draw(&collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = super::draw(&"[a-z0-9]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let p = super::draw(&"[a-z]{1,4}(/[a-z]{1,4}){0,2}", &mut rng);
            assert!(
                p.split('/').all(|seg| (1..=4).contains(&seg.len())),
                "{p:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u16..100, pair in (any::<u8>(), any::<bool>())) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.0 as u32 + 1, u32::from(pair.0) + 1);
        }
    }
}
