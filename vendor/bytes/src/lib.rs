//! Offline drop-in subset of the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer. Only the surface this workspace uses is
//! implemented (`from`, `from_static`, deref to `[u8]`, slicing helpers).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Views the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }

    /// Returns a zero-copy sub-slice sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for Bytes {
        fn to_value(&self) -> Value {
            Value::Seq(
                self.as_slice()
                    .iter()
                    .map(|&b| Value::UInt(b.into()))
                    .collect(),
            )
        }
    }

    impl Deserialize for Bytes {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let bytes: Vec<u8> = Vec::<u8>::from_value(v)?;
            Ok(Bytes::from(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_slices() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let st = Bytes::from_static(&[9, 9]);
        assert_eq!(st, Bytes::from(vec![9, 9]));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
