//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! The real crate's locks don't poison; this shim matches that by
//! unwrapping poison errors (a panicked writer aborts the test run anyway).

#![forbid(unsafe_code)]

use std::sync;

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
