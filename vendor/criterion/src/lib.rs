//! Offline drop-in subset of `criterion`.
//!
//! Keeps the workspace's bench sources compiling and runnable without the
//! real crate: [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! and [`black_box`]. Measurement is a simple best-of-samples wall-clock
//! loop with text output — no statistics, plots, or HTML reports.
//!
//! Passing `--test` (as `cargo test` does for bench targets) or setting
//! `CRITERION_FAST=1` runs every benchmark body exactly once, so benches
//! double as smoke tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    fast: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            fast: std::env::var_os("CRITERION_FAST").is_some(),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builds the harness from CLI arguments (`--test` selects fast mode).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        if std::env::args().any(|a| a == "--test") {
            c.fast = true;
        }
        c
    }

    /// Mirrors criterion's builder API; CLI filtering is not implemented.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.fast = true;
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        run_benchmark(&label, self.fast, self.default_sample_size, None, |b| f(b));
        self
    }

    /// Prints the closing line, mirroring criterion's summary hook.
    pub fn final_summary(&mut self) {
        println!("(criterion shim: wall-clock timings only, no statistics)");
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize_opt,
    throughput: Option<Throughput>,
}

#[allow(non_camel_case_types)]
type usize_opt = Option<usize>;

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares units of work per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Mirrors criterion's measurement-time knob; ignored by the shim.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Mirrors criterion's warm-up knob; ignored by the shim.
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(
            &label,
            self.criterion.fast,
            samples,
            self.throughput.as_ref(),
            |b| f(b),
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(
            &label,
            self.criterion.fast,
            samples,
            self.throughput.as_ref(),
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversions accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    fast: bool,
    samples: usize,
    throughput: Option<&Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if fast {
        f(&mut bencher);
        println!("bench {label}: ok (fast mode, 1 iteration)");
        return;
    }
    // Warm-up pass, then best-of-N single-iteration samples. "Best of"
    // rather than mean keeps scheduler noise out of the headline number.
    f(&mut bencher);
    let mut best = Duration::MAX;
    for _ in 0..samples.clamp(1, 100) {
        f(&mut bencher);
        if bencher.elapsed < best {
            best = bencher.elapsed;
        }
    }
    let nanos = best.as_nanos().max(1);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = *n as f64 / best.as_secs_f64().max(1e-12);
            println!("bench {label}: {nanos} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = *n as f64 / best.as_secs_f64().max(1e-12);
            println!("bench {label}: {nanos} ns/iter ({rate:.0} B/s)");
        }
        None => println!("bench {label}: {nanos} ns/iter"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            let _ = $config;
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("one", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        group.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(runs >= 1);
    }
}
