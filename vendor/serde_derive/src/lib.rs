//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! shim, written without `syn`/`quote`: the item is parsed from its token
//! string with a small hand-rolled scanner, and the impl is emitted as a
//! formatted string parsed back into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields, tuple structs (newtype transparent), unit
//!   structs;
//! * enums with unit, tuple (newtype transparent), and struct variants;
//! * field attributes `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]`.
//!
//! Generics are intentionally unsupported — the shim fails loudly rather
//! than emitting subtly wrong impls.

use proc_macro::TokenStream;

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default_path: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
}

impl Cursor {
    fn new(s: &str) -> Self {
        Cursor {
            chars: s.chars().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.pos += 1;
            }
            // rustc renders doc comments verbatim in `TokenStream::to_string()`;
            // treat them (and ordinary comments) as whitespace.
            if self.peek() == Some('/') && self.chars.get(self.pos + 1) == Some(&'/') {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.pos += 1;
                }
                continue;
            }
            if self.peek() == Some('/') && self.chars.get(self.pos + 1) == Some(&'*') {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(), self.chars.get(self.pos + 1).copied()) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        (Some(_), _) => self.pos += 1,
                        (None, _) => break,
                    }
                }
                continue;
            }
            break;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char, ctx: &str) {
        if !self.eat(c) {
            panic!(
                "serde_derive shim: expected `{c}` {ctx}, found `{:?}` at {}",
                self.peek(),
                self.pos
            );
        }
    }

    fn read_ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        // Accept raw identifiers.
        if self.peek() == Some('r') && self.chars.get(self.pos + 1) == Some(&'#') {
            self.pos += 2;
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(self.chars[start..self.pos].iter().collect())
        }
    }

    /// Skips a string literal assuming the opening quote was consumed.
    fn skip_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Reads a string literal (with quotes), returning its raw contents.
    fn read_string(&mut self) -> Option<String> {
        self.skip_ws();
        if self.peek() != Some('"') {
            return None;
        }
        self.bump();
        let start = self.pos;
        self.skip_string_body();
        Some(self.chars[start..self.pos - 1].iter().collect())
    }

    /// Consumes a balanced bracket group assuming the opener was consumed.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            match c {
                '"' => self.skip_string_body(),
                c if c == open => depth += 1,
                c if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
        panic!("serde_derive shim: unbalanced `{open}{close}` group");
    }

    /// Consumes `#[...]`, returning the raw attribute text (inside brackets).
    fn read_attr(&mut self) -> String {
        self.expect('#', "to start an attribute");
        // `#![...]` inner attributes don't occur on derive input fields.
        self.expect('[', "after `#`");
        let start = self.pos;
        self.skip_balanced('[', ']');
        self.chars[start..self.pos - 1].iter().collect()
    }

    /// Skips a type (or expression) up to a top-level `,` or until the
    /// closing delimiter of the surrounding group (not consumed).
    fn skip_to_comma_or(&mut self, terminator: char) {
        let mut angle = 0usize;
        let mut round = 0usize;
        let mut square = 0usize;
        let mut brace = 0usize;
        loop {
            self.skip_ws();
            let Some(c) = self.peek() else { return };
            let at_top = angle == 0 && round == 0 && square == 0 && brace == 0;
            if at_top && (c == ',' || c == terminator) {
                return;
            }
            self.bump();
            match c {
                '"' => self.skip_string_body(),
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                '(' => round += 1,
                ')' => round = round.saturating_sub(1),
                '[' => square += 1,
                ']' => square = square.saturating_sub(1),
                '{' => brace += 1,
                '}' => brace = brace.saturating_sub(1),
                _ => {}
            }
        }
    }
}

/// Parses a `#[serde(...)]` attribute body (e.g. `serde(skip, default = "p")`).
fn apply_serde_attr(attr: &str, field: &mut Field) {
    let Some(rest) = attr.trim().strip_prefix("serde") else {
        return;
    };
    let mut c = Cursor::new(rest);
    if !c.eat('(') {
        return;
    }
    loop {
        c.skip_ws();
        let Some(word) = c.read_ident() else { break };
        match word.as_str() {
            "skip" | "skip_serializing" | "skip_deserializing" => field.skip = true,
            "default" => {
                if c.eat('=') {
                    field.default_path = c.read_string();
                } else if field.default_path.is_none() {
                    field.default_path = Some(String::new());
                }
            }
            other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
        }
        if !c.eat(',') {
            break;
        }
    }
}

/// Parses named fields inside `{ ... }`; the opening brace must be consumed.
fn parse_named_fields(c: &mut Cursor) -> Vec<Field> {
    let mut fields = Vec::new();
    loop {
        c.skip_ws();
        if c.eat('}') {
            return fields;
        }
        let mut field = Field {
            name: String::new(),
            skip: false,
            default_path: None,
        };
        while {
            c.skip_ws();
            c.peek() == Some('#')
        } {
            let attr = c.read_attr();
            apply_serde_attr(&attr, &mut field);
        }
        let mut name = c
            .read_ident()
            .unwrap_or_else(|| panic!("serde_derive shim: expected field name"));
        if name == "pub" {
            c.skip_ws();
            if c.peek() == Some('(') {
                c.bump();
                c.skip_balanced('(', ')');
            }
            name = c
                .read_ident()
                .unwrap_or_else(|| panic!("serde_derive shim: expected field name after pub"));
        }
        field.name = name;
        c.expect(':', "after field name");
        c.skip_to_comma_or('}');
        fields.push(field);
        if !c.eat(',') {
            c.expect('}', "to close the field list");
            return fields;
        }
    }
}

/// Counts tuple elements inside `( ... )`; the opening paren must be consumed.
fn parse_tuple_arity(c: &mut Cursor) -> usize {
    let mut arity = 0usize;
    loop {
        c.skip_ws();
        if c.eat(')') {
            return arity;
        }
        // Skip any attributes/visibility on the element.
        while {
            c.skip_ws();
            c.peek() == Some('#')
        } {
            c.read_attr();
        }
        c.skip_to_comma_or(')');
        arity += 1;
        if !c.eat(',') {
            c.expect(')', "to close the tuple");
            return arity;
        }
    }
}

fn parse_item(source: &str) -> Item {
    let mut c = Cursor::new(source);
    let kind = loop {
        c.skip_ws();
        match c.peek() {
            Some('#') => {
                c.read_attr();
            }
            None => panic!("serde_derive shim: no struct or enum found"),
            _ => {
                let word = c
                    .read_ident()
                    .unwrap_or_else(|| panic!("serde_derive shim: unexpected `{:?}`", c.peek()));
                match word.as_str() {
                    "pub" => {
                        c.skip_ws();
                        if c.peek() == Some('(') {
                            c.bump();
                            c.skip_balanced('(', ')');
                        }
                    }
                    "struct" | "enum" => break word,
                    // e.g. `union` or oddities: fail loudly.
                    other => panic!("serde_derive shim: unsupported item starter `{other}`"),
                }
            }
        }
    };
    let name = c
        .read_ident()
        .unwrap_or_else(|| panic!("serde_derive shim: expected item name"));
    c.skip_ws();
    if c.peek() == Some('<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    if kind == "struct" {
        c.skip_ws();
        match c.peek() {
            Some('{') => {
                c.bump();
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&mut c),
                }
            }
            Some('(') => {
                c.bump();
                Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(&mut c),
                }
            }
            Some(';') | None => Item::UnitStruct { name },
            other => panic!("serde_derive shim: unexpected `{other:?}` after struct name"),
        }
    } else {
        c.expect('{', "to open the enum body");
        let mut variants = Vec::new();
        loop {
            c.skip_ws();
            if c.eat('}') {
                break;
            }
            while {
                c.skip_ws();
                c.peek() == Some('#')
            } {
                c.read_attr();
            }
            let vname = c
                .read_ident()
                .unwrap_or_else(|| panic!("serde_derive shim: expected variant name"));
            c.skip_ws();
            let kind = match c.peek() {
                Some('(') => {
                    c.bump();
                    VariantKind::Tuple(parse_tuple_arity(&mut c))
                }
                Some('{') => {
                    c.bump();
                    VariantKind::Struct(parse_named_fields(&mut c))
                }
                _ => VariantKind::Unit,
            };
            c.skip_ws();
            if c.peek() == Some('=') {
                // Explicit discriminant: skip the expression.
                c.bump();
                c.skip_to_comma_or('}');
            }
            variants.push(Variant { name: vname, kind });
            if !c.eat(',') {
                c.expect('}', "to close the enum body");
                break;
            }
        }
        Item::Enum { name, variants }
    }
}

fn field_default_expr(field: &Field) -> String {
    match field.default_path.as_deref() {
        Some(path) if !path.is_empty() => format!("{path}()"),
        _ => "::std::default::Default::default()".to_owned(),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{0}\".to_owned(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(__fields)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_owned()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec::Vec::from([(\"{vn}\".to_owned(), {inner})])),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_owned(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec::Vec::from([(\"{vn}\".to_owned(), ::serde::Value::Map(::std::vec::Vec::from([{}])))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_named_field_inits(ty_name: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: {},\n", f.name, field_default_expr(f)));
        } else {
            inits.push_str(&format!(
                "{0}: match {source}.get(\"{0}\") {{\n\
                 Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                 None => match ::serde::Deserialize::from_value(&::serde::Value::Null) {{\n\
                 Ok(__d) => __d,\n\
                 Err(_) => return Err(::serde::DeError::missing_field(\"{ty_name}\", \"{0}\")),\n\
                 }},\n\
                 }},\n",
                f.name
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = gen_named_field_inits(name, fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if __v.as_map().is_none() {{\n\
                 return Err(::serde::DeError::expected(\"object\", __v));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                format!(
                    "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?;\n\
                     if __seq.len() != {arity} {{\n\
                     return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
                 }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             Ok({name})\n\
             }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    unit_arms.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
                }
            }
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__seq[{i}])?")
                                })
                                .collect();
                            format!(
                                "let __seq = __inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner))?;\n\
                                 if __seq.len() != {arity} {{\n\
                                 return Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({}))",
                                items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits =
                            gen_named_field_inits(&format!("{name}::{vn}"), fields, "__inner");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             if __inner.as_map().is_none() {{\n\
                             return Err(::serde::DeError::expected(\"object\", __inner));\n\
                             }}\n\
                             Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::DeError::expected(\"string or single-key object\", __other)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(&input.to_string());
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(&input.to_string());
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}
