//! Offline drop-in subset of `serde_json`: converts between the vendored
//! serde [`Value`] tree and JSON text. Supports `to_string`,
//! `to_string_pretty`, `from_str`, and a `json` error type.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for tree-representable values; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for tree-representable values.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Lowers any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree doesn't match the target type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of JSON"))?;
        self.pos += 1;
        Ok(c)
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        let got = self.bump()?;
        if got != want {
            return Err(Error::new(format!(
                "expected `{want}` at offset {}, found `{got}`",
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        for want in lit.chars() {
            self.expect(want)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some('n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some('t') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some('f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some('[') => {
                self.bump()?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump()?;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        ',' => {}
                        ']' => return Ok(Value::Seq(items)),
                        c => return Err(Error::new(format!("expected `,` or `]`, found `{c}`"))),
                    }
                }
            }
            Some('{') => {
                self.bump()?;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump()?;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        ',' => {}
                        '}' => return Ok(Value::Map(entries)),
                        c => return Err(Error::new(format!("expected `,` or `}}`, found `{c}`"))),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!("unexpected character `{c}` in JSON"))),
            None => Err(Error::new("unexpected end of JSON")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump()?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| Error::new("bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad unicode escape"))?,
                        );
                    }
                    c => return Err(Error::new(format!("bad escape `\\{c}`"))),
                },
                c => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.0f64, 1.5, -2.25, 1e-9, 1234567.875] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "via {text}");
        }
        // Non-finite numbers serialize as null and come back as NaN.
        let text = to_string(&f64::INFINITY).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Map(vec![("k".to_owned(), Value::Seq(vec![Value::UInt(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"k\": [\n"));
        let parsed = parse_value_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12abc").is_err());
        assert!(parse_value_str("{\"a\": }").is_err());
        assert!(parse_value_str("[1,]").is_err());
    }

    #[test]
    fn nested_unicode_escapes() {
        let v: String = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v, "Aé");
    }
}
