//! Offline drop-in subset of `serde`.
//!
//! The real crate is unreachable in this build environment. This shim keeps
//! the workspace's source unchanged (`use serde::{Serialize, Deserialize}`,
//! `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `#[serde(skip, default = "path")]`) by swapping serde's
//! visitor architecture for a simple tree data model: [`Serialize`] lowers a
//! value to a [`Value`], [`Deserialize`] rebuilds it, and `serde_json` only
//! converts between [`Value`] and JSON text.
//!
//! JSON shapes follow serde conventions where it matters for readability:
//! structs → objects, unit enum variants → strings, data-carrying variants →
//! externally tagged single-key objects, `Duration` → `{secs, nanos}`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key when this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Converts `self` to the tree data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value from the tree data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::Int(n) => (*n).into(),
                    Value::UInt(n) => (*n).into(),
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::Int(n) => (*n).into(),
                    Value::UInt(n) => (*n).into(),
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // serde_json convention: non-finite numbers become null.
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
                if seq.len() != $len {
                    return Err(DeError::custom(
                        format!("expected {}-tuple, got array of {}", $len, seq.len()),
                    ));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(
            v.get("secs")
                .ok_or_else(|| DeError::missing_field("Duration", "secs"))?,
        )?;
        let nanos = u32::from_value(
            v.get("nanos")
                .ok_or_else(|| DeError::missing_field("Duration", "nanos"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_owned(), self.start.to_value()),
            ("end".to_owned(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let start = T::from_value(
            v.get("start")
                .ok_or_else(|| DeError::missing_field("Range", "start"))?,
        )?;
        let end = T::from_value(
            v.get("end")
                .ok_or_else(|| DeError::missing_field("Range", "end"))?,
        )?;
        Ok(start..end)
    }
}

/// Static strings round-trip by leaking the decoded allocation. Acceptable
/// here because the workspace only deserializes `&'static str` fields from
/// small artifact files, never in a hot loop.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::expected("string", v))?
            .parse()
            .map_err(|e| DeError::custom(format!("bad IPv4 address: {e}")))
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::expected("string", v))?
            .parse()
            .map_err(|e| DeError::custom(format!("bad IPv6 address: {e}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u16, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (3u8, 250u8);
        assert_eq!(<(u8, u8)>::from_value(&t.to_value()).unwrap(), t);
        let d = Duration::new(3, 456);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let a = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(i8::from_value(&Value::UInt(200)).is_err());
    }
}
