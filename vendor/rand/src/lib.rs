//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The real crate is unreachable in this build environment, so this shim
//! reimplements the narrow surface the workspace uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`/`fill`, [`SeedableRng`] with
//! `seed_from_u64`/`from_seed`, [`rngs::StdRng`] (a deterministic
//! xoshiro256** generator), and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic for a given seed but are NOT bit-compatible
//! with upstream `rand`; everything in this workspace only relies on
//! self-consistency, never on upstream byte streams.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeFrom, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest representable value.
    fn max_value() -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit draw over spans far below 2^64 is irrelevant here.
                let draw = u128::from(rng.next_u64()) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn max_value() -> Self {
        f64::MAX
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample_standard(rng) * (hi - lo)
    }
    fn max_value() -> Self {
        f32::MAX
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeFrom<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::max_value())
    }
}

/// Decrement helper so `a..b` can reuse inclusive sampling.
pub trait Dec {
    /// Returns `self - 1`, panicking on an empty exclusive range.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}
impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Dec for f64 {
    fn dec(self) -> Self {
        self
    }
}
impl Dec for f32 {
    fn dec(self) -> Self {
        self
    }
}

/// User-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly over its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator types.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.
    use super::{Rng, RngCore};

    /// Shuffle/choose extensions on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u16 = rng.gen_range(1024..=65535);
            assert!((1024..=65535).contains(&w));
            let x: usize = rng.gen_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn fill_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
