//! Offline drop-in subset of the `crossbeam` facade.
//!
//! Implements the two pieces the workspace uses:
//!
//! * [`thread::scope`] — scoped spawning with crossbeam's
//!   closure-takes-the-scope signature, delegating to [`std::thread::scope`].
//! * [`channel`] — cloneable bounded MPMC channels with disconnect
//!   semantics, built on `Mutex` + `Condvar`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.
    use std::thread as stdthread;

    /// A scope for spawning borrowed threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread, returning its result (`Err` on panic).
        pub fn join(self) -> stdthread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// again so it can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam this cannot observe an unjoined panic as an
    /// `Err` (std propagates it), so the result is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Bounded MPMC channels with disconnect semantics.
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clone to add producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone to add consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error for [`Sender::send`]: all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Creates a bounded channel with capacity `cap` (minimum 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued or all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Enqueues without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages (racy; for diagnostics only).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Returns `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of queued messages (racy; for diagnostics only).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Returns `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn bounded_channel_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_across_threads() {
        let (tx, rx) = channel::bounded(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            channel::RecvTimeoutError::Disconnected
        );
    }
}
