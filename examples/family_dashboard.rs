//! Attack-family dashboard: deploys one rule table per attack family so
//! the switch's per-family counters tell the operator *which* attack is
//! underway — the multiclass extension of the paper's binary firewall.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p p4guard-examples --example family_dashboard
//! ```

use p4guard::config::GuardConfig;
use p4guard::multiclass::FamilyGuard;
use p4guard_packet::trace::AttackFamily;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let trace = Scenario::mixed_default(7777).generate()?;
    let (train, test) = split_temporal(&trace, 0.6);

    println!("training the family guard (shared stage-1 selection, one rule table per family)…");
    let guard = FamilyGuard::train(GuardConfig::default(), &train)?;
    println!(
        "binary selection: {:?}; {} family tables, {} rules total\n",
        guard.binary.selection.offsets,
        guard.families.len(),
        guard.total_rules()
    );

    // Offline identification report.
    let report = guard.evaluate(&test);
    println!("{report}");

    // Deploy and read back per-family counters, as a NOC dashboard would.
    let control = guard.deploy(100_000)?;
    control.with_switch_mut(|sw| {
        for r in test.iter() {
            let _ = sw.process(&r.frame);
        }
    });
    println!("switch counters after replaying the test window:");
    control.with_switch(|sw| {
        let counters = &sw.counters().user;
        for family in AttackFamily::ALL {
            let hits = counters.get(family.code() as usize).copied().unwrap_or(0);
            if hits > 0 {
                let bar = "#".repeat(((hits as usize) / 20).min(60));
                println!("  {family:<20} {hits:>6}  {bar}");
            }
        }
        println!(
            "  dropped {} of {} received",
            sw.counters().dropped,
            sw.counters().received
        );
    });
    Ok(())
}
