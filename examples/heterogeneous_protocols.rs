//! Universality demo: the same pipeline, untouched, is retargeted at
//! attacks living in four very different protocols — including a non-IP
//! mesh protocol a fixed-field firewall cannot even express — and the
//! learned byte positions land on the semantically right header fields
//! each time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p p4guard-examples --example heterogeneous_protocols
//! ```

use p4guard::baselines::{Detector, FiveTupleFirewall, GuardDetector};
use p4guard::config::GuardConfig;
use p4guard::report::{num3, TextTable};
use p4guard_packet::trace::AttackFamily;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let families = [
        (AttackFamily::MqttFlood, "MQTT (TCP/1883)"),
        (AttackFamily::CoapAmplification, "CoAP (UDP/5683)"),
        (AttackFamily::ModbusAbuse, "Modbus (TCP/502)"),
        (AttackFamily::ZWireHijack, "ZWire (non-IP!)"),
    ];
    let mut table = TextTable::new([
        "attack",
        "protocol",
        "two-stage F1",
        "5-tuple F1",
        "what the pipeline learned to match",
    ]);
    for (family, protocol) in families {
        let trace = Scenario::single_attack(family, 1234).generate()?;
        let (train, test) = split_temporal(&trace, 0.6);
        let guard = GuardDetector::train(GuardConfig::with_k(6), &train)?;
        let five_tuple = FiveTupleFirewall::train(&train);
        let fields = guard.guard().describe_fields(&train);
        table.row([
            family.to_string(),
            protocol.to_owned(),
            num3(guard.evaluate(&test).f1),
            num3(five_tuple.evaluate(&test).f1),
            fields.first().cloned().unwrap_or_default(),
        ]);
    }
    println!("same pipeline, four protocols — no per-protocol engineering:");
    println!("{table}");
    println!(
        "the 5-tuple firewall reads fixed IPv4/TCP offsets, so on ZWire frames it\n\
         matches garbage bytes, and on spoofed or ephemeral flows it memorizes\n\
         tuples that never recur. The byte-level pipeline selects whatever header\n\
         positions separate the classes in *that* protocol."
    );
    Ok(())
}
