//! A Mirai-infection story: an IoT gateway firewall is trained on the
//! first minutes of an infection, deployed, and then filters the rest of
//! the outbreak live — including a staged rollout where new rules start in
//! mirror (observe-only) mode before being switched to drop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p p4guard-examples --example mirai_gateway
//! ```

use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_dataplane::action::Action;
use p4guard_packet::trace::AttackFamily;
use p4guard_packet::trace::Trace;
use p4guard_traffic::scenario::{AttackEvent, Scenario};
use p4guard_traffic::{split_temporal, Fleet};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A smart home where one camera is infected: it scans for telnet
    // victims, brute-forces a sibling device, then joins a SYN flood.
    let mut scenario = Scenario::benign_only(Fleet::smart_home(), 180.0, 7);
    scenario.attacks = vec![
        AttackEvent {
            family: AttackFamily::MiraiScan,
            start_s: 20.0,
            end_s: 170.0,
            intensity: 0.25,
        },
        AttackEvent {
            family: AttackFamily::BruteForce,
            start_s: 40.0,
            end_s: 170.0,
            intensity: 0.8,
        },
        AttackEvent {
            family: AttackFamily::SynFlood,
            start_s: 90.0,
            end_s: 160.0,
            intensity: 0.12,
        },
    ];
    let trace = scenario.generate()?;
    let (train, live) = split_temporal(&trace, 0.45);

    println!(
        "training on the first {} packets of the outbreak…",
        train.len()
    );
    let guard = TwoStagePipeline::new(GuardConfig::default()).train(&train)?;
    println!(
        "learned {} rules over bytes {:?}",
        guard.compiled.stats.entries, guard.selection.offsets
    );
    for name in guard.describe_fields(&train) {
        println!("  matches on {name}");
    }

    // Deploy in observe-only (mirror) mode first — the staged rollout a
    // real operator would use.
    let control = guard.deploy(10_000)?;
    let handles: Vec<_> =
        control.with_switch(|sw| sw.stage(0).entries().iter().map(|e| e.handle).collect());
    control.modify_entries(0, &handles, Action::Mirror(99))?;
    println!("\nphase 1: observe-only (mirror to port 99)");
    let (mirror_window, enforce_window) = split_temporal(&live, 0.3);
    let stats = control.with_switch_mut(|sw| sw.run_trace(&mirror_window));
    let mirrored = control.with_switch(|sw| sw.counters().mirrored);
    println!("  {stats}");
    println!("  {mirrored} suspicious packets mirrored, 0 dropped — operator reviews and approves");

    // Flip to enforcement.
    control.modify_entries(0, &handles, Action::Drop)?;
    control.with_switch_mut(|sw| sw.reset_counters());
    println!("\nphase 2: enforcing");
    let stats = control.with_switch_mut(|sw| sw.run_trace(&enforce_window));
    println!("  {stats}");

    // Per-10-second timeline of what the gateway dropped vs what was
    // actually malicious.
    println!("\ntimeline (10 s buckets): dropped / attack packets");
    let mut verdicts: Vec<(u64, bool, bool)> = Vec::new();
    control.with_switch_mut(|sw| {
        for r in enforce_window.iter() {
            let dropped = sw.process(&r.frame).is_drop();
            verdicts.push((r.timestamp_us / 10_000_000, dropped, r.label.is_attack()));
        }
    });
    let mut buckets: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
    for (bucket, dropped, attack) in verdicts {
        let slot = buckets.entry(bucket).or_default();
        slot.0 += usize::from(dropped);
        slot.1 += usize::from(attack);
    }
    for (bucket, (dropped, attacks)) in buckets {
        let bar = "#".repeat((dropped / 10).min(60));
        println!(
            "  t={:>4}s  {dropped:>5} / {attacks:>5}  {bar}",
            bucket * 10
        );
    }

    let metrics = guard.evaluate_rules(&enforce_window);
    println!(
        "\nenforcement metrics: recall {:.3}, FPR {:.3}",
        metrics.recall, metrics.false_positive_rate
    );
    show_collateral(&guard, &enforce_window);
    Ok(())
}

fn show_collateral(guard: &p4guard::pipeline::TrainedGuard, window: &Trace) {
    let benign_total = window.len() - window.attack_count();
    let benign_dropped = window
        .iter()
        .filter(|r| !r.label.is_attack() && guard.classify_frame(&r.frame) == 1)
        .count();
    println!(
        "collateral damage: {benign_dropped} of {benign_total} benign packets dropped ({:.2}%)",
        100.0 * benign_dropped as f64 / benign_total.max(1) as f64
    );
}
