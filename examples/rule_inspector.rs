//! Rule inspector: shows every intermediate artifact of stage 2 — the
//! distilled decision tree, the range-form paths, the prefix-expanded
//! ternary entries, and a P4-style table definition for the deployment.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p p4guard-examples --example rule_inspector
//! ```

use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let trace = Scenario::mixed_default(99).generate()?;
    let (train, _) = split_temporal(&trace, 0.6);
    let config = GuardConfig::with_k(4); // tiny key so the output is readable
    let guard = TwoStagePipeline::new(config).train(&train)?;

    let names = guard.describe_fields(&train);
    println!("=== match key ({} bytes) ===", guard.selection.k());
    for (i, (offset, name)) in guard.selection.offsets.iter().zip(&names).enumerate() {
        println!("  key[{i}] = frame[{offset}]   // {name}");
    }

    println!(
        "\n=== distilled decision tree ({} leaves, depth {}) ===",
        guard.tree.leaf_count(),
        guard.tree.depth()
    );
    for (i, path) in guard.tree.paths().iter().enumerate() {
        let class = if path.class == 1 { "DROP " } else { "allow" };
        let constraints: Vec<String> = path
            .ranges
            .iter()
            .enumerate()
            .filter(|(_, (lo, hi))| *lo > 0 || *hi < 255)
            .map(|(f, (lo, hi))| format!("key[{f}] in [{lo}, {hi}]"))
            .collect();
        println!(
            "  path {i:>2} [{class}] ({} samples): {}",
            path.samples,
            if constraints.is_empty() {
                "always".to_owned()
            } else {
                constraints.join(" && ")
            }
        );
    }

    let stats = &guard.compiled.stats;
    println!(
        "\n=== ternary expansion: {} attack paths -> {} raw -> {} optimized entries ===",
        stats.paths, stats.entries_raw, stats.entries
    );
    for entry in guard.compiled.ternary.entries().iter().take(24) {
        println!("  {entry}");
    }
    if guard.compiled.ternary.len() > 24 {
        println!("  … {} more", guard.compiled.ternary.len() - 24);
    }

    println!("\n=== equivalent P4 table ===");
    println!("table guard_acl {{");
    println!("    key = {{");
    for (i, name) in names.iter().enumerate() {
        println!("        meta.guard_key[{i}] : ternary;  // {name}");
    }
    println!("    }}");
    println!("    actions = {{ drop; NoAction; }}");
    println!("    size = {};", stats.entries.next_power_of_two().max(16));
    println!("    default_action = NoAction();");
    println!("}}");
    println!(
        "\nTCAM budget: {} entries × {} key bits × 2 = {} bits",
        stats.entries,
        stats.key_width * 8,
        stats.tcam_bits
    );
    Ok(())
}
