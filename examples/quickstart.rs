//! Quickstart: simulate a smart home, train the two-stage pipeline, deploy
//! the compiled rules to a behavioural-model switch, and measure what the
//! data plane catches.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p p4guard-examples --example quickstart
//! ```

use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;
use p4guard_traffic::stats::TraceStats;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Simulate a smart home under attack (Mirai scan, telnet brute
    //    force, MQTT flood, ZWire hijack) with a deterministic seed.
    let trace = Scenario::smart_home_default(42).generate()?;
    println!("=== dataset ===");
    println!("{}", TraceStats::compute(&trace));

    // 2. Split temporally: train on the past, test on the future.
    let (train, test) = split_temporal(&trace, 0.6);

    // 3. Train the two-stage pipeline: stage 1 selects the k most salient
    //    header bytes; stage 2 distills a classifier into ternary rules.
    let config = GuardConfig::default();
    let guard = TwoStagePipeline::new(config).train(&train)?;

    println!("=== stage 1: selected header bytes ===");
    for (offset, name) in guard
        .selection
        .offsets
        .iter()
        .zip(guard.describe_fields(&train))
    {
        println!("  byte {offset:>3}  {name}");
    }

    println!("\n=== stage 2: compiled rules ===");
    let stats = &guard.compiled.stats;
    println!(
        "  {} tree paths -> {} ternary entries ({} TCAM bits, key {} bits)",
        stats.paths,
        stats.entries,
        stats.tcam_bits,
        stats.key_width * 8
    );
    println!("  pipeline time: {:?}", guard.timings.total());

    // 4. Evaluate the rules on unseen (future) traffic.
    let metrics = guard.evaluate_rules(&test);
    println!("\n=== detection on the test split ===");
    println!(
        "  accuracy {:.3}  precision {:.3}  recall {:.3}  F1 {:.3}  FPR {:.3}",
        metrics.accuracy,
        metrics.precision,
        metrics.recall,
        metrics.f1,
        metrics.false_positive_rate
    );

    // 5. Deploy to a P4-style switch and replay the test traffic.
    let control = guard.deploy(10_000)?;
    let stats = control.with_switch_mut(|sw| sw.run_trace(&test));
    println!("\n=== deployed switch ===");
    println!("  {stats}");
    control.with_switch(|sw| {
        println!("{}", sw.resources());
    });
    Ok(())
}
