//! End-to-end integration: simulate → train → select → compile → deploy →
//! enforce, asserting the paper's qualitative claims hold across the
//! whole stack.

use p4guard::baselines::{Detector, FiveTupleFirewall, FullDnn, GuardDetector};
use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;

fn fast() -> GuardConfig {
    GuardConfig::fast()
}

#[test]
fn mixed_scenario_end_to_end() {
    let trace = Scenario::mixed_default(2024).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = TwoStagePipeline::new(fast()).train(&train).unwrap();

    // The compiled rules detect well on the future split.
    let m = guard.evaluate_rules(&test);
    assert!(m.f1 > 0.75, "rule F1 {m:?}");
    assert!(m.false_positive_rate < 0.20, "FPR {m:?}");

    // Deployment agrees exactly with offline classification.
    let control = guard.deploy(200_000).unwrap();
    control.with_switch_mut(|sw| {
        for r in test.iter() {
            assert_eq!(
                sw.process(&r.frame).is_drop(),
                guard.classify_frame(&r.frame) == 1
            );
        }
    });

    // Resource shape: key is k bytes, TCAM bits match the accounting.
    let cost_bits = control.with_switch(|sw| sw.resources().tcam_bits);
    assert_eq!(cost_bits, guard.compiled.stats.tcam_bits);
}

#[test]
fn two_stage_tracks_full_dnn_and_beats_fixed_field() {
    // The abstract's headline claim, checked end to end.
    let trace = Scenario::mixed_default(55).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = GuardDetector::train(fast(), &train).unwrap();
    let dnn = FullDnn::train(&train, 64, 8, 55);
    let five_tuple = FiveTupleFirewall::train(&train);

    let g = guard.evaluate(&test).f1;
    let d = dnn.evaluate(&test).f1;
    let ft = five_tuple.evaluate(&test).f1;
    assert!(g > ft + 0.15, "two-stage {g} vs 5-tuple {ft}");
    assert!(d - g < 0.15, "two-stage {g} should track full DNN {d}");
}

#[test]
fn selected_fields_are_semantically_meaningful() {
    // On a TCP-attack-only scenario the selection should reach into the
    // TCP/IP headers, not the Ethernet addresses.
    let trace = Scenario::single_attack(p4guard_packet::AttackFamily::MiraiScan, 9)
        .generate()
        .unwrap();
    let (train, _) = split_temporal(&trace, 0.7);
    let guard = TwoStagePipeline::new(fast()).train(&train).unwrap();
    let names = guard.describe_fields(&train).join(" ");
    assert!(
        names.contains("tcp.") || names.contains("ipv4."),
        "selection {:?} named {:?}",
        guard.selection.offsets,
        names
    );
}

#[test]
fn retraining_after_a_new_attack_restores_detection() {
    // Train on a scenario with only a SYN flood, then face a DNS tunnel:
    // the old rules miss it; retraining on the new data catches it.
    let syn_only = Scenario::single_attack(p4guard_packet::AttackFamily::SynFlood, 3)
        .generate()
        .unwrap();
    let guard_old = TwoStagePipeline::new(fast()).train(&syn_only).unwrap();

    let dns_attack = Scenario::single_attack(p4guard_packet::AttackFamily::DnsTunnel, 4)
        .generate()
        .unwrap();
    let (dns_train, dns_test) = split_temporal(&dns_attack, 0.6);
    let old_recall = guard_old.evaluate_rules(&dns_test).recall;
    let guard_new = TwoStagePipeline::new(fast()).train(&dns_train).unwrap();
    let new_recall = guard_new.evaluate_rules(&dns_test).recall;
    assert!(
        new_recall > old_recall + 0.3,
        "retrained recall {new_recall} vs stale {old_recall}"
    );
}

#[test]
fn capacity_limits_are_enforced_at_deployment() {
    let trace = Scenario::smart_home_default(8).generate().unwrap();
    let (train, _) = split_temporal(&trace, 0.6);
    let guard = TwoStagePipeline::new(fast()).train(&train).unwrap();
    if guard.compiled.stats.entries > 1 {
        let err = guard.deploy(1).unwrap_err();
        assert!(err.to_string().contains("full"));
    }
    assert!(guard.deploy(100_000).is_ok());
}
