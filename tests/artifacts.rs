//! Artifact round-trips: trained guards persist to JSON and come back
//! byte-identical in behaviour; generated P4 artifacts are consistent with
//! the compiled rule set; pcap mirrors reload.

use p4guard::config::GuardConfig;
use p4guard::p4gen;
use p4guard::pipeline::{TrainedGuard, TwoStagePipeline};
use p4guard_packet::pcap;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;

fn trained() -> (TrainedGuard, p4guard_packet::Trace) {
    let trace = Scenario::smart_home_default(505).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = TwoStagePipeline::new(GuardConfig::fast())
        .train(&train)
        .unwrap();
    (guard, test)
}

#[test]
fn guard_json_round_trip_preserves_decisions() {
    let (guard, test) = trained();
    let restored = TrainedGuard::from_json(&guard.to_json()).unwrap();
    assert_eq!(restored.selection.offsets, guard.selection.offsets);
    for r in test.iter() {
        assert_eq!(
            restored.classify_frame(&r.frame),
            guard.classify_frame(&r.frame)
        );
    }
    // The restored NN scores match too (weights survived serde).
    let a = guard.scores(&test);
    let b = restored.scores(&test);
    assert_eq!(a, b);
}

#[test]
fn p4_entries_match_the_compiled_ruleset() {
    let (guard, _) = trained();
    let entries_text = p4gen::emit_entries(&guard);
    let table_adds = entries_text
        .lines()
        .filter(|l| l.starts_with("table_add"))
        .count();
    assert_eq!(table_adds, guard.compiled.ternary.len());
    // Every entry's value/mask pair appears in the text.
    let first = &guard.compiled.ternary.entries()[0];
    let fragment = format!("0x{:02x}&&&0x{:02x}", first.value[0], first.mask[0]);
    assert!(entries_text.contains(&fragment), "missing {fragment}");
}

#[test]
fn p4_program_references_every_selected_offset() {
    let (guard, test) = trained();
    let names = guard.describe_fields(&test);
    let program = p4gen::emit_program(&guard, &names);
    for i in 0..guard.selection.k() {
        assert!(program.contains(&format!("meta.key{i}")), "missing key{i}");
    }
}

#[test]
fn pcap_mirror_of_generated_trace_reloads() {
    let trace = Scenario::industrial_default(506).generate().unwrap();
    let mut buf = Vec::new();
    pcap::write_pcap(&trace, &mut buf).unwrap();
    let reloaded = pcap::read_pcap(buf.as_slice()).unwrap();
    assert_eq!(reloaded.len(), trace.len());
    // Frames round-trip bit-exact, so they still parse.
    for (a, b) in trace.iter().zip(reloaded.iter()) {
        assert_eq!(a.frame, b.frame);
    }
    // An imported (unlabelled) pcap can still be classified by a guard.
    let (guard, _) = trained();
    let flagged: usize = reloaded
        .iter()
        .map(|r| guard.classify_frame(&r.frame))
        .sum();
    assert!(flagged > 0, "guard flagged nothing on imported traffic");
}
