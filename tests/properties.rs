//! Property-based tests over the core data structures and invariants.

use bytes::Bytes;
use p4guard_dataplane::key::KeyLayout;
use p4guard_features::extract::ByteDataset;
use p4guard_nn::matrix::Matrix;
use p4guard_packet::coap::{CoapCode, CoapMessage, CoapType};
use p4guard_packet::dns::DnsMessage;
use p4guard_packet::ethernet::{EtherType, EthernetHeader};
use p4guard_packet::modbus::{ModbusAdu, ModbusFunction};
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::trace::{Label, Record, Trace};
use p4guard_packet::udp::UdpHeader;
use p4guard_packet::zwire::{ZWireFrame, ZWireType};
use p4guard_packet::MacAddr;
use p4guard_rules::compile::{compile_tree, CompileConfig};
use p4guard_rules::ternary::{range_to_prefixes, TernaryEntry};
use p4guard_rules::tree::{DecisionTree, TreeConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn packet_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = p4guard_packet::parse(&bytes);
    }

    #[test]
    fn ethernet_round_trip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), ethertype in any::<u16>()) {
        let hdr = EthernetHeader::new(MacAddr(dst), MacAddr(src), EtherType::from_u16(ethertype));
        // A VLAN ethertype with no tag body cannot round-trip as untagged.
        prop_assume!(hdr.ethertype != EtherType::Vlan);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        let (decoded, used) = EthernetHeader::decode(&buf).unwrap();
        prop_assert_eq!(decoded, hdr);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn tcp_round_trip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..64,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let hdr = TcpHeader::new(src_port, dst_port, seq, ack, TcpFlags(flags));
        let mut buf = Vec::new();
        hdr.encode_with_payload(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            &payload,
            &mut buf,
        );
        let (decoded, used) = TcpHeader::decode(&buf).unwrap();
        prop_assert_eq!(decoded, hdr);
        prop_assert_eq!(&buf[used..], payload.as_slice());
    }

    #[test]
    fn udp_round_trip(src_port in any::<u16>(), dst_port in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hdr = UdpHeader::new(src_port, dst_port, payload.len());
        let mut buf = Vec::new();
        hdr.encode_with_payload(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            &payload,
            &mut buf,
        );
        let (decoded, _) = UdpHeader::decode(&buf).unwrap();
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn mqtt_publish_round_trip(
        topic in "[a-z]{1,12}(/[a-z]{1,12}){0,3}",
        qos in 0u8..2,
        retain in any::<bool>(),
        packet_id in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let p = MqttPacket::Publish {
            topic,
            packet_id: (qos > 0).then_some(packet_id),
            qos,
            retain,
            payload,
        };
        let bytes = p.encode();
        let (decoded, used) = MqttPacket::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, p);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn coap_round_trip(
        message_id in any::<u16>(),
        token in proptest::collection::vec(any::<u8>(), 0..8),
        segs in proptest::collection::vec("[a-z0-9]{1,30}", 0..4),
        payload in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let m = CoapMessage {
            msg_type: CoapType::Confirmable,
            code: CoapCode::GET,
            message_id,
            token,
            uri_path: segs,
            payload,
        };
        let bytes = m.encode();
        let (decoded, _) = CoapMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, m);
    }

    #[test]
    fn dns_round_trip(id in any::<u16>(), labels in proptest::collection::vec("[a-z0-9]{1,20}", 1..5)) {
        let q = DnsMessage::query(id, &labels.join("."));
        let bytes = q.encode();
        let (decoded, _) = DnsMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, q);
    }

    #[test]
    fn modbus_round_trip(
        transaction in any::<u16>(),
        unit in any::<u8>(),
        function in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let adu = ModbusAdu {
            transaction_id: transaction,
            unit_id: unit,
            function: ModbusFunction::from_u8(function),
            data,
        };
        let bytes = adu.encode();
        let (decoded, used) = ModbusAdu::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, adu);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn zwire_round_trip(
        msg_type in any::<u8>(),
        home_id in any::<u32>(),
        src in any::<u8>(),
        dst in any::<u8>(),
        seq in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..255),
    ) {
        let frame = ZWireFrame::new(ZWireType::from_u8(msg_type), home_id, src, dst, seq, payload);
        let bytes = frame.encode();
        let (decoded, used) = ZWireFrame::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn prefix_expansion_covers_exactly_the_range(lo in any::<u8>(), hi in any::<u8>()) {
        prop_assume!(lo <= hi);
        let prefixes = range_to_prefixes(lo, hi);
        for v in 0..=255u8 {
            let covered = prefixes.iter().any(|p| p.contains(v));
            prop_assert_eq!(covered, (lo..=hi).contains(&v), "byte {}", v);
        }
        prop_assert!(prefixes.len() <= 14);
    }

    #[test]
    fn ternary_covers_implies_matching(
        value_a in any::<u8>(), mask_a in any::<u8>(),
        value_b in any::<u8>(), mask_b in any::<u8>(),
        probe in any::<u8>(),
    ) {
        let a = TernaryEntry::new(vec![value_a], vec![mask_a], 1, 0);
        let b = TernaryEntry::new(vec![value_b], vec![mask_b], 1, 0);
        if a.covers(&b) && b.matches(&[probe]) {
            prop_assert!(a.matches(&[probe]));
        }
    }

    #[test]
    fn compiled_rules_agree_with_tree(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 32..128),
        probes in proptest::collection::vec((any::<u8>(), any::<u8>()), 64),
    ) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (a, b, label) in &rows {
            data.push(*a);
            data.push(*b);
            labels.push(usize::from(*label));
        }
        prop_assume!(labels.contains(&0) && labels.contains(&1));
        let tree = DecisionTree::fit(2, &data, &labels, TreeConfig::default());
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        for (a, b) in probes {
            prop_assert_eq!(compiled.ternary.classify(&[a, b]), tree.predict(&[a, b]));
        }
    }

    #[test]
    fn key_layout_width_is_stable(offsets in proptest::collection::vec(0usize..128, 1..16), frame in proptest::collection::vec(any::<u8>(), 0..128)) {
        let layout = KeyLayout::new(offsets.clone());
        let key = layout.build_key(&frame);
        prop_assert_eq!(key.len(), offsets.len());
        for (k, o) in key.iter().zip(&offsets) {
            prop_assert_eq!(*k, frame.get(*o).copied().unwrap_or(0));
        }
    }

    #[test]
    fn byte_dataset_projection_commutes(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..80), 1..20),
        offs in proptest::collection::vec(0usize..32, 1..6),
    ) {
        let trace: Trace = frames
            .iter()
            .enumerate()
            .map(|(i, f)| Record {
                timestamp_us: i as u64,
                frame: Bytes::from(f.clone()),
                label: Label::Benign,
                flow_id: 0,
            })
            .collect();
        let bytes = ByteDataset::from_trace(&trace, 32);
        let projected = bytes.project(&offs);
        for i in 0..bytes.len() {
            let row = bytes.sample(i);
            let want: Vec<u8> = offs.iter().map(|&o| row[o]).collect();
            prop_assert_eq!(projected.sample(i), want.as_slice());
        }
    }

    #[test]
    fn matmul_transpose_identities(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c = Matrix::from_fn(m, n, |_, _| next());
        // (Aᵀ)ᵀ·B identity and A·Bᵀ identity.
        let at_b = a.transpose().matmul_at_b(&b); // (Aᵀ)ᵀ·B = A·B
        let ab = a.matmul(&b);
        for (x, y) in at_b.data().iter().zip(ab.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let c_bt = c.matmul_a_bt(&b); // C·Bᵀ  (m×n · n×k)
        let c_bt2 = c.matmul(&b.transpose());
        for (x, y) in c_bt.data().iter().zip(c_bt2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}

proptest! {
    #[test]
    fn parser_vm_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        use p4guard_dataplane::parser::ParserSpec;
        let _ = ParserSpec::ethernet_ipv4().parse(&bytes);
        let _ = ParserSpec::raw_window(64, 14).parse(&bytes);
    }

    #[test]
    fn table_priority_semantics(
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), 0i32..100), 1..24),
        probe in any::<u8>(),
    ) {
        use p4guard_dataplane::action::Action;
        use p4guard_dataplane::key::KeyLayout;
        use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
        let mut table = Table::new("t", MatchKind::Ternary, KeyLayout::window(1), 64, Action::NoOp);
        for (i, (value, mask, priority)) in entries.iter().enumerate() {
            table
                .insert(
                    MatchSpec::Ternary {
                        value: vec![*value],
                        mask: vec![*mask],
                    },
                    Action::Forward(i as u16),
                    *priority,
                )
                .unwrap();
        }
        // Reference: the max-priority matching entry by insertion order.
        let expected = entries
            .iter()
            .enumerate()
            .filter(|(_, (v, m, _))| probe & m == v & m)
            .max_by(|(ia, (_, _, pa)), (ib, (_, _, pb))| pa.cmp(pb).then(ib.cmp(ia)))
            .map(|(i, _)| Action::Forward(i as u16))
            .unwrap_or(Action::NoOp);
        prop_assert_eq!(table.lookup(&[probe]), expected);
    }

    #[test]
    fn lpm_matches_longest_prefix(
        prefixes in proptest::collection::vec((any::<u8>(), 0usize..=8), 1..10),
        probe in any::<u8>(),
    ) {
        use p4guard_dataplane::action::Action;
        use p4guard_dataplane::key::KeyLayout;
        use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
        let mut table = Table::new("t", MatchKind::Lpm, KeyLayout::window(1), 32, Action::NoOp);
        let mut deduped: Vec<(u8, usize)> = Vec::new();
        for (value, len) in prefixes {
            let masked = if len == 0 { 0 } else { value & (0xffu8 << (8 - len)) };
            if !deduped.iter().any(|&(v, l)| l == len && v == masked) {
                deduped.push((masked, len));
            }
        }
        for (i, (value, len)) in deduped.iter().enumerate() {
            table
                .insert(
                    MatchSpec::Lpm {
                        value: vec![*value],
                        prefix_len: *len,
                    },
                    Action::Forward(i as u16),
                    0,
                )
                .unwrap();
        }
        let expected = deduped
            .iter()
            .enumerate()
            .filter(|(_, (v, len))| {
                *len == 0 || probe & (0xffu8 << (8 - len)) == *v
            })
            .max_by_key(|(_, (_, len))| *len)
            .map(|(i, _)| Action::Forward(i as u16))
            .unwrap_or(Action::NoOp);
        prop_assert_eq!(table.lookup(&[probe]), expected);
    }

    #[test]
    fn corruption_preserves_structure(fraction in 0.0f64..1.0) {
        use p4guard_traffic::corruption::Corruption;
        use p4guard_traffic::scenario::Scenario;
        let trace = Scenario::benign_only(p4guard_traffic::Fleet::smart_home(), 10.0, 3)
            .generate()
            .unwrap();
        let corrupted = Corruption {
            fraction,
            bit_flips: 2,
            truncate_prob: 0.2,
        }
        .apply(&trace, 5);
        prop_assert_eq!(corrupted.len(), trace.len());
        for (a, b) in trace.iter().zip(corrupted.iter()) {
            prop_assert_eq!(a.label, b.label);
            prop_assert!(b.frame.len() <= a.frame.len());
        }
    }
}
