//! Cross-crate semantics: the compiled rule set, the source decision tree,
//! and the deployed switch must agree packet-for-packet.

use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_rules::compile::{compile_tree, find_disagreement, CompileConfig};
use p4guard_rules::tree::{DecisionTree, TreeConfig};
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fit a small random tree-shaped problem and verify the compiled rules
/// agree with the tree on dense random sampling.
#[test]
fn compiled_rules_equal_tree_on_random_keys() {
    let mut rng = StdRng::seed_from_u64(5150);
    for trial in 0..10 {
        let width = rng.gen_range(2..=4usize);
        let n = 600;
        let mut data = Vec::with_capacity(n * width);
        let mut labels = Vec::with_capacity(n);
        // Random labelling rule: conjunction over two random features.
        let fa = rng.gen_range(0..width);
        let fb = rng.gen_range(0..width);
        let ta: u8 = rng.gen();
        let tb: u8 = rng.gen();
        for _ in 0..n {
            let row: Vec<u8> = (0..width).map(|_| rng.gen()).collect();
            labels.push(usize::from(row[fa] > ta && row[fb] <= tb));
            data.extend_from_slice(&row);
        }
        if labels.iter().all(|&l| l == 0) || labels.iter().all(|&l| l == 1) {
            continue;
        }
        let tree = DecisionTree::fit(width, &data, &labels, TreeConfig::default());
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        let keys: Vec<Vec<u8>> = (0..4000)
            .map(|_| (0..width).map(|_| rng.gen()).collect())
            .collect();
        let disagreement = find_disagreement(&tree, &compiled, keys.iter().map(|k| k.as_slice()));
        assert_eq!(disagreement, None, "trial {trial} disagreed");
    }
}

/// Range-table deployment must match ternary-table deployment decision
/// for every test frame (two physical encodings of the same ruleset).
#[test]
fn range_and_ternary_deployments_agree() {
    let trace = Scenario::smart_home_default(61).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = TwoStagePipeline::new(GuardConfig::fast())
        .train(&train)
        .unwrap();

    // Ternary deployment via the normal path.
    let ternary_control = guard.deploy(200_000).unwrap();

    // Range deployment: same key layout, native range entries.
    let parser = ParserSpec::raw_window(64, 14);
    let mut sw = Switch::new("range-gw", parser, 1);
    let acl = Table::new(
        "guard_acl_range",
        MatchKind::Range,
        KeyLayout::new(guard.selection.offsets.clone()),
        10_000,
        Action::NoOp,
    );
    let stage = sw.add_stage(acl);
    let range_control = ControlPlane::new(sw);
    range_control
        .install_ranges(stage, &guard.compiled.range_paths, Action::Drop)
        .unwrap();

    ternary_control.with_switch_mut(|tsw| {
        range_control.with_switch_mut(|rsw| {
            for r in test.iter() {
                assert_eq!(
                    tsw.process(&r.frame).is_drop(),
                    rsw.process(&r.frame).is_drop(),
                    "encodings disagreed"
                );
            }
        });
    });

    // Range encoding uses one entry per attack path — never more than the
    // ternary expansion.
    assert!(guard.compiled.range_paths.len() <= guard.compiled.ternary.len().max(1));
}

/// Drop counters must add up across a replay.
#[test]
fn switch_counters_are_consistent() {
    let trace = Scenario::smart_home_default(62).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = TwoStagePipeline::new(GuardConfig::fast())
        .train(&train)
        .unwrap();
    let control = guard.deploy(200_000).unwrap();
    let stats = control.with_switch_mut(|sw| sw.run_trace(&test));
    control.with_switch(|sw| {
        let c = sw.counters();
        assert_eq!(c.received as usize, test.len());
        assert_eq!(
            c.forwarded + c.dropped + c.parser_rejected,
            c.received,
            "counters must partition received"
        );
        assert_eq!(stats.dropped as u64, c.dropped + c.parser_rejected);
    });
}
