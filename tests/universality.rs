//! Universality integration: the pipeline handles attacks in every
//! protocol — including non-IP — with the same code path.

use p4guard::baselines::{Detector, FiveTupleFirewall, GuardDetector};
use p4guard::config::GuardConfig;
use p4guard_packet::trace::AttackFamily;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;

fn f1_for(family: AttackFamily, seed: u64) -> (f64, f64) {
    let trace = Scenario::single_attack(family, seed).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let guard = GuardDetector::train(GuardConfig::fast(), &train).unwrap();
    let five_tuple = FiveTupleFirewall::train(&train);
    (guard.evaluate(&test).f1, five_tuple.evaluate(&test).f1)
}

#[test]
fn zwire_hijack_is_caught_only_by_byte_level_matching() {
    let (two_stage, five_tuple) = f1_for(AttackFamily::ZWireHijack, 301);
    assert!(two_stage > 0.85, "two-stage on zwire F1 {two_stage}");
    assert!(
        two_stage - five_tuple > 0.3,
        "two-stage {two_stage} vs 5-tuple {five_tuple}"
    );
}

#[test]
fn modbus_abuse_is_caught_without_modbus_specific_code() {
    let (two_stage, _) = f1_for(AttackFamily::ModbusAbuse, 302);
    // The attack's TCP handshake/teardown frames carry no Modbus payload
    // and are intrinsically hard at packet granularity, capping recall.
    assert!(two_stage > 0.65, "two-stage on modbus F1 {two_stage}");
}

#[test]
fn mqtt_flood_is_caught() {
    let (two_stage, _) = f1_for(AttackFamily::MqttFlood, 303);
    assert!(two_stage > 0.75, "two-stage on mqtt F1 {two_stage}");
}

#[test]
fn spoofed_syn_flood_defeats_exact_tuples_but_not_learned_bytes() {
    let (two_stage, five_tuple) = f1_for(AttackFamily::SynFlood, 304);
    assert!(two_stage > 0.85, "two-stage on syn flood F1 {two_stage}");
    // Every flood packet has a fresh spoofed tuple; exact matching cannot
    // generalize.
    assert!(five_tuple < 0.5, "5-tuple on spoofed flood F1 {five_tuple}");
}

#[test]
fn dns_tunnel_is_caught() {
    let (two_stage, _) = f1_for(AttackFamily::DnsTunnel, 305);
    assert!(two_stage > 0.8, "two-stage on dns tunnel F1 {two_stage}");
}
