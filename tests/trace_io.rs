//! Trace persistence: generated datasets survive a save/load cycle intact,
//! so experiments can be re-run from saved artifacts.

use p4guard_packet::trace::Trace;
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::stats::TraceStats;

#[test]
fn generated_trace_survives_file_round_trip() {
    let trace = Scenario::smart_home_default(404).generate().unwrap();
    let dir = std::env::temp_dir().join("p4guard-test-traces");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smart_home_404.p4gt");
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    assert_eq!(loaded, trace);
    assert_eq!(TraceStats::compute(&loaded), TraceStats::compute(&trace));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn in_memory_round_trip_of_large_trace() {
    let trace = Scenario::mixed_default(405).generate().unwrap();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    // Binary format overhead stays modest: header + 29 bytes per record.
    let payload: usize = trace.iter().map(|r| r.frame.len()).sum();
    assert!(buf.len() < payload + trace.len() * 32 + 64);
    let loaded = Trace::read_from(buf.as_slice()).unwrap();
    assert_eq!(loaded.len(), trace.len());
    assert_eq!(loaded.attack_count(), trace.attack_count());
    assert_eq!(loaded, trace);
}

#[test]
fn corrupt_length_prefix_is_rejected_without_huge_allocation() {
    let trace = Scenario::smart_home_default(407).generate().unwrap();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    // First record layout: magic(4) + version(1) + count(8) + ts(8) +
    // flow(8) + label(1) puts the frame-length prefix at offset 30.
    buf[30..34].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = Trace::read_from(buf.as_slice()).unwrap_err();
    assert!(
        err.to_string().contains("exceeds"),
        "want the length-cap error, got: {err}"
    );
}

#[test]
fn truncated_final_record_yields_typed_error() {
    let trace = Scenario::smart_home_default(408).generate().unwrap();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    buf.truncate(buf.len() - 2); // cut into the last record's frame bytes
    let mut reader = p4guard_packet::TraceReader::new(buf.as_slice()).unwrap();
    let mut records = 0usize;
    let mut saw_error = false;
    for item in &mut reader {
        match item {
            Ok(_) => records += 1,
            Err(e) => {
                saw_error = true;
                assert!(
                    e.to_string().contains("truncated"),
                    "want the truncation error, got: {e}"
                );
            }
        }
    }
    assert!(saw_error, "truncation must surface as an error");
    assert_eq!(
        records,
        trace.len() - 1,
        "all complete records still decode"
    );
    assert!(reader.next().is_none(), "stream fuses after the error");
}

#[test]
fn truncated_file_is_rejected_not_panicking() {
    let trace = Scenario::smart_home_default(406).generate().unwrap();
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    for cut in [0, 3, 5, 12, 40, buf.len() - 1] {
        assert!(
            Trace::read_from(&buf[..cut]).is_err(),
            "cut at {cut} should fail"
        );
    }
}
