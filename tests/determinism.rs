//! Determinism: every layer of the stack is a pure function of its seed.

use p4guard::config::GuardConfig;
use p4guard::pipeline::TwoStagePipeline;
use p4guard_features::extract::ByteDataset;
use p4guard_features::select::{select_fields, SelectionStrategy};
use p4guard_traffic::scenario::Scenario;
use p4guard_traffic::split_temporal;

#[test]
fn scenario_generation_is_seed_deterministic() {
    let a = Scenario::mixed_default(77).generate().unwrap();
    let b = Scenario::mixed_default(77).generate().unwrap();
    assert_eq!(a, b);
    let c = Scenario::mixed_default(78).generate().unwrap();
    assert_ne!(a, c);
}

#[test]
fn full_pipeline_is_seed_deterministic() {
    let trace = Scenario::smart_home_default(11).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    let a = TwoStagePipeline::new(GuardConfig::fast())
        .train(&train)
        .unwrap();
    let b = TwoStagePipeline::new(GuardConfig::fast())
        .train(&train)
        .unwrap();
    assert_eq!(a.selection.offsets, b.selection.offsets);
    assert_eq!(a.compiled.ternary, b.compiled.ternary);
    assert_eq!(a.tree.paths(), b.tree.paths());
    let ma = a.evaluate_rules(&test);
    let mb = b.evaluate_rules(&test);
    assert_eq!(ma, mb);
}

#[test]
fn different_pipeline_seeds_may_differ_but_stay_accurate() {
    let trace = Scenario::smart_home_default(12).generate().unwrap();
    let (train, test) = split_temporal(&trace, 0.6);
    for seed in [1u64, 2, 3] {
        let cfg = GuardConfig {
            seed,
            ..GuardConfig::fast()
        };
        let guard = TwoStagePipeline::new(cfg).train(&train).unwrap();
        let m = guard.evaluate_rules(&test);
        assert!(m.f1 > 0.7, "seed {seed}: F1 {:?}", m);
    }
}

#[test]
fn mutual_information_selection_is_data_deterministic() {
    let trace = Scenario::smart_home_default(13).generate().unwrap();
    let bytes = ByteDataset::from_trace(&trace, 64);
    let a = select_fields(
        SelectionStrategy::MutualInformation,
        &bytes,
        None,
        None,
        8,
        0,
    );
    let b = select_fields(
        SelectionStrategy::MutualInformation,
        &bytes,
        None,
        None,
        8,
        99,
    );
    // The seed must not matter for data-driven strategies.
    assert_eq!(a.offsets, b.offsets);
}

#[test]
fn trace_split_is_stable() {
    let trace = Scenario::smart_home_default(14).generate().unwrap();
    let (a1, b1) = split_temporal(&trace, 0.6);
    let (a2, b2) = split_temporal(&trace, 0.6);
    assert_eq!(a1, a2);
    assert_eq!(b1, b2);
}
