//! Prioritized ternary rule sets with optimization passes.

use crate::ternary::TernaryEntry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A prioritized list of ternary entries over a fixed-width key, with a
/// default class for keys no entry matches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    key_width: usize,
    entries: Vec<TernaryEntry>,
    default_class: usize,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new(key_width: usize, default_class: usize) -> Self {
        RuleSet {
            key_width,
            entries: Vec::new(),
            default_class,
        }
    }

    /// Key width in bytes.
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// The class returned when nothing matches.
    pub fn default_class(&self) -> usize {
        self.default_class
    }

    /// Borrows the entries, highest priority first.
    pub fn entries(&self) -> &[TernaryEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the rule set has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry, keeping entries sorted by descending priority
    /// (stable for equal priorities).
    ///
    /// # Panics
    ///
    /// Panics if the entry width differs from the rule-set key width.
    pub fn push(&mut self, entry: TernaryEntry) {
        assert_eq!(entry.width(), self.key_width, "entry width mismatch");
        let at = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(at, entry);
    }

    /// Classifies a key: the highest-priority matching entry's class, or
    /// the default.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn classify(&self, key: &[u8]) -> usize {
        self.entries
            .iter()
            .find(|e| e.matches(key))
            .map_or(self.default_class, |e| e.class)
    }

    /// Total TCAM bits consumed: each entry stores value and mask, so
    /// `entries × key_bits × 2`.
    pub fn tcam_bits(&self) -> usize {
        self.entries.len() * self.key_width * 8 * 2
    }

    /// Removes entries fully covered by an earlier (higher-priority or
    /// equal-priority-earlier) entry — they can never fire. Returns the
    /// number removed.
    pub fn remove_shadowed(&mut self) -> usize {
        let mut keep: Vec<TernaryEntry> = Vec::with_capacity(self.entries.len());
        let mut removed = 0usize;
        for entry in self.entries.drain(..) {
            if keep.iter().any(|earlier| earlier.covers(&entry)) {
                removed += 1;
            } else {
                keep.push(entry);
            }
        }
        self.entries = keep;
        removed
    }

    /// Merges sibling entries — same mask, same class, same priority,
    /// values differing in exactly one cared bit — into one entry with that
    /// bit wildcarded. Runs to fixpoint per priority level. Returns the
    /// number of merges.
    ///
    /// The pass is semantics-preserving for **arbitrary** rule sets, not
    /// just tree-compiler output: within one priority level,
    /// [`RuleSet::classify`] is first-match-wins, so reordering (which
    /// merging implies) is only sound when no two entries of different
    /// classes overlap in that level. Levels that fail this check are
    /// passed through byte-for-byte in their original order; order-free
    /// levels get the classic Quine–McCluskey-style bit pairing over
    /// deterministic (`BTree`) orderings, so results are reproducible and
    /// the pass is `O(rounds · n · key_bits · log n)` plus an `O(n²)`
    /// per-level overlap check.
    pub fn merge_siblings(&mut self) -> usize {
        // Split into priority levels, preserving the (already sorted,
        // stable) order within each level.
        let mut levels: Vec<(i32, Vec<TernaryEntry>)> = Vec::new();
        for e in self.entries.drain(..) {
            match levels.last_mut() {
                Some((p, level)) if *p == e.priority => level.push(e),
                _ => levels.push((e.priority, vec![e])),
            }
        }
        let mut merges = 0usize;
        for (priority, level) in &mut levels {
            if Self::level_is_order_free(level) {
                merges += Self::merge_level(*priority, level);
            }
        }
        self.entries = levels.into_iter().flat_map(|(_, l)| l).collect();
        merges
    }

    /// Whether `a` and `b` can both match some key (their cared bits agree
    /// wherever both care).
    fn overlaps(a: &TernaryEntry, b: &TernaryEntry) -> bool {
        a.value
            .iter()
            .zip(&a.mask)
            .zip(b.value.iter().zip(&b.mask))
            .all(|((&va, &ma), (&vb, &mb))| (va & ma & mb) == (vb & ma & mb))
    }

    /// Whether classification within this equal-priority level is
    /// independent of entry order: no key can match two entries with
    /// different classes. Merging preserves each class's matched key set
    /// exactly (a sibling pair's union is the merged entry), so this
    /// property also survives the merge itself.
    fn level_is_order_free(level: &[TernaryEntry]) -> bool {
        level.iter().enumerate().all(|(i, a)| {
            level[i + 1..]
                .iter()
                .all(|b| a.class == b.class || !Self::overlaps(a, b))
        })
    }

    /// Runs sibling merging to fixpoint over one order-free priority
    /// level, rewriting `level` in place. Returns the number of merges.
    fn merge_level(priority: i32, level: &mut Vec<TernaryEntry>) -> usize {
        use std::collections::{BTreeMap, BTreeSet};
        let mut merges = 0usize;
        loop {
            // Group masked values by (mask, class).
            let mut groups: BTreeMap<(Vec<u8>, usize), BTreeSet<Vec<u8>>> = BTreeMap::new();
            for e in level.iter() {
                let masked: Vec<u8> = e.value.iter().zip(&e.mask).map(|(v, m)| v & m).collect();
                groups
                    .entry((e.mask.clone(), e.class))
                    .or_default()
                    .insert(masked);
            }
            let mut next_entries: Vec<TernaryEntry> = Vec::with_capacity(level.len());
            let mut merged_this_round = 0usize;
            for ((mask, class), values) in groups {
                let mut consumed: BTreeSet<Vec<u8>> = BTreeSet::new();
                for value in &values {
                    if consumed.contains(value) {
                        continue;
                    }
                    let mut merged = false;
                    'bits: for (byte_idx, &m) in mask.iter().enumerate() {
                        for bit in (0..8).rev() {
                            let b = 1u8 << bit;
                            if m & b == 0 {
                                continue;
                            }
                            let mut partner = value.clone();
                            partner[byte_idx] ^= b;
                            // Pair each sibling set once: the lower value
                            // owns the merge.
                            if partner > *value
                                && values.contains(&partner)
                                && !consumed.contains(&partner)
                            {
                                let mut new_mask = mask.clone();
                                new_mask[byte_idx] &= !b;
                                let mut new_value = value.clone();
                                new_value[byte_idx] &= new_mask[byte_idx];
                                next_entries
                                    .push(TernaryEntry::new(new_value, new_mask, class, priority));
                                consumed.insert(value.clone());
                                consumed.insert(partner);
                                merged = true;
                                merged_this_round += 1;
                                break 'bits;
                            }
                        }
                    }
                    if !merged {
                        next_entries.push(TernaryEntry::new(
                            value.clone(),
                            mask.clone(),
                            class,
                            priority,
                        ));
                    }
                }
            }
            if merged_this_round == 0 {
                return merges;
            }
            merges += merged_this_round;
            *level = next_entries;
        }
    }

    /// Runs all optimization passes; returns (merged, shadowed-removed).
    pub fn optimize(&mut self) -> (usize, usize) {
        let merged = self.merge_siblings();
        let shadowed = self.remove_shadowed();
        (merged, shadowed)
    }

    /// Computes the entry-level difference from `self` to `next`: what a
    /// hot swap replacing this rule set with `next` adds and removes.
    ///
    /// Entries are compared as multisets of `(value & mask, mask, class,
    /// priority)` — order does not matter, duplicates count, and value
    /// bits under wildcarded mask positions are ignored (two encodings of
    /// the same ternary rule never show up as churn). Swap reports use
    /// this to tell operators what actually changed in the data plane;
    /// reported entries carry the masked value.
    pub fn diff(&self, next: &RuleSet) -> RuleSetDiff {
        use std::collections::BTreeMap;
        type Key = (Vec<u8>, Vec<u8>, usize, i32);
        let key = |e: &TernaryEntry| {
            let masked: Vec<u8> = e.value.iter().zip(&e.mask).map(|(&v, &m)| v & m).collect();
            (masked, e.mask.clone(), e.class, e.priority)
        };
        let mut counts: BTreeMap<Key, i64> = BTreeMap::new();
        for e in &self.entries {
            *counts.entry(key(e)).or_insert(0) -= 1;
        }
        for e in &next.entries {
            *counts.entry(key(e)).or_insert(0) += 1;
        }
        let mut diff = RuleSetDiff::default();
        for ((value, mask, class, priority), n) in counts {
            let entry = TernaryEntry::new(value, mask, class, priority);
            for _ in 0..n.abs() {
                if n > 0 {
                    diff.added.push(entry.clone());
                } else {
                    diff.removed.push(entry.clone());
                }
            }
        }
        diff
    }
}

/// The entry-level change between two rule sets (see [`RuleSet::diff`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSetDiff {
    /// Entries present in the new rule set but not the old.
    pub added: Vec<TernaryEntry>,
    /// Entries present in the old rule set but not the new.
    pub removed: Vec<TernaryEntry>,
}

impl RuleSetDiff {
    /// Returns `true` when the rule sets hold the same entries.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total entries touched by the swap.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

impl fmt::Display for RuleSetDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} -{} entries", self.added.len(), self.removed.len())
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ruleset: {} entries over {}-byte key, default class {}",
            self.entries.len(),
            self.key_width,
            self.default_class
        )?;
        for e in &self.entries {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(value: u8, mask: u8, class: usize, priority: i32) -> TernaryEntry {
        TernaryEntry::new(vec![value], vec![mask], class, priority)
    }

    #[test]
    fn classify_respects_priority() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0x10, 0xf0, 1, 5)); // 0x10..=0x1f -> 1
        rs.push(entry(0x17, 0xff, 2, 10)); // 0x17 -> 2 (higher priority)
        assert_eq!(rs.classify(&[0x17]), 2);
        assert_eq!(rs.classify(&[0x12]), 1);
        assert_eq!(rs.classify(&[0x99]), 0);
        // Entries are stored in priority order.
        assert_eq!(rs.entries()[0].priority, 10);
    }

    #[test]
    fn push_is_stable_for_equal_priorities() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0x01, 0xff, 1, 5));
        rs.push(entry(0x02, 0xff, 2, 5));
        assert_eq!(rs.entries()[0].class, 1);
        assert_eq!(rs.entries()[1].class, 2);
    }

    #[test]
    fn remove_shadowed_drops_dead_entries() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0x00, 0x00, 1, 10)); // wildcard, covers everything
        rs.push(entry(0x42, 0xff, 2, 5)); // can never fire
        let removed = rs.remove_shadowed();
        assert_eq!(removed, 1);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.classify(&[0x42]), 1);
    }

    #[test]
    fn merge_siblings_collapses_adjacent_prefixes() {
        let mut rs = RuleSet::new(1, 0);
        // 0b0000_000x pair → one entry 0b0000_000*.
        rs.push(entry(0b0000_0000, 0xff, 1, 5));
        rs.push(entry(0b0000_0001, 0xff, 1, 5));
        let merges = rs.merge_siblings();
        assert_eq!(merges, 1);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.entries()[0].mask[0], 0xfe);
        assert_eq!(rs.classify(&[0]), 1);
        assert_eq!(rs.classify(&[1]), 1);
        assert_eq!(rs.classify(&[2]), 0);
    }

    #[test]
    fn merge_cascades_to_fixpoint() {
        let mut rs = RuleSet::new(1, 0);
        // Four exact entries 4..=7 collapse to one /6-style entry.
        for v in 4..=7u8 {
            rs.push(entry(v, 0xff, 1, 5));
        }
        let merges = rs.merge_siblings();
        assert_eq!(merges, 3);
        assert_eq!(rs.len(), 1);
        for v in 0..=255u8 {
            assert_eq!(rs.classify(&[v]), usize::from((4..=7).contains(&v)));
        }
    }

    #[test]
    fn merge_leaves_order_dependent_levels_untouched() {
        let mut rs = RuleSet::new(1, 0);
        // Two mergeable exact entries, then a same-priority wildcard
        // fallback of a different class: first-match-wins order is load-
        // bearing here, so the whole level must pass through unchanged.
        rs.push(entry(0x02, 0xff, 2, 5));
        rs.push(entry(0x03, 0xff, 2, 5));
        rs.push(entry(0x00, 0x00, 1, 5));
        let before = rs.entries().to_vec();
        assert_eq!(rs.merge_siblings(), 0);
        assert_eq!(rs.entries(), &before[..]);
        assert_eq!(rs.classify(&[0x02]), 2);
        assert_eq!(rs.classify(&[0x07]), 1);
    }

    #[test]
    fn merge_handles_disjoint_multi_class_levels() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0x10, 0xff, 1, 5));
        rs.push(entry(0x11, 0xff, 1, 5));
        rs.push(entry(0x20, 0xff, 2, 5)); // disjoint, order-free level
        assert_eq!(rs.merge_siblings(), 1);
        assert_eq!(rs.len(), 2);
        for v in 0..=255u8 {
            let expect = match v {
                0x10 | 0x11 => 1,
                0x20 => 2,
                _ => 0,
            };
            assert_eq!(rs.classify(&[v]), expect);
        }
    }

    #[test]
    fn merge_does_not_mix_classes_or_priorities() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0x00, 0xff, 1, 5));
        rs.push(entry(0x01, 0xff, 2, 5)); // different class
        rs.push(entry(0x02, 0xff, 1, 6)); // different priority
        assert_eq!(rs.merge_siblings(), 0);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn tcam_bits_accounting() {
        let mut rs = RuleSet::new(4, 0);
        assert_eq!(rs.tcam_bits(), 0);
        rs.push(TernaryEntry::new(vec![0; 4], vec![0xff; 4], 1, 0));
        rs.push(TernaryEntry::new(vec![1; 4], vec![0xff; 4], 1, 0));
        assert_eq!(rs.tcam_bits(), 2 * 4 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_entry_panics() {
        let mut rs = RuleSet::new(2, 0);
        rs.push(entry(0x00, 0xff, 1, 0));
    }

    #[test]
    fn diff_reports_added_and_removed() {
        let mut old = RuleSet::new(1, 0);
        old.push(entry(0x01, 0xff, 1, 5));
        old.push(entry(0x02, 0xff, 1, 5));
        let mut new = RuleSet::new(1, 0);
        new.push(entry(0x02, 0xff, 1, 5)); // kept
        new.push(entry(0x03, 0xff, 2, 7)); // added
        let diff = old.diff(&new);
        assert_eq!(diff.added.len(), 1);
        assert_eq!(diff.removed.len(), 1);
        assert_eq!(diff.added[0].value, vec![0x03]);
        assert_eq!(diff.removed[0].value, vec![0x01]);
        assert_eq!(diff.churn(), 2);
        assert_eq!(diff.to_string(), "+1 -1 entries");
        // Identical sets (order-insensitive) diff to empty.
        let mut reordered = RuleSet::new(1, 0);
        reordered.push(entry(0x02, 0xff, 1, 5));
        reordered.push(entry(0x01, 0xff, 1, 5));
        assert!(old.diff(&reordered).is_empty());
        // Duplicates count as a multiset.
        let mut doubled = RuleSet::new(1, 0);
        doubled.push(entry(0x01, 0xff, 1, 5));
        doubled.push(entry(0x01, 0xff, 1, 5));
        let d = old.diff(&doubled);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
    }

    #[test]
    fn diff_ignores_uncared_value_bits() {
        // Same rule, two encodings: the low nibble is wildcarded, so the
        // value bits there are noise. The diff must be empty — otherwise
        // every recompile would churn remove+add pairs for rules that
        // did not change.
        let mut old = RuleSet::new(1, 0);
        old.push(entry(0x5f, 0xf0, 1, 3));
        let mut new = RuleSet::new(1, 0);
        new.push(entry(0x50, 0xf0, 1, 3));
        assert!(old.diff(&new).is_empty());
        // And reported entries carry the masked value.
        let empty = RuleSet::new(1, 0);
        let d = old.diff(&empty);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.removed[0].value, vec![0x50]);
    }

    #[test]
    fn diff_priority_only_change_is_remove_plus_add() {
        // A priority bump on an otherwise identical entry is semantically
        // delete+insert: the data plane has no in-place priority update.
        let mut old = RuleSet::new(1, 0);
        old.push(entry(0x01, 0xff, 1, 3));
        let mut new = RuleSet::new(1, 0);
        new.push(entry(0x01, 0xff, 1, 7));
        let d = old.diff(&new);
        assert_eq!((d.added.len(), d.removed.len()), (1, 1));
        assert_eq!(d.added[0].priority, 7);
        assert_eq!(d.removed[0].priority, 3);
    }

    #[test]
    fn diff_class_only_change_is_remove_plus_add() {
        // Likewise a class flip: the installed action changes, which the
        // delta path applies as remove-then-insert, never modify-in-place.
        let mut old = RuleSet::new(1, 0);
        old.push(entry(0x01, 0xff, 1, 3));
        let mut new = RuleSet::new(1, 0);
        new.push(entry(0x01, 0xff, 2, 3));
        let d = old.diff(&new);
        assert_eq!((d.added.len(), d.removed.len()), (1, 1));
        assert_eq!(d.added[0].class, 2);
        assert_eq!(d.removed[0].class, 1);
    }

    #[test]
    fn diff_emptied_then_repopulated_round_trips() {
        let mut old = RuleSet::new(1, 0);
        old.push(entry(0x01, 0xff, 1, 3));
        old.push(entry(0x02, 0xff, 1, 3));
        let empty = RuleSet::new(1, 0);
        let drain = old.diff(&empty);
        assert_eq!((drain.added.len(), drain.removed.len()), (0, 2));
        let refill = empty.diff(&old);
        assert_eq!((refill.added.len(), refill.removed.len()), (2, 0));
        // Drain followed by refill nets to the identity.
        assert!(old.diff(&old).is_empty());
    }

    #[test]
    fn display_lists_entries() {
        let mut rs = RuleSet::new(1, 0);
        rs.push(entry(0xff, 0xff, 1, 1));
        let s = rs.to_string();
        assert!(s.contains("1 entries"));
        assert!(s.contains("11111111"));
    }
}
