//! Tree → match-action rule compilation.
//!
//! Each attack-class root→leaf path becomes a conjunction of per-field byte
//! ranges; ranges are prefix-expanded and cross-multiplied into ternary
//! entries. The benign region is the data plane's default action, so only
//! attack paths consume table space — the firewall convention the paper's
//! efficiency numbers rely on.

use crate::ruleset::RuleSet;
use crate::ternary::{range_to_prefixes, TernaryEntry};
use crate::tree::{DecisionTree, TreePath};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileConfig {
    /// The class that receives explicit entries (1 = attack/drop).
    pub compile_class: usize,
    /// Abort if expansion would exceed this many entries.
    pub max_entries: usize,
    /// Run merge/shadow optimization after expansion.
    pub optimize: bool,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            compile_class: 1,
            max_entries: 100_000,
            optimize: true,
        }
    }
}

/// Error returned when compilation exceeds the entry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyEntries {
    /// The configured budget.
    pub budget: usize,
    /// Entries produced before aborting.
    pub reached: usize,
}

impl fmt::Display for TooManyEntries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule expansion exceeded the {}-entry budget (reached {})",
            self.budget, self.reached
        )
    }
}

impl Error for TooManyEntries {}

/// Compilation statistics (the data behind efficiency experiments F2/F3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Attack paths compiled.
    pub paths: usize,
    /// Ternary entries before optimization.
    pub entries_raw: usize,
    /// Ternary entries after optimization.
    pub entries: usize,
    /// Entries merged away.
    pub merged: usize,
    /// Shadowed entries removed.
    pub shadowed: usize,
    /// Key width in bytes.
    pub key_width: usize,
    /// Total TCAM bits of the final rule set.
    pub tcam_bits: usize,
}

/// The output of compilation: the installable ternary rule set plus the
/// range-form paths (for switches with native range matching) and stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledRules {
    /// Prefix-expanded ternary rules.
    pub ternary: RuleSet,
    /// The attack paths in range form (one per leaf), for range-capable
    /// tables.
    pub range_paths: Vec<TreePath>,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Compiles a fitted tree into ternary match-action rules.
///
/// Only leaves predicting `config.compile_class` (the attack class)
/// produce entries; every other class is the table's default miss. A
/// **benign-only tree** — no leaf predicts the compile class — therefore
/// compiles to an *empty* ruleset, and that is a valid, meaningful
/// output, not a failure: installed as a stage it misses every key,
/// which is exactly the tree's verdict. Ensemble callers must keep such
/// stages (an empty stage still votes benign under
/// [`crate::forest::CompiledForest`]'s majority) — silently dropping
/// them would shrink the electorate and can flip close votes.
///
/// # Errors
///
/// Returns [`TooManyEntries`] if prefix expansion exceeds
/// `config.max_entries`.
pub fn compile_tree(
    tree: &DecisionTree,
    config: &CompileConfig,
) -> Result<CompiledRules, TooManyEntries> {
    let key_width = tree.num_features();
    let default_class = if config.compile_class == 1 { 0 } else { 1 };
    let mut ruleset = RuleSet::new(key_width, default_class);
    let attack_paths: Vec<TreePath> = tree
        .paths()
        .into_iter()
        .filter(|p| p.class == config.compile_class)
        .collect();
    let mut entries_raw = 0usize;
    for path in &attack_paths {
        expand_path(path, config, &mut ruleset, &mut entries_raw)?;
    }
    let (merged, shadowed) = if config.optimize {
        ruleset.optimize()
    } else {
        (0, 0)
    };
    let stats = CompileStats {
        paths: attack_paths.len(),
        entries_raw,
        entries: ruleset.len(),
        merged,
        shadowed,
        key_width,
        tcam_bits: ruleset.tcam_bits(),
    };
    Ok(CompiledRules {
        ternary: ruleset,
        range_paths: attack_paths,
        stats,
    })
}

/// Cross-multiplies the per-field prefix covers of one path into entries.
fn expand_path(
    path: &TreePath,
    config: &CompileConfig,
    ruleset: &mut RuleSet,
    entries_raw: &mut usize,
) -> Result<(), TooManyEntries> {
    let per_field: Vec<Vec<crate::ternary::BytePrefix>> = path
        .ranges
        .iter()
        .map(|&(lo, hi)| range_to_prefixes(lo, hi))
        .collect();
    // Tree paths are disjoint, so priority among them is irrelevant; use a
    // single priority level above the default action.
    let priority = 1;
    let width = path.ranges.len();
    let mut stack = vec![(0usize, vec![0u8; width], vec![0u8; width])];
    while let Some((field, value, mask)) = stack.pop() {
        if field == width {
            *entries_raw += 1;
            if *entries_raw > config.max_entries {
                return Err(TooManyEntries {
                    budget: config.max_entries,
                    reached: *entries_raw,
                });
            }
            ruleset.push(TernaryEntry::new(
                value,
                mask,
                config.compile_class,
                priority,
            ));
            continue;
        }
        for prefix in &per_field[field] {
            let mut v = value.clone();
            let mut m = mask.clone();
            v[field] = prefix.value & prefix.mask;
            m[field] = prefix.mask;
            stack.push((field + 1, v, m));
        }
    }
    Ok(())
}

/// Checks semantic equivalence of a compiled rule set against its source
/// tree on the given sample keys; returns the first disagreeing key.
pub fn find_disagreement<'a>(
    tree: &DecisionTree,
    compiled: &CompiledRules,
    keys: impl IntoIterator<Item = &'a [u8]>,
) -> Option<Vec<u8>> {
    keys.into_iter()
        .find(|key| tree.predict(key) != compiled.ternary.classify(key))
        .map(|k| k.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    /// Attack iff f0 >= 100 (1 feature).
    fn threshold_tree() -> DecisionTree {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for v in 0..=255u16 {
            data.push(v as u8);
            labels.push(usize::from(v >= 100));
        }
        DecisionTree::fit(1, &data, &labels, TreeConfig::default())
    }

    #[test]
    fn compiled_rules_match_the_tree_exhaustively() {
        let tree = threshold_tree();
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        for v in 0..=255u8 {
            assert_eq!(
                compiled.ternary.classify(&[v]),
                tree.predict(&[v]),
                "byte {v}"
            );
        }
        // [100, 255] expands into few prefixes.
        assert!(compiled.stats.entries <= 8, "stats = {:?}", compiled.stats);
        assert_eq!(compiled.stats.paths, 1);
    }

    #[test]
    fn two_feature_conjunction_compiles_correctly() {
        // Attack iff f0 > 127 && f1 <= 50.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for a in (0..=255u16).step_by(3) {
            for b in (0..=255u16).step_by(5) {
                data.push(a as u8);
                data.push(b as u8);
                labels.push(usize::from(a > 127 && b <= 50));
            }
        }
        let tree = DecisionTree::fit(2, &data, &labels, TreeConfig::default());
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        for a in (0..=255u16).step_by(7) {
            for b in (0..=255u16).step_by(11) {
                let key = [a as u8, b as u8];
                assert_eq!(compiled.ternary.classify(&key), tree.predict(&key));
            }
        }
        assert!(compiled.stats.tcam_bits > 0);
        assert_eq!(compiled.stats.key_width, 2);
    }

    #[test]
    fn optimization_reduces_or_preserves_entries() {
        let tree = threshold_tree();
        let unopt = compile_tree(
            &tree,
            &CompileConfig {
                optimize: false,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        let opt = compile_tree(&tree, &CompileConfig::default()).unwrap();
        assert!(opt.stats.entries <= unopt.stats.entries);
        assert_eq!(opt.stats.entries_raw, unopt.stats.entries_raw);
    }

    #[test]
    fn entry_budget_is_enforced() {
        let tree = threshold_tree();
        let err = compile_tree(
            &tree,
            &CompileConfig {
                max_entries: 1,
                ..CompileConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.budget, 1);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn benign_only_tree_compiles_to_empty_ruleset() {
        let data = vec![1, 2, 3, 4];
        let labels = vec![0, 0, 0, 0];
        let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        assert!(compiled.ternary.is_empty());
        assert_eq!(compiled.ternary.classify(&[200]), 0);
    }

    #[test]
    fn find_disagreement_reports_none_for_faithful_compilation() {
        let tree = threshold_tree();
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        let keys: Vec<[u8; 1]> = (0..=255u8).map(|v| [v]).collect();
        assert_eq!(
            find_disagreement(&tree, &compiled, keys.iter().map(|k| k.as_slice())),
            None
        );
    }

    #[test]
    fn range_paths_are_only_attack_paths() {
        let tree = threshold_tree();
        let compiled = compile_tree(&tree, &CompileConfig::default()).unwrap();
        assert!(compiled.range_paths.iter().all(|p| p.class == 1));
    }
}
