//! Ternary (value/mask) match entries and range→prefix expansion.
//!
//! TCAM hardware matches keys against value/mask pairs; a byte range
//! `[lo, hi]` from a tree path must be expanded into a minimal set of
//! prefixes. This module implements the classic greedy aligned-block cover,
//! which is optimal for prefix expansion of a contiguous range.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One ternary match over a multi-byte key: a key matches when
/// `key & mask == value & mask`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TernaryEntry {
    /// Match value, one byte per key byte.
    pub value: Vec<u8>,
    /// Match mask; `1` bits are compared, `0` bits are wildcards.
    pub mask: Vec<u8>,
    /// The class (action index) this entry selects.
    pub class: usize,
    /// Match priority; higher wins when entries overlap.
    pub priority: i32,
}

impl TernaryEntry {
    /// Creates an entry.
    ///
    /// # Panics
    ///
    /// Panics if `value` and `mask` lengths differ.
    pub fn new(value: Vec<u8>, mask: Vec<u8>, class: usize, priority: i32) -> Self {
        assert_eq!(value.len(), mask.len(), "value/mask width mismatch");
        TernaryEntry {
            value,
            mask,
            class,
            priority,
        }
    }

    /// Key width in bytes.
    pub fn width(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if `key` matches this entry.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the entry width.
    pub fn matches(&self, key: &[u8]) -> bool {
        assert_eq!(key.len(), self.width(), "key width mismatch");
        key.iter()
            .zip(&self.value)
            .zip(&self.mask)
            .all(|((&k, &v), &m)| k & m == v & m)
    }

    /// Returns `true` if every key matching `other` also matches `self`
    /// (i.e. `self` covers `other`).
    pub fn covers(&self, other: &TernaryEntry) -> bool {
        if self.width() != other.width() {
            return false;
        }
        self.value
            .iter()
            .zip(&self.mask)
            .zip(other.value.iter().zip(&other.mask))
            .all(|((&sv, &sm), (&ov, &om))| {
                // Self's cared bits must be a subset of other's cared bits
                // and agree in value there.
                sm & om == sm && (sv & sm) == (ov & sm)
            })
    }

    /// Number of exactly-matched (non-wildcard) bits.
    pub fn exact_bits(&self) -> usize {
        self.mask.iter().map(|m| m.count_ones() as usize).sum()
    }
}

impl fmt::Display for TernaryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, m) in self.value.iter().zip(&self.mask) {
            for bit in (0..8).rev() {
                let mask_bit = (m >> bit) & 1;
                if mask_bit == 0 {
                    write!(f, "*")?;
                } else {
                    write!(f, "{}", (v >> bit) & 1)?;
                }
            }
            write!(f, " ")?;
        }
        write!(f, "-> class {} (prio {})", self.class, self.priority)
    }
}

/// An 8-bit prefix: `value` with the top `prefix_len` bits fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BytePrefix {
    /// Fixed-bit values (low bits zero).
    pub value: u8,
    /// Mask with `1`s on the fixed high bits.
    pub mask: u8,
}

impl BytePrefix {
    /// Returns `true` if `v` falls inside this prefix.
    pub fn contains(&self, v: u8) -> bool {
        v & self.mask == self.value & self.mask
    }
}

/// Expands the inclusive byte range `[lo, hi]` into a minimal set of
/// aligned prefixes.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn range_to_prefixes(lo: u8, hi: u8) -> Vec<BytePrefix> {
    assert!(lo <= hi, "empty range [{lo}, {hi}]");
    let mut prefixes = Vec::new();
    let mut cur = u16::from(lo);
    let end = u16::from(hi);
    while cur <= end {
        // Largest aligned block starting at cur that stays within the range.
        let align = if cur == 0 { 8 } else { cur.trailing_zeros() };
        let span_fit = (end - cur + 1).ilog2();
        let k = align.min(span_fit).min(8);
        let size = 1u16 << k;
        prefixes.push(BytePrefix {
            value: cur as u8,
            mask: (!(size - 1) & 0xff) as u8,
        });
        cur += size;
        if size == 256 {
            break;
        }
    }
    prefixes
}

/// Worst-case prefix count for one byte range (used by resource bounds).
pub const MAX_PREFIXES_PER_BYTE: usize = 14;

#[cfg(test)]
mod tests {
    use super::*;

    fn covered_set(prefixes: &[BytePrefix]) -> Vec<u8> {
        (0..=255u8)
            .filter(|&v| prefixes.iter().any(|p| p.contains(v)))
            .collect()
    }

    #[test]
    fn full_range_is_one_wildcard() {
        let p = range_to_prefixes(0, 255);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].mask, 0);
    }

    #[test]
    fn singleton_is_exact() {
        let p = range_to_prefixes(77, 77);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].value, 77);
        assert_eq!(p[0].mask, 0xff);
    }

    #[test]
    fn expansion_covers_exactly_the_range() {
        for (lo, hi) in [
            (0u8, 100u8),
            (1, 254),
            (13, 200),
            (128, 255),
            (0, 127),
            (37, 42),
        ] {
            let prefixes = range_to_prefixes(lo, hi);
            let covered = covered_set(&prefixes);
            let expected: Vec<u8> = (lo..=hi).collect();
            assert_eq!(covered, expected, "range [{lo}, {hi}] -> {prefixes:?}");
            // No overlaps: total size of prefixes equals range size.
            let total: usize = prefixes
                .iter()
                .map(|p| 1usize << (8 - p.mask.count_ones()))
                .sum();
            assert_eq!(total, (hi - lo) as usize + 1);
        }
    }

    #[test]
    fn worst_case_is_fourteen() {
        // [1, 254] is the classic worst case for 8 bits: 2·8 − 2 = 14.
        assert_eq!(range_to_prefixes(1, 254).len(), 14);
        for lo in 0..=255u8 {
            for hi in lo..=255u8 {
                // Spot-check the bound holds on a sparse grid.
                if (lo as usize + hi as usize).is_multiple_of(37) {
                    assert!(range_to_prefixes(lo, hi).len() <= MAX_PREFIXES_PER_BYTE);
                }
            }
        }
    }

    #[test]
    fn threshold_ranges_are_cheap() {
        // Tree splits generate ranges of the form [0, t] and [t+1, 255];
        // both expand to at most 8 prefixes.
        for t in 0..=254u8 {
            assert!(range_to_prefixes(0, t).len() <= 8);
            assert!(range_to_prefixes(t + 1, 255).len() <= 8);
        }
    }

    #[test]
    fn ternary_entry_matching() {
        let e = TernaryEntry::new(vec![0x17, 0x00], vec![0xff, 0x00], 1, 10);
        assert!(e.matches(&[0x17, 0x99]));
        assert!(!e.matches(&[0x18, 0x99]));
        assert_eq!(e.exact_bits(), 8);
        assert_eq!(e.width(), 2);
    }

    #[test]
    fn covers_relation() {
        let broad = TernaryEntry::new(vec![0x10], vec![0xf0], 1, 0);
        let narrow = TernaryEntry::new(vec![0x17], vec![0xff], 1, 0);
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.covers(&broad));
        let other = TernaryEntry::new(vec![0x27], vec![0xff], 1, 0);
        assert!(!broad.covers(&other));
    }

    #[test]
    fn display_shows_wildcards() {
        let e = TernaryEntry::new(vec![0b1010_0000], vec![0b1111_0000], 1, 3);
        let s = e.to_string();
        assert!(s.starts_with("1010****"), "got {s}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = range_to_prefixes(10, 9);
    }
}
