//! CART decision-tree induction over byte-valued features.
//!
//! The tree is stage 2's intermediate form: the compact classifier is
//! distilled into a tree whose root→leaf paths become match-action rules.
//! Features are `u8` byte values (exactly what the data plane extracts), so
//! split thresholds are integers and every path is a conjunction of
//! byte-range constraints.

use serde::{Deserialize, Serialize};

/// Impurity criterion for split search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitCriterion {
    /// Gini impurity.
    Gini,
    /// Shannon entropy.
    Entropy,
}

impl SplitCriterion {
    fn impurity(&self, counts: &[usize; 2]) -> f64 {
        let total = (counts[0] + counts[1]) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let p = counts[1] as f64 / total;
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for q in [p, 1.0 - p] {
                    if q > 0.0 {
                        h -= q * q.log2();
                    }
                }
                h
            }
        }
    }
}

/// Tree-induction hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs to be split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Impurity criterion.
    pub criterion: SplitCriterion,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 16,
            min_samples_leaf: 4,
            criterion: SplitCriterion::Gini,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf predicting `class`.
    Leaf {
        /// Predicted class (majority at the leaf).
        class: usize,
        /// Training samples that reached the leaf.
        samples: usize,
        /// Fraction of leaf samples in the majority class.
        purity: f64,
    },
    /// An internal split: `value[feature] <= threshold` goes left.
    Split {
        /// Feature (byte-position) index.
        feature: usize,
        /// Inclusive upper bound of the left branch.
        threshold: u8,
        /// Left child (`<= threshold`).
        left: Box<Node>,
        /// Right child (`> threshold`).
        right: Box<Node>,
    },
}

/// One root→leaf path expressed as per-feature inclusive byte ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreePath {
    /// For each feature, the inclusive `[lo, hi]` range this path admits
    /// (unconstrained features span `[0, 255]`).
    pub ranges: Vec<(u8, u8)>,
    /// The class the leaf predicts.
    pub class: usize,
    /// Training samples at the leaf.
    pub samples: usize,
}

impl TreePath {
    /// Returns `true` if `key` satisfies every range.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != ranges.len()`.
    pub fn matches(&self, key: &[u8]) -> bool {
        assert_eq!(key.len(), self.ranges.len(), "key width mismatch");
        key.iter()
            .zip(&self.ranges)
            .all(|(&v, &(lo, hi))| v >= lo && v <= hi)
    }

    /// Number of features actually constrained (range narrower than the
    /// full byte).
    pub fn constrained_fields(&self) -> usize {
        self.ranges
            .iter()
            .filter(|&&(lo, hi)| lo > 0 || hi < 255)
            .count()
    }
}

/// A fitted binary decision tree over byte features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    num_features: usize,
    config: TreeConfig,
}

impl DecisionTree {
    /// Fits a tree on row-major byte `data` (`labels.len()` rows of
    /// `num_features` bytes) with binary labels.
    ///
    /// # Panics
    ///
    /// Panics if the data length is inconsistent, the dataset is empty, or
    /// a label is not 0/1.
    pub fn fit(num_features: usize, data: &[u8], labels: &[usize], config: TreeConfig) -> Self {
        assert!(!labels.is_empty(), "cannot fit on an empty dataset");
        let indices: Vec<u32> = (0..labels.len() as u32).collect();
        Self::fit_sampled(num_features, data, labels, indices, config, None)
    }

    /// Fits a tree on a row subset of `data` with optional per-split
    /// feature subsampling — the forest induction entry point.
    ///
    /// `indices` selects the training rows; duplicates are allowed and act
    /// as sample weights, which is exactly what bootstrap resampling
    /// produces. When `sampler` is `Some`, it is invoked once per split
    /// search with the total feature count and returns the candidate
    /// feature indices that search may consider (out-of-range candidates
    /// are ignored); ties between equal-gain candidates break toward the
    /// earliest feature in the returned order, so samplers should return
    /// sorted indices for reproducibility. `None` considers every feature,
    /// making `fit_sampled(n, d, l, (0..rows).collect(), c, None)`
    /// identical to [`DecisionTree::fit`].
    ///
    /// # Panics
    ///
    /// Panics if the data length is inconsistent, `indices` is empty or
    /// out of range, or a label is not 0/1.
    pub fn fit_sampled(
        num_features: usize,
        data: &[u8],
        labels: &[usize],
        indices: Vec<u32>,
        config: TreeConfig,
        sampler: Option<&mut dyn FnMut(usize) -> Vec<usize>>,
    ) -> Self {
        assert!(num_features > 0, "num_features must be positive");
        assert!(!indices.is_empty(), "cannot fit on an empty row subset");
        assert_eq!(
            data.len(),
            labels.len() * num_features,
            "data length does not match labels × num_features"
        );
        assert!(
            indices.iter().all(|&i| (i as usize) < labels.len()),
            "row index out of range"
        );
        assert!(labels.iter().all(|&l| l < 2), "labels must be binary");
        let mut ctx = SplitContext {
            config: &config,
            sampler,
        };
        let root = build_node(num_features, data, labels, indices, 0, &mut ctx);
        DecisionTree {
            root,
            num_features,
            config,
        }
    }

    /// The induction configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Number of features the tree was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Borrows the root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Predicts the class of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != num_features`.
    pub fn predict(&self, row: &[u8]) -> usize {
        assert_eq!(row.len(), self.num_features, "row width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicts a batch of row-major samples.
    pub fn predict_batch(&self, data: &[u8]) -> Vec<usize> {
        data.chunks_exact(self.num_features)
            .map(|row| self.predict(row))
            .collect()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        count_nodes(&self.root)
    }

    /// Leaf count.
    pub fn leaf_count(&self) -> usize {
        count_leaves(&self.root)
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> usize {
        node_depth(&self.root)
    }

    /// Enumerates every root→leaf path as per-feature ranges.
    pub fn paths(&self) -> Vec<TreePath> {
        let mut out = Vec::new();
        let mut ranges = vec![(0u8, 255u8); self.num_features];
        collect_paths(&self.root, &mut ranges, &mut out);
        out
    }
}

fn count_nodes(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Split { left, right, .. } => 1 + count_nodes(left) + count_nodes(right),
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Split { left, right, .. } => count_leaves(left) + count_leaves(right),
    }
}

fn node_depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Split { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
    }
}

fn collect_paths(node: &Node, ranges: &mut Vec<(u8, u8)>, out: &mut Vec<TreePath>) {
    match node {
        Node::Leaf { class, samples, .. } => out.push(TreePath {
            ranges: ranges.clone(),
            class: *class,
            samples: *samples,
        }),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let saved = ranges[*feature];
            // Left: value <= threshold.
            ranges[*feature] = (saved.0, saved.1.min(*threshold));
            collect_paths(left, ranges, out);
            // Right: value > threshold.
            ranges[*feature] = (saved.0.max(threshold.saturating_add(1)), saved.1);
            collect_paths(right, ranges, out);
            ranges[*feature] = saved;
        }
    }
}

fn leaf_from(labels: &[usize], indices: &[u32]) -> Node {
    let positives = indices.iter().filter(|&&i| labels[i as usize] == 1).count();
    let samples = indices.len();
    let class = usize::from(positives * 2 >= samples && positives > 0);
    let majority = if class == 1 {
        positives
    } else {
        samples - positives
    };
    Node::Leaf {
        class,
        samples,
        purity: if samples == 0 {
            1.0
        } else {
            majority as f64 / samples as f64
        },
    }
}

/// Per-induction split-search state: the hyperparameters plus the
/// optional per-split feature sampler (forest feature subsampling).
struct SplitContext<'c, 's> {
    config: &'c TreeConfig,
    sampler: Option<&'s mut dyn FnMut(usize) -> Vec<usize>>,
}

fn build_node(
    num_features: usize,
    data: &[u8],
    labels: &[usize],
    indices: Vec<u32>,
    depth: usize,
    ctx: &mut SplitContext<'_, '_>,
) -> Node {
    let positives = indices.iter().filter(|&&i| labels[i as usize] == 1).count();
    let pure = positives == 0 || positives == indices.len();
    if pure || depth >= ctx.config.max_depth || indices.len() < ctx.config.min_samples_split {
        return leaf_from(labels, &indices);
    }
    let Some((feature, threshold)) = best_split(num_features, data, labels, &indices, ctx) else {
        return leaf_from(labels, &indices);
    };
    let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
        .iter()
        .partition(|&&i| data[i as usize * num_features + feature] <= threshold);
    if left_idx.len() < ctx.config.min_samples_leaf || right_idx.len() < ctx.config.min_samples_leaf
    {
        return leaf_from(labels, &indices);
    }
    let left = build_node(num_features, data, labels, left_idx, depth + 1, ctx);
    let right = build_node(num_features, data, labels, right_idx, depth + 1, ctx);
    // Collapse splits whose children agree — they add rules without
    // changing decisions.
    if let (
        Node::Leaf {
            class: lc,
            samples: ls,
            ..
        },
        Node::Leaf {
            class: rc,
            samples: rs,
            ..
        },
    ) = (&left, &right)
    {
        if lc == rc {
            let samples = ls + rs;
            return Node::Leaf {
                class: *lc,
                samples,
                purity: leaf_purity(labels, &indices, *lc),
            };
        }
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn leaf_purity(labels: &[usize], indices: &[u32], class: usize) -> f64 {
    if indices.is_empty() {
        return 1.0;
    }
    let majority = indices
        .iter()
        .filter(|&&i| labels[i as usize] == class)
        .count();
    majority as f64 / indices.len() as f64
}

/// Best-split search: for every candidate feature, build a 256-bin class
/// histogram, then scan thresholds with running counts. Candidates default
/// to every feature; a forest sampler narrows them per split.
fn best_split(
    num_features: usize,
    data: &[u8],
    labels: &[usize],
    indices: &[u32],
    ctx: &mut SplitContext<'_, '_>,
) -> Option<(usize, u8)> {
    let config = ctx.config;
    let candidates: Vec<usize> = match ctx.sampler.as_mut() {
        Some(sample) => sample(num_features)
            .into_iter()
            .filter(|&f| f < num_features)
            .collect(),
        None => (0..num_features).collect(),
    };
    let total = indices.len();
    let total_pos = indices.iter().filter(|&&i| labels[i as usize] == 1).count();
    let parent_counts = [total - total_pos, total_pos];
    let parent_impurity = config.criterion.impurity(&parent_counts);
    let mut best: Option<(usize, u8, f64)> = None;
    let mut histogram = vec![[0usize; 2]; 256];
    for feature in candidates {
        for bin in histogram.iter_mut() {
            *bin = [0, 0];
        }
        for &i in indices {
            let v = data[i as usize * num_features + feature] as usize;
            histogram[v][labels[i as usize]] += 1;
        }
        let mut left = [0usize; 2];
        for (threshold, counts) in histogram.iter().enumerate().take(255) {
            left[0] += counts[0];
            left[1] += counts[1];
            let left_n = left[0] + left[1];
            if left_n == 0 {
                continue;
            }
            if left_n == total {
                break;
            }
            let right = [parent_counts[0] - left[0], parent_counts[1] - left[1]];
            let right_n = right[0] + right[1];
            let gain = parent_impurity
                - (left_n as f64 / total as f64) * config.criterion.impurity(&left)
                - (right_n as f64 / total as f64) * config.criterion.impurity(&right);
            if gain > 1e-9 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, threshold as u8, gain));
            }
        }
    }
    // Place the threshold at the midpoint of the empty value gap, as CART
    // does, so near-boundary unseen values generalize symmetrically.
    best.map(|(f, t, _)| {
        let next_observed = indices
            .iter()
            .map(|&i| data[i as usize * num_features + f])
            .filter(|&v| v > t)
            .min()
            .unwrap_or(255);
        let mid = ((u16::from(t) + u16::from(next_observed)) / 2) as u8;
        (f, mid)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-feature data: attack iff byte >= 100.
    fn threshold_data() -> (Vec<u8>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for v in (0..=250u16).step_by(5) {
            data.push(v as u8);
            labels.push(usize::from(v >= 100));
        }
        (data, labels)
    }

    #[test]
    fn learns_a_threshold() {
        let (data, labels) = threshold_data();
        let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
        assert_eq!(tree.predict(&[0]), 0);
        assert_eq!(tree.predict(&[95]), 0);
        assert_eq!(tree.predict(&[100]), 1);
        assert_eq!(tree.predict(&[255]), 1);
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn learns_a_two_feature_conjunction() {
        // Attack iff f0 > 127 && f1 <= 50.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for a in (0..=255u16).step_by(17) {
            for b in (0..=255u16).step_by(17) {
                data.push(a as u8);
                data.push(b as u8);
                labels.push(usize::from(a > 127 && b <= 50));
            }
        }
        let tree = DecisionTree::fit(2, &data, &labels, TreeConfig::default());
        let preds = tree.predict_batch(&data);
        assert_eq!(preds, labels);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn paths_partition_the_space() {
        let (data, labels) = threshold_data();
        let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
        let paths = tree.paths();
        assert_eq!(paths.len(), tree.leaf_count());
        // Every possible byte must match exactly one path, and the path's
        // class must equal the tree's prediction.
        for v in 0..=255u8 {
            let matching: Vec<&TreePath> = paths.iter().filter(|p| p.matches(&[v])).collect();
            assert_eq!(matching.len(), 1, "byte {v}");
            assert_eq!(matching[0].class, tree.predict(&[v]));
        }
    }

    #[test]
    fn max_depth_is_respected() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        // A noisy problem that wants depth.
        for i in 0..512usize {
            data.push((i % 256) as u8);
            data.push(((i * 7) % 256) as u8);
            labels.push(usize::from((i % 16) < 4));
        }
        for depth in [1, 2, 3, 4] {
            let tree = DecisionTree::fit(
                2,
                &data,
                &labels,
                TreeConfig {
                    max_depth: depth,
                    ..TreeConfig::default()
                },
            );
            assert!(tree.depth() <= depth);
        }
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let data = vec![1, 2, 3, 4];
        let labels = vec![0, 0, 0, 0];
        let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[200]), 0);
        match tree.root() {
            Node::Leaf { purity, .. } => assert_eq!(*purity, 1.0),
            _ => panic!("expected a leaf"),
        }
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (data, labels) = threshold_data();
        let tree = DecisionTree::fit(
            1,
            &data,
            &labels,
            TreeConfig {
                criterion: SplitCriterion::Entropy,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.predict(&[95]), 0);
        assert_eq!(tree.predict(&[100]), 1);
    }

    #[test]
    fn constrained_fields_counts_narrow_ranges() {
        let p = TreePath {
            ranges: vec![(0, 255), (10, 20), (0, 100)],
            class: 1,
            samples: 5,
        };
        assert_eq!(p.constrained_fields(), 2);
        assert!(p.matches(&[7, 15, 50]));
        assert!(!p.matches(&[7, 25, 50]));
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_children() {
        let (data, labels) = threshold_data();
        let tree = DecisionTree::fit(
            1,
            &data,
            &labels,
            TreeConfig {
                min_samples_leaf: 1000,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let _ = DecisionTree::fit(1, &[], &[], TreeConfig::default());
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_labels_panic() {
        let _ = DecisionTree::fit(1, &[1, 2], &[0, 2], TreeConfig::default());
    }
}
