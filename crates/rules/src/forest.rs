//! Random-forest induction and per-tree ternary compilation.
//!
//! A [`RandomForest`] is an ensemble of [`DecisionTree`]s fitted with
//! bootstrap bagging (each tree trains on rows resampled with
//! replacement) and per-split feature subsampling (each split search only
//! considers a random candidate subset), both deterministic from
//! [`ForestConfig::seed`]. The ensemble verdict is a majority vote over
//! per-tree class verdicts, with an optional pForest-style
//! certainty-based [`EarlyExit`]: once at least `min_votes` trees have
//! voted and the leading class holds a lead of at least `margin`, the
//! remaining trees are skipped.
//!
//! Compilation reuses [`compile_tree`] per tree, producing one
//! [`RuleSet`] *stage* per tree ([`CompiledForest`]). A tree whose every
//! leaf predicts benign compiles to an **empty** ruleset; the stage is
//! still materialized and still votes (benign, by default-miss) — see
//! [`CompiledForest::stages`]. Dropping such a stage would silently
//! shrink the electorate and flip close votes.

use crate::compile::{compile_tree, CompileConfig, CompiledRules, TooManyEntries};
use crate::ruleset::RuleSet;
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Forest-induction hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub trees: usize,
    /// Per-tree induction parameters.
    pub tree: TreeConfig,
    /// Candidate features considered per split (`None` = all features).
    pub max_features: Option<usize>,
    /// Bootstrap-resample rows per tree (bagging). With `false` every
    /// tree sees the full dataset, so a 1-tree forest with
    /// `max_features: None` is exactly the plain CART tree.
    pub bootstrap: bool,
    /// Seed all per-tree randomness derives from.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 3,
            tree: TreeConfig::default(),
            max_features: None,
            bootstrap: true,
            seed: 0x1337,
        }
    }
}

/// pForest-style certainty-based early exit for the sequential vote.
///
/// Trees vote in stage order. After each vote, if at least `min_votes`
/// trees have voted and the absolute lead `|attack − benign|` is at least
/// `margin`, voting stops and the current leader wins. The exit is part
/// of the verdict *semantics* — per-frame and batched evaluation apply
/// the identical rule, so they stay bit-identical; what the batched hot
/// path additionally buys is skipping whole per-tree table lookups for
/// frames that already exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EarlyExit {
    /// Minimum number of votes cast before an exit is considered.
    pub min_votes: usize,
    /// Required absolute lead of the winning class to exit.
    pub margin: usize,
}

impl EarlyExit {
    /// Returns `true` when voting may stop under this policy.
    pub fn decided(&self, attack: usize, benign: usize) -> bool {
        attack + benign >= self.min_votes && attack.abs_diff(benign) >= self.margin
    }

    /// The strictest exit that can never flip the full majority verdict
    /// of a `trees`-member ensemble: `min_votes = margin = trees/2 + 1`.
    /// An exit fires only once the leader's lead exceeds every vote still
    /// outstanding (`trees − min_votes < margin`), so skipping the
    /// remaining trees is a pure lookup saving.
    pub fn sound_majority(trees: usize) -> EarlyExit {
        let quorum = trees / 2 + 1;
        EarlyExit {
            min_votes: quorum,
            margin: quorum,
        }
    }
}

/// Final majority verdict over vote counts: attack (class 1) iff strictly
/// more attack than benign votes. Ties fall to benign, consistent with
/// benign being the data plane's default (miss) action.
pub fn majority(attack: usize, benign: usize) -> usize {
    usize::from(attack > benign)
}

/// SplitMix64 — tiny deterministic generator, no external dependency, so
/// forest induction is reproducible from the seed alone.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Draws `k` distinct feature indices from `0..n`, sorted ascending so
/// equal-gain ties in the split search break deterministically.
fn sample_features(rng: &mut SplitMix64, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n).max(1);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below(n - i);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool.sort_unstable();
    pool
}

/// A fitted random forest over byte features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    importance: Vec<f64>,
    num_features: usize,
    config: ForestConfig,
}

impl RandomForest {
    /// Fits `config.trees` trees on row-major byte `data`, each on a
    /// bootstrap resample (when `config.bootstrap`) with per-split
    /// feature subsampling (when `config.max_features` narrows the set).
    /// Deterministic: the same inputs and seed produce the same forest.
    ///
    /// Per-tree importance (training accuracy on the *full* dataset) is
    /// computed at fit time; it orders trees for budget-driven dropping —
    /// see [`RandomForest::tree_importance`].
    ///
    /// # Panics
    ///
    /// Panics if `config.trees == 0` or the dataset is invalid (see
    /// [`DecisionTree::fit_sampled`]).
    pub fn fit(num_features: usize, data: &[u8], labels: &[usize], config: ForestConfig) -> Self {
        assert!(config.trees > 0, "a forest needs at least one tree");
        assert!(!labels.is_empty(), "cannot fit on an empty dataset");
        let rows = labels.len();
        let mut trees = Vec::with_capacity(config.trees);
        for t in 0..config.trees {
            let mut rng = SplitMix64::new(
                config
                    .seed
                    .wrapping_add((t as u64 + 1).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95)),
            );
            let indices: Vec<u32> = if config.bootstrap {
                (0..rows).map(|_| rng.below(rows) as u32).collect()
            } else {
                (0..rows as u32).collect()
            };
            let tree = match config.max_features {
                Some(k) if k < num_features => {
                    let mut sampler = |n: usize| sample_features(&mut rng, n, k);
                    DecisionTree::fit_sampled(
                        num_features,
                        data,
                        labels,
                        indices,
                        config.tree,
                        Some(&mut sampler),
                    )
                }
                _ => DecisionTree::fit_sampled(
                    num_features,
                    data,
                    labels,
                    indices,
                    config.tree,
                    None,
                ),
            };
            trees.push(tree);
        }
        let importance = trees
            .iter()
            .map(|tree| {
                let correct = data
                    .chunks_exact(num_features)
                    .zip(labels)
                    .filter(|(row, &label)| tree.predict(row) == label)
                    .count();
                correct as f64 / rows as f64
            })
            .collect();
        RandomForest {
            trees,
            importance,
            num_features,
            config,
        }
    }

    /// Assembles a forest from pre-fitted trees (synthetic pipelines and
    /// tests). Importance defaults to uniform.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or the trees disagree on feature count.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        let num_features = trees[0].num_features();
        assert!(
            trees.iter().all(|t| t.num_features() == num_features),
            "all trees must share one feature count"
        );
        let config = ForestConfig {
            trees: trees.len(),
            tree: *trees[0].config(),
            ..ForestConfig::default()
        };
        let importance = vec![1.0; trees.len()];
        RandomForest {
            trees,
            importance,
            num_features,
            config,
        }
    }

    /// The member trees, in vote (stage) order.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Per-tree importance, aligned with [`RandomForest::trees`]. The
    /// budgeter drops the *lowest*-importance trees first when a forest
    /// exceeds its table allocation.
    pub fn tree_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of features each tree consumes.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The induction configuration.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Per-tree class votes for one sample as `(attack, benign)` counts.
    pub fn votes(&self, row: &[u8]) -> (usize, usize) {
        let attack = self.trees.iter().filter(|t| t.predict(row) == 1).count();
        (attack, self.trees.len() - attack)
    }

    /// Full majority-vote prediction (no early exit).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != num_features`.
    pub fn predict(&self, row: &[u8]) -> usize {
        let (attack, benign) = self.votes(row);
        majority(attack, benign)
    }

    /// Sequential prediction under an early-exit policy: trees vote in
    /// stage order and voting stops as soon as `exit` is satisfied. This
    /// is the reference semantics the compiled data-plane ensemble must
    /// reproduce bit-for-bit.
    pub fn predict_early_exit(&self, row: &[u8], exit: EarlyExit) -> usize {
        let (mut attack, mut benign) = (0usize, 0usize);
        for tree in &self.trees {
            if tree.predict(row) == 1 {
                attack += 1;
            } else {
                benign += 1;
            }
            if exit.decided(attack, benign) {
                break;
            }
        }
        majority(attack, benign)
    }

    /// Predicts a batch of row-major samples by full majority vote.
    pub fn predict_batch(&self, data: &[u8]) -> Vec<usize> {
        data.chunks_exact(self.num_features)
            .map(|row| self.predict(row))
            .collect()
    }

    /// A new forest keeping only the trees at `keep` (in the given
    /// order), carrying their importance along — the budgeter's
    /// tree-dropping primitive.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or contains an out-of-range index.
    pub fn subset(&self, keep: &[usize]) -> RandomForest {
        assert!(!keep.is_empty(), "a forest needs at least one tree");
        let trees: Vec<DecisionTree> = keep.iter().map(|&i| self.trees[i].clone()).collect();
        let importance: Vec<f64> = keep.iter().map(|&i| self.importance[i]).collect();
        let config = ForestConfig {
            trees: trees.len(),
            ..self.config
        };
        RandomForest {
            trees,
            importance,
            num_features: self.num_features,
            config,
        }
    }

    /// Compiles every tree to its own ternary ruleset stage.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyEntries`] if any single tree blows the per-stage
    /// entry budget.
    pub fn compile(&self, config: &CompileConfig) -> Result<CompiledForest, TooManyEntries> {
        compile_forest(self, config)
    }
}

/// A forest compiled stage-per-tree.
#[derive(Debug, Clone)]
pub struct CompiledForest {
    /// One compiled ruleset per tree, in vote order.
    ///
    /// A benign-only tree (every leaf predicts class 0) compiles to an
    /// *empty* ruleset — [`compile_tree`] only expands attack-class
    /// paths. The stage is kept anyway: at lookup time an empty stage
    /// misses every key and therefore votes benign, which is exactly the
    /// tree's verdict. Dropping it would shrink the electorate and flip
    /// votes that the benign tree should have tied or won.
    pub stages: Vec<CompiledRules>,
}

impl CompiledForest {
    /// Number of per-tree stages (equals the forest's tree count, even
    /// when some stages are empty).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Borrows every per-tree ruleset, in vote order.
    pub fn rulesets(&self) -> Vec<&RuleSet> {
        self.stages.iter().map(|s| &s.ternary).collect()
    }

    /// Total installed ternary entries across all stages.
    pub fn total_entries(&self) -> usize {
        self.stages.iter().map(|s| s.ternary.len()).sum()
    }

    /// Majority-vote classification through the *compiled* stages: each
    /// stage votes attack iff its ternary ruleset matches `key` with
    /// class 1 (a miss is a benign vote — see [`CompiledForest::stages`]).
    /// This mirrors the data plane's vote semantics without a switch.
    pub fn classify(&self, key: &[u8]) -> usize {
        let attack = self
            .stages
            .iter()
            .filter(|s| s.ternary.classify(key) == 1)
            .count();
        majority(attack, self.stages.len() - attack)
    }
}

/// Compiles each tree of `forest` with [`compile_tree`], producing one
/// ruleset stage per tree. Benign-only trees yield empty stages that are
/// deliberately retained (see [`CompiledForest::stages`]).
///
/// # Errors
///
/// Returns [`TooManyEntries`] if any single tree exceeds the per-stage
/// entry budget in `config`.
pub fn compile_forest(
    forest: &RandomForest,
    config: &CompileConfig,
) -> Result<CompiledForest, TooManyEntries> {
    let stages = forest
        .trees()
        .iter()
        .map(|tree| compile_tree(tree, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CompiledForest { stages })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-feature data: attack iff byte >= 100, with some redundancy so
    /// bootstrap resamples still see both classes.
    fn threshold_data() -> (Vec<u8>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..4 {
            for v in (0..=250u16).step_by(5) {
                data.push((v as u8).wrapping_add(rep % 2));
                labels.push(usize::from(v >= 100));
            }
        }
        (data, labels)
    }

    #[test]
    fn fit_is_seed_deterministic() {
        let (data, labels) = threshold_data();
        let config = ForestConfig {
            trees: 5,
            max_features: Some(1),
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(1, &data, &labels, config);
        let b = RandomForest::fit(1, &data, &labels, config);
        assert_eq!(a, b);
        let c = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                seed: config.seed + 1,
                ..config
            },
        );
        assert_ne!(a, c, "a different seed must change some bootstrap");
    }

    #[test]
    fn single_tree_without_bootstrap_equals_cart() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 1,
                bootstrap: false,
                max_features: None,
                ..ForestConfig::default()
            },
        );
        let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
        assert_eq!(forest.trees()[0], tree);
        for v in 0..=255u8 {
            assert_eq!(forest.predict(&[v]), tree.predict(&[v]));
        }
    }

    #[test]
    fn majority_vote_learns_the_threshold() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.predict(&[0]), 0);
        assert_eq!(forest.predict(&[250]), 1);
        let preds = forest.predict_batch(&data);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(
            correct as f64 / labels.len() as f64 > 0.95,
            "forest should fit the training threshold"
        );
    }

    #[test]
    fn early_exit_with_unreachable_margin_equals_full_vote() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
        );
        let never = EarlyExit {
            min_votes: 1,
            margin: 6,
        };
        for v in 0..=255u8 {
            assert_eq!(forest.predict_early_exit(&[v], never), forest.predict(&[v]));
        }
    }

    #[test]
    fn early_exit_matches_sequential_reference() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
        );
        let exit = EarlyExit {
            min_votes: 2,
            margin: 2,
        };
        for v in 0..=255u8 {
            // Reference: count votes by hand with the same stopping rule.
            let (mut attack, mut benign) = (0usize, 0usize);
            for tree in forest.trees() {
                if tree.predict(&[v]) == 1 {
                    attack += 1;
                } else {
                    benign += 1;
                }
                if exit.decided(attack, benign) {
                    break;
                }
            }
            assert_eq!(
                forest.predict_early_exit(&[v], exit),
                majority(attack, benign)
            );
        }
    }

    #[test]
    fn importance_orders_trees_and_subset_keeps_them() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.tree_importance().len(), 5);
        assert!(forest
            .tree_importance()
            .iter()
            .all(|&a| (0.0..=1.0).contains(&a)));
        let kept = forest.subset(&[0, 2, 4]);
        assert_eq!(kept.trees().len(), 3);
        assert_eq!(kept.trees()[1], forest.trees()[2]);
        assert_eq!(kept.tree_importance()[1], forest.tree_importance()[2]);
        assert_eq!(kept.config().trees, 3);
    }

    /// Satellite regression: a benign-only tree compiles to an empty
    /// stage that is retained, and the ensemble can still outvote it to
    /// "attack". No silent stage drop.
    #[test]
    fn benign_only_tree_keeps_its_stage_and_ensemble_still_attacks() {
        let attack_data: Vec<u8> = (0..=255).collect();
        let attack_labels: Vec<usize> = (0..=255).map(|v| usize::from(v >= 100)).collect();
        let attack_tree = DecisionTree::fit(1, &attack_data, &attack_labels, TreeConfig::default());
        let benign_tree = DecisionTree::fit(1, &[1, 2, 3, 4], &[0, 0, 0, 0], TreeConfig::default());
        let forest = RandomForest::from_trees(vec![benign_tree, attack_tree.clone(), attack_tree]);
        assert_eq!(forest.predict(&[200]), 1, "2-of-3 attack votes win");
        assert_eq!(forest.predict(&[50]), 0);
        let compiled = forest.compile(&CompileConfig::default()).expect("compiles");
        assert_eq!(compiled.stage_count(), 3, "empty stage must not be dropped");
        assert!(compiled.stages[0].ternary.is_empty());
        assert!(!compiled.stages[1].ternary.is_empty());
        assert_eq!(compiled.rulesets().len(), 3);
    }

    #[test]
    fn sound_majority_exit_never_flips_the_full_vote() {
        let (data, labels) = threshold_data();
        for trees in [1usize, 3, 4, 5, 9] {
            let forest = RandomForest::fit(
                1,
                &data,
                &labels,
                ForestConfig {
                    trees,
                    max_features: Some(1),
                    ..ForestConfig::default()
                },
            );
            let exit = EarlyExit::sound_majority(trees);
            assert_eq!(exit.min_votes, trees / 2 + 1);
            for v in 0..=255u8 {
                assert_eq!(
                    forest.predict_early_exit(&[v], exit),
                    forest.predict(&[v]),
                    "sound exit flipped the verdict at {v} with {trees} trees"
                );
            }
        }
    }

    #[test]
    fn compiled_classify_agrees_with_reference_predict() {
        let (data, labels) = threshold_data();
        let forest = RandomForest::fit(
            1,
            &data,
            &labels,
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
        );
        let compiled = forest.compile(&CompileConfig::default()).expect("compiles");
        for v in 0..=255u8 {
            assert_eq!(compiled.classify(&[v]), forest.predict(&[v]));
        }
    }

    #[test]
    fn feature_subsampling_restricts_split_candidates() {
        // Feature 0 separates perfectly; feature 1 is noise. A sampler
        // pinned to feature 1 must not discover feature 0's split.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..256usize {
            data.push(i as u8);
            data.push((i * 37 % 251) as u8);
            labels.push(usize::from(i >= 128));
        }
        let all = DecisionTree::fit_sampled(
            2,
            &data,
            &labels,
            (0..256u32).collect(),
            TreeConfig::default(),
            None,
        );
        assert_eq!(
            all,
            DecisionTree::fit(2, &data, &labels, TreeConfig::default())
        );
        let mut pin = |_n: usize| vec![1usize];
        let noisy = DecisionTree::fit_sampled(
            2,
            &data,
            &labels,
            (0..256u32).collect(),
            TreeConfig::default(),
            Some(&mut pin),
        );
        let exact = (0..256usize)
            .filter(|&i| noisy.predict(&[i as u8, (i * 37 % 251) as u8]) == usize::from(i >= 128))
            .count();
        let full = (0..256usize)
            .filter(|&i| all.predict(&[i as u8, (i * 37 % 251) as u8]) == usize::from(i >= 128))
            .count();
        assert_eq!(full, 256, "unrestricted tree nails the clean feature");
        assert!(exact < 256, "feature-1-only tree cannot use feature 0");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_tree_forest_panics() {
        let _ = RandomForest::fit(
            1,
            &[1, 2],
            &[0, 1],
            ForestConfig {
                trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
