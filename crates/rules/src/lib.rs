//! # p4guard-rules
//!
//! Stage 2 of the `p4guard` pipeline: CART decision-tree induction over
//! byte features ([`tree::DecisionTree`]) and compilation of attack-class
//! tree paths into TCAM-installable ternary match-action rules
//! ([`compile::compile_tree`]), via minimal range→prefix expansion
//! ([`ternary::range_to_prefixes`]) with merge/shadow optimization
//! ([`ruleset::RuleSet`]).
//!
//! # Examples
//!
//! Fit a tree on byte data and compile it:
//!
//! ```
//! use p4guard_rules::compile::{compile_tree, CompileConfig};
//! use p4guard_rules::tree::{DecisionTree, TreeConfig};
//!
//! // Attack iff the byte is >= 100.
//! let data: Vec<u8> = (0..=255).collect();
//! let labels: Vec<usize> = (0..=255).map(|v| usize::from(v >= 100)).collect();
//! let tree = DecisionTree::fit(1, &data, &labels, TreeConfig::default());
//! let compiled = compile_tree(&tree, &CompileConfig::default())?;
//! assert_eq!(compiled.ternary.classify(&[42]), 0);
//! assert_eq!(compiled.ternary.classify(&[200]), 1);
//! # Ok::<(), p4guard_rules::compile::TooManyEntries>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod forest;
pub mod ruleset;
pub mod ternary;
pub mod tree;

pub use compile::{compile_tree, CompileConfig, CompileStats, CompiledRules, TooManyEntries};
pub use forest::{compile_forest, CompiledForest, EarlyExit, ForestConfig, RandomForest};
pub use ruleset::{RuleSet, RuleSetDiff};
pub use ternary::{range_to_prefixes, BytePrefix, TernaryEntry};
pub use tree::{DecisionTree, Node, SplitCriterion, TreeConfig, TreePath};
