//! Differential property suite for `RuleSet::optimize()`: the merge and
//! shadow-elimination passes must never change any classification. Random
//! rule sets — including adversarial ones with overlapping same-priority
//! entries of different classes, which the old merge pass would have
//! reordered — are checked verdict-for-verdict against the unoptimized
//! set over the **full** keyspace for 1- and 2-byte keys.

use p4guard_rules::ruleset::RuleSet;
use p4guard_rules::ternary::TernaryEntry;
use proptest::collection;
use proptest::prelude::*;

/// Masks biased toward sibling-mergeable shapes: purely random masks
/// almost never produce mergeable pairs, so the merge path would go
/// untested.
const MASKS: [u8; 6] = [0xff, 0xfe, 0xfc, 0xf0, 0x80, 0x00];

fn build(width: usize, raw: &[(Vec<u8>, Vec<usize>, usize, i32)]) -> RuleSet {
    let mut rs = RuleSet::new(width, 0);
    for (value, mask_sel, class, priority) in raw {
        let mask: Vec<u8> = mask_sel.iter().map(|&s| MASKS[s % MASKS.len()]).collect();
        rs.push(TernaryEntry::new(value.clone(), mask, *class, *priority));
    }
    rs
}

proptest! {
    /// Width-1 rule sets: every one of the 256 keys classifies identically
    /// before and after `optimize()`, and optimization never grows the
    /// entry count.
    #[test]
    fn optimize_preserves_all_verdicts_width_1(
        raw in collection::vec(
            (collection::vec(any::<u8>(), 1usize), collection::vec(0usize..6, 1usize), 0usize..3, 0i32..3),
            0..12,
        )
    ) {
        let original = build(1, &raw);
        let mut optimized = original.clone();
        let (merged, shadowed) = optimized.optimize();
        prop_assert!(optimized.len() <= original.len());
        for key in 0..=255u8 {
            prop_assert_eq!(
                original.classify(&[key]),
                optimized.classify(&[key]),
                "verdict changed for key {:#04x} (merged {}, shadowed {})\noriginal:\n{}\noptimized:\n{}",
                key, merged, shadowed, original, optimized
            );
        }
    }

    /// Width-2 rule sets over the full 65536-key keyspace.
    #[test]
    fn optimize_preserves_all_verdicts_width_2(
        raw in collection::vec(
            (collection::vec(any::<u8>(), 2usize), collection::vec(0usize..6, 2usize), 0usize..3, 0i32..3),
            0..8,
        )
    ) {
        let original = build(2, &raw);
        let mut optimized = original.clone();
        optimized.optimize();
        for hi in 0..=255u8 {
            for lo in 0..=255u8 {
                let key = [hi, lo];
                prop_assert_eq!(
                    original.classify(&key),
                    optimized.classify(&key),
                    "verdict changed for key {:?}\noriginal:\n{}\noptimized:\n{}",
                    key, original, optimized
                );
            }
        }
    }

    /// Optimization is idempotent: a second pass finds nothing to do and
    /// the verdict function stays fixed.
    #[test]
    fn optimize_is_idempotent(
        raw in collection::vec(
            (collection::vec(any::<u8>(), 1usize), collection::vec(0usize..6, 1usize), 0usize..3, 0i32..3),
            0..12,
        )
    ) {
        let mut rs = build(1, &raw);
        rs.optimize();
        let after_first = rs.clone();
        let (merged, shadowed) = rs.optimize();
        prop_assert_eq!((merged, shadowed), (0, 0), "second pass did work:\n{}", after_first);
        prop_assert!(rs.diff(&after_first).is_empty());
    }
}
