//! Mergeable log-scale latency histograms.
//!
//! The implementation moved to [`p4guard_telemetry::histogram`] so the
//! metrics registry can expose histograms without depending on the
//! gateway; this module re-exports it under the original path for
//! compatibility. The move also fixed an out-of-bounds panic on saturated
//! samples (`Duration::MAX`) by clamping the bucket index.

pub use p4guard_telemetry::histogram::LatencyHistogram;
