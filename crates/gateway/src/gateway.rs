//! The gateway runtime: N shard workers behind bounded frame queues, fed
//! by flow-hash dispatch, serving the control plane's latest published
//! ruleset snapshot.

use crate::flow::shard_for;
use crate::histogram::LatencyHistogram;
use crate::mirror::MirrorTap;
use crate::shard::{run_shard, Ingest, ShardStats};
use bytes::Bytes;
use crossbeam::channel::{bounded, Sender, TrySendError};
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::pipeline::PipelineCell;
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_packet::arena::FrameBatch;
use p4guard_telemetry::{Counter, DropReason, Event, Gauge, NoopSink, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Gateway sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Worker shards (≥ 1).
    pub shards: usize,
    /// Bounded per-shard queue depth; when full, non-blocking ingest drops
    /// with a counter instead of growing without bound.
    pub queue_capacity: usize,
    /// Frames a shard drains per batch (the ruleset-swap granularity).
    pub batch_size: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 2,
            queue_capacity: 1024,
            batch_size: 32,
        }
    }
}

impl GatewayConfig {
    /// A config with `shards` shards and default queue sizing.
    pub fn with_shards(shards: usize) -> Self {
        GatewayConfig {
            shards,
            ..Self::default()
        }
    }
}

/// Point-in-time view of the whole gateway: per-shard stats plus
/// aggregates with the same semantics as a single-switch replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewaySnapshot {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Frames dropped at ingest because a shard queue was full.
    pub dropped_backpressure: u64,
    /// Newest ruleset version published to any shard. During a canary
    /// rollout shards intentionally diverge — see
    /// [`GatewaySnapshot::shard_versions`] for the per-shard truth.
    pub version: u64,
    /// Active ruleset version in each shard's publication cell, indexed by
    /// shard. Unlike [`ShardStats::ruleset_version`] (the version the
    /// worker last *processed* with), this is what the shard will serve
    /// next — the value a canary engine compares against its candidate.
    pub shard_versions: Vec<u64>,
    /// Sum of all shard counters.
    pub totals: SwitchCounters,
    /// Merged forwarding-latency histogram.
    pub latency: LatencyHistogram,
    /// Installed entries in the newest serving pipeline (source count,
    /// before minimization), summed over its stages.
    #[serde(default)]
    pub pipeline_entries: usize,
    /// Entries the newest serving pipeline's lowered engines actually hold
    /// after ternary minimization; `<= pipeline_entries`.
    #[serde(default)]
    pub pipeline_entries_minimized: usize,
}

impl GatewaySnapshot {
    /// Frames whose ensemble vote early-exited on the batched path,
    /// summed over shards (see [`ShardStats::vote_exits`]).
    pub fn vote_exits(&self) -> u64 {
        self.shards.iter().map(|s| s.vote_exits).sum()
    }
}

impl fmt::Display for GatewaySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gateway: {} shards, ruleset v{}, {} received / {} forwarded / {} dropped ({} parser-rejected), {} backpressure drops",
            self.shards.len(),
            self.version,
            self.totals.received,
            self.totals.forwarded,
            self.totals.dropped,
            self.totals.parser_rejected,
            self.dropped_backpressure,
        )?;
        writeln!(f, "latency: {}", self.latency)?;
        for s in &self.shards {
            let active = self.shard_versions.get(s.shard).copied().unwrap_or(0);
            writeln!(
                f,
                "  shard {}: {} frames in {} batches, {} swaps seen (processed v{}, serving v{})",
                s.shard, s.processed, s.batches, s.swaps_seen, s.ruleset_version, active
            )?;
        }
        Ok(())
    }
}

/// The online serving runtime. See the crate docs for the architecture.
///
/// Created with [`Gateway::start`]; frames enter through
/// [`Gateway::offer`] (drop-on-full) or [`Gateway::dispatch`] (blocking);
/// [`Gateway::finish`] drains the queues, joins the workers and returns
/// the final [`GatewaySnapshot`].
pub struct Gateway {
    senders: Vec<Sender<Ingest>>,
    workers: Vec<JoinHandle<()>>,
    states: Vec<Arc<Mutex<ShardStats>>>,
    ingest_drops: Vec<AtomicU64>,
    cells: Vec<Arc<PipelineCell>>,
    mirror: Arc<MirrorTap>,
    config: GatewayConfig,
    telemetry: Option<GatewayTelemetry>,
}

/// The gateway-side telemetry handles: per-shard backpressure counters
/// (ingest drops happen before a frame reaches any shard sink) and the
/// shared bundle for overload flight-recorder events.
struct GatewayTelemetry {
    bundle: Arc<Telemetry>,
    backpressure: Vec<Counter>,
    queue_depth: Vec<Gauge>,
    batch_fill: Vec<Gauge>,
}

impl Gateway {
    /// Spawns `config.shards` workers serving the control plane's current
    /// pipeline, and subscribes the gateway to future
    /// [`ControlPlane::publish`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.queue_capacity` is zero.
    pub fn start(control: &ControlPlane, config: GatewayConfig) -> Gateway {
        Self::start_with_telemetry(control, config, None)
    }

    /// [`Gateway::start`] with an optional telemetry bundle. When `Some`,
    /// every shard worker runs with a
    /// [`RegistrySink`](p4guard_telemetry::RegistrySink) feeding the
    /// bundle's registry and flight recorder, and ingest backpressure
    /// drops are counted under `p4guard_drops_total{reason="backpressure"}`
    /// with an [`Event::Overload`] recorded the first time each shard
    /// sheds. When `None`, workers run with [`NoopSink`] and the hot path
    /// is byte-identical to the un-instrumented gateway.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.queue_capacity` is zero.
    pub fn start_with_telemetry(
        control: &ControlPlane,
        config: GatewayConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Gateway {
        assert!(config.shards > 0, "gateway needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be nonzero");
        // One publication cell per shard, all pre-loaded with the same
        // snapshot and subscribed in shard order — so with the gateway as
        // the control plane's first subscriber, subscriber index equals
        // shard index and `ControlPlane::publish_to` can canary a shard
        // subset while the rest keep their version.
        let initial = control.snapshot();
        let cells: Vec<Arc<PipelineCell>> = (0..config.shards)
            .map(|_| {
                let cell = Arc::new(PipelineCell::new((*initial).clone()));
                control.subscribe(Arc::clone(&cell));
                cell
            })
            .collect();
        if let Some(t) = &telemetry {
            control.set_recorder(Arc::clone(&t.recorder));
            if t.traces.enabled() {
                control.set_tracer(Arc::clone(&t.traces));
            }
            t.registry
                .gauge("p4guard_shards", "Worker shards in the gateway", &[])
                .set(config.shards as f64);
        }
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        let mut ingest_drops = Vec::with_capacity(config.shards);
        for (shard, cell) in cells.iter().enumerate() {
            let (tx, rx) = bounded::<Ingest>(config.queue_capacity);
            let state = Arc::new(Mutex::new(ShardStats {
                shard,
                ..ShardStats::default()
            }));
            let worker_cell = Arc::clone(cell);
            let worker_state = Arc::clone(&state);
            let batch = config.batch_size.max(1);
            let builder = std::thread::Builder::new().name(format!("p4guard-shard-{shard}"));
            let worker = match &telemetry {
                Some(t) => {
                    let sink = t.shard_sink(shard);
                    builder.spawn(move || run_shard(rx, worker_cell, worker_state, batch, sink))
                }
                None => {
                    builder.spawn(move || run_shard(rx, worker_cell, worker_state, batch, NoopSink))
                }
            };
            workers.push(worker.expect("spawn shard worker"));
            senders.push(tx);
            states.push(state);
            ingest_drops.push(AtomicU64::new(0));
        }
        let telemetry = telemetry.map(|bundle| GatewayTelemetry {
            backpressure: (0..config.shards)
                .map(|shard| {
                    bundle.registry.counter(
                        "p4guard_drops_total",
                        "Frames dropped, by reason",
                        &[
                            ("shard", &shard.to_string()),
                            ("reason", DropReason::Backpressure.as_str()),
                        ],
                    )
                })
                .collect(),
            queue_depth: (0..config.shards)
                .map(|shard| {
                    bundle.registry.gauge(
                        "p4guard_queue_depth",
                        "Frames waiting in a shard's ingest queue",
                        &[("shard", &shard.to_string())],
                    )
                })
                .collect(),
            batch_fill: (0..config.shards)
                .map(|shard| {
                    bundle.registry.gauge(
                        "p4guard_batch_fill",
                        "Mean frames per processed FrameBatch on a shard",
                        &[("shard", &shard.to_string())],
                    )
                })
                .collect(),
            bundle,
        });
        Gateway {
            senders,
            workers,
            states,
            ingest_drops,
            cells,
            mirror: Arc::new(MirrorTap::new()),
            config,
            telemetry,
        }
    }

    /// The gateway's sizing.
    pub fn config(&self) -> GatewayConfig {
        self.config
    }

    /// The per-shard publication cells the shards read from, indexed by
    /// shard (for tests and manual publication).
    pub fn cells(&self) -> &[Arc<PipelineCell>] {
        &self.cells
    }

    /// The ingest mirror tap feeding shadow evaluation. Closed (zero-cost
    /// beyond one atomic load per frame) until a shadow evaluator opens
    /// it.
    pub fn mirror(&self) -> &Arc<MirrorTap> {
        &self.mirror
    }

    /// Shard index `frame` would be dispatched to.
    pub fn shard_of(&self, frame: &[u8]) -> usize {
        shard_for(frame, self.config.shards)
    }

    /// Non-blocking ingest: enqueues `frame` on its flow's shard, or drops
    /// it (counted, reported in the snapshot) when that queue is full.
    /// Returns `true` when the frame was enqueued.
    pub fn offer(&self, frame: Bytes) -> bool {
        self.mirror.observe(&frame);
        let shard = self.shard_of(&frame);
        match self.senders[shard].try_send(Ingest::Frame(frame)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.note_ingest_drops(shard, 1);
                false
            }
        }
    }

    /// Blocking ingest: waits for queue space instead of dropping. This is
    /// the lossless path used by paced replay.
    pub fn dispatch(&self, frame: Bytes) {
        self.mirror.observe(&frame);
        let shard = self.shard_of(&frame);
        if self.senders[shard].send(Ingest::Frame(frame)).is_err() {
            self.note_ingest_drops(shard, 1);
        }
    }

    /// Splits `batch` into per-shard sub-batches by flow hash (sharing the
    /// arena chunk — no frame bytes are copied) and returns them indexed by
    /// shard. With one shard the batch passes through whole.
    fn split_batch(&self, batch: FrameBatch) -> Vec<FrameBatch> {
        if self.config.shards == 1 {
            return vec![batch];
        }
        batch.partition_by(self.config.shards, |frame| {
            shard_for(frame, self.config.shards)
        })
    }

    /// Blocking batch ingest: mirrors the batch, splits it per shard by
    /// flow hash, and waits for queue space on each shard. The whole batch
    /// crosses each queue as **one** message, so the per-frame channel cost
    /// of [`Gateway::dispatch`] is amortized over the batch.
    pub fn dispatch_batch(&self, batch: FrameBatch) {
        self.mirror.observe_batch(&batch);
        for (shard, sub) in self.split_batch(batch).into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let frames = sub.len() as u64;
            if self.senders[shard].send(Ingest::Batch(sub)).is_err() {
                self.note_ingest_drops(shard, frames);
            }
        }
    }

    /// Non-blocking batch ingest: like [`Gateway::dispatch_batch`] but a
    /// full shard queue drops that shard's whole sub-batch (counted as one
    /// backpressure drop per frame). Returns the number of frames that made
    /// it into a queue.
    pub fn offer_batch(&self, batch: FrameBatch) -> u64 {
        self.mirror.observe_batch(&batch);
        let mut enqueued = 0u64;
        for (shard, sub) in self.split_batch(batch).into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let frames = sub.len() as u64;
            match self.senders[shard].try_send(Ingest::Batch(sub)) {
                Ok(()) => enqueued += frames,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.note_ingest_drops(shard, frames);
                }
            }
        }
        enqueued
    }

    /// Counts `count` ingest drops; with telemetry attached also bumps the
    /// backpressure drop counter and records an overload-onset event the
    /// first time this shard sheds.
    fn note_ingest_drops(&self, shard: usize, count: u64) {
        let previous = self.ingest_drops[shard].fetch_add(count, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.backpressure[shard].add(count);
            // A shed frame means the queue is at capacity right now — make
            // the overload visible even if nobody snapshots until later.
            t.queue_depth[shard].set(self.senders[shard].len() as f64);
            if previous == 0 {
                t.bundle.recorder.record(Event::Overload {
                    shard,
                    dropped: previous + count,
                });
            }
        }
    }

    /// Frames currently waiting in each shard's ingest queue, indexed by
    /// shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.senders.iter().map(Sender::len).collect()
    }

    /// Aggregates a live snapshot without stopping the workers. With
    /// telemetry attached, also refreshes the
    /// `p4guard_queue_depth{shard}` gauges — diurnal overload shows up on
    /// `/metrics` whenever anything observes the gateway.
    pub fn snapshot(&self) -> GatewaySnapshot {
        if let Some(t) = &self.telemetry {
            for (shard, tx) in self.senders.iter().enumerate() {
                t.queue_depth[shard].set(tx.len() as f64);
            }
        }
        let shards: Vec<ShardStats> = self.states.iter().map(|s| s.lock().clone()).collect();
        if let Some(t) = &self.telemetry {
            for s in &shards {
                t.batch_fill[s.shard].set(s.batch_fill());
            }
        }
        let mut totals = SwitchCounters::default();
        let mut latency = LatencyHistogram::new();
        for s in &shards {
            totals.merge(&s.counters);
            latency.merge(&s.latency);
        }
        let shard_versions: Vec<u64> = self.cells.iter().map(|c| c.version()).collect();
        // Occupancy of the newest serving pipeline (any cell at the max
        // version serves identical bytes).
        let (pipeline_entries, pipeline_entries_minimized) = self
            .cells
            .iter()
            .max_by_key(|c| c.version())
            .map(|c| {
                let p = c.load();
                (p.entry_count(), p.minimized_entry_count())
            })
            .unwrap_or((0, 0));
        GatewaySnapshot {
            dropped_backpressure: self
                .ingest_drops
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum(),
            version: shard_versions.iter().copied().max().unwrap_or(0),
            shard_versions,
            totals,
            latency,
            shards,
            pipeline_entries,
            pipeline_entries_minimized,
        }
    }

    /// Closes ingest, lets every shard drain its queue, joins the workers
    /// and returns the final snapshot.
    pub fn finish(mut self) -> GatewaySnapshot {
        self.senders.clear(); // disconnects the channels; workers exit after draining
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker panicked");
        }
        self.snapshot()
    }
}
