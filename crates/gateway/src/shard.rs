//! The per-shard worker: drains a bounded frame queue in batches through
//! the current [`ReadPipeline`](p4guard_dataplane::pipeline::ReadPipeline)
//! snapshot, refreshing the snapshot between
//! batches when the control plane has published a new version.

use crate::histogram::LatencyHistogram;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use p4guard_dataplane::pipeline::PipelineCell;
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_telemetry::TelemetrySink;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Live statistics of one shard, readable while the shard runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index within the gateway.
    pub shard: usize,
    /// Packet counters, same semantics as a single switch's counters.
    pub counters: SwitchCounters,
    /// Per-frame forwarding latency.
    pub latency: LatencyHistogram,
    /// Frames processed.
    pub processed: u64,
    /// Batches drained from the queue.
    pub batches: u64,
    /// Ruleset swaps this shard picked up.
    pub swaps_seen: u64,
    /// Version of the snapshot the shard last processed with.
    pub ruleset_version: u64,
}

/// Runs one shard to queue exhaustion: blocks for the next frame, drains
/// opportunistically up to `batch_size`, processes the batch against the
/// cached snapshot, then checks the cell version once per batch.
///
/// The snapshot check is a single atomic load on the fast path, so a
/// concurrent [`ControlPlane::publish`](p4guard_dataplane::control::ControlPlane::publish)
/// never blocks frame processing — the new ruleset simply takes effect at
/// the next batch boundary.
pub(crate) fn run_shard<S: TelemetrySink>(
    rx: Receiver<Bytes>,
    cell: Arc<PipelineCell>,
    state: Arc<Mutex<ShardStats>>,
    batch_size: usize,
    mut sink: S,
) {
    let mut pipeline = cell.load();
    let mut version = pipeline.version();
    sink.swap_seen(version, &pipeline.stage_names());
    {
        let mut st = state.lock();
        st.ruleset_version = version;
    }
    // Pre-sized to the snapshot's requirement so the forwarding loop never
    // grows it; regrown only if a published ruleset widens its match keys.
    let mut scratch: Vec<u8> = vec![0; pipeline.scratch_len()];
    let mut batch: Vec<Bytes> = Vec::with_capacity(batch_size);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < batch_size {
            match rx.try_recv() {
                Ok(frame) => batch.push(frame),
                Err(_) => break,
            }
        }
        let published = cell.version();
        let swapped = published != version;
        if swapped {
            pipeline = cell.load();
            version = pipeline.version();
            sink.swap_seen(version, &pipeline.stage_names());
            if scratch.len() < pipeline.scratch_len() {
                scratch.resize(pipeline.scratch_len(), 0);
            }
        }
        let mut st = state.lock();
        if swapped {
            st.swaps_seen += 1;
            st.ruleset_version = version;
        }
        for frame in batch.drain(..) {
            let t0 = Instant::now();
            pipeline.process_with(&frame, &mut st.counters, &mut scratch, &mut sink);
            let elapsed = t0.elapsed();
            st.latency.record(elapsed);
            sink.latency(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            st.processed += 1;
        }
        st.batches += 1;
        // Flush buffered telemetry while still holding the stats lock:
        // any observer that sees this batch in `ShardStats` (snapshot,
        // drain loops) is guaranteed to find the registry caught up too.
        sink.batch_end();
    }
}
