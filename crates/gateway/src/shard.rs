//! The per-shard worker: drains a bounded ingest queue in batches through
//! the current [`ReadPipeline`](p4guard_dataplane::pipeline::ReadPipeline)
//! snapshot, refreshing the snapshot between
//! batches when the control plane has published a new version.

use crate::histogram::LatencyHistogram;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use p4guard_dataplane::pipeline::{BatchScratch, PipelineCell};
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_dataplane::Verdict;
use p4guard_packet::arena::FrameBatch;
use p4guard_telemetry::TelemetrySink;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One message on a shard's ingest queue: either a single owned frame (the
/// classic per-frame path, kept intact so the two paths stay directly
/// comparable) or a whole arena-backed [`FrameBatch`] that crossed the
/// queue with a single refcount bump.
#[derive(Debug, Clone)]
pub enum Ingest {
    /// One owned frame.
    Frame(Bytes),
    /// A batch of frames sharing one chunk.
    Batch(FrameBatch),
}

impl Ingest {
    /// Frames this message carries.
    pub fn frame_count(&self) -> usize {
        match self {
            Ingest::Frame(_) => 1,
            Ingest::Batch(b) => b.len(),
        }
    }
}

/// Live statistics of one shard, readable while the shard runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index within the gateway.
    pub shard: usize,
    /// Packet counters, same semantics as a single switch's counters.
    pub counters: SwitchCounters,
    /// Per-frame forwarding latency.
    pub latency: LatencyHistogram,
    /// Frames processed.
    pub processed: u64,
    /// Batches drained from the queue.
    pub batches: u64,
    /// Ruleset swaps this shard picked up.
    pub swaps_seen: u64,
    /// Version of the snapshot the shard last processed with.
    pub ruleset_version: u64,
    /// Frames that arrived packed in [`FrameBatch`] messages.
    #[serde(default)]
    pub batched_frames: u64,
    /// [`FrameBatch`] messages processed (feeds the
    /// `p4guard_batch_fill` gauge: `batched_frames / frame_batches`).
    #[serde(default)]
    pub frame_batches: u64,
    /// Frames whose ensemble vote early-exited before the last per-tree
    /// stage on the batched path, skipping the remaining table lookups.
    /// Always 0 unless the published pipeline carries a
    /// [`VoteStage`](p4guard_dataplane::vote::VoteStage) with an early
    /// exit.
    #[serde(default)]
    pub vote_exits: u64,
}

impl ShardStats {
    /// Mean frames per processed [`FrameBatch`] (0 before the first batch).
    pub fn batch_fill(&self) -> f64 {
        if self.frame_batches == 0 {
            0.0
        } else {
            self.batched_frames as f64 / self.frame_batches as f64
        }
    }
}

/// Runs one shard to queue exhaustion: blocks for the next message, drains
/// opportunistically up to `batch_size` frames, processes them against the
/// cached snapshot, then checks the cell version once per drain.
///
/// The snapshot check is a single atomic load on the fast path, so a
/// concurrent [`ControlPlane::publish`](p4guard_dataplane::control::ControlPlane::publish)
/// never blocks frame processing — the new ruleset simply takes effect at
/// the next batch boundary. A [`FrameBatch`] already in flight when a swap
/// lands is processed entirely against one snapshot (the drain it belongs
/// to), which is exactly the per-frame path's batch-boundary guarantee.
///
/// Per-frame messages go through
/// [`process_with`](p4guard_dataplane::pipeline::ReadPipeline::process_with)
/// with one `Instant` read per frame; [`FrameBatch`] messages go through
/// the staged
/// [`process_batch_with`](p4guard_dataplane::pipeline::ReadPipeline::process_batch_with)
/// loop with one `Instant` read per batch, attributing the batch-mean cost
/// to each frame.
pub(crate) fn run_shard<S: TelemetrySink>(
    rx: Receiver<Ingest>,
    cell: Arc<PipelineCell>,
    state: Arc<Mutex<ShardStats>>,
    batch_size: usize,
    mut sink: S,
) {
    let mut pipeline = cell.load();
    let mut version = pipeline.version();
    sink.swap_seen(version, &pipeline.stage_names());
    {
        let mut st = state.lock();
        st.ruleset_version = version;
    }
    // Pre-sized to the snapshot's requirement so the forwarding loop never
    // grows it; regrown only if a published ruleset widens its match keys.
    let mut scratch: Vec<u8> = vec![0; pipeline.scratch_len()];
    let mut batch_scratch = BatchScratch::new();
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut queue: Vec<Ingest> = Vec::with_capacity(batch_size);
    while let Ok(first) = rx.recv() {
        let mut frames = first.frame_count();
        queue.push(first);
        while frames < batch_size {
            match rx.try_recv() {
                Ok(msg) => {
                    frames += msg.frame_count();
                    queue.push(msg);
                }
                Err(_) => break,
            }
        }
        let published = cell.version();
        let swapped = published != version;
        if swapped {
            pipeline = cell.load();
            version = pipeline.version();
            sink.swap_seen(version, &pipeline.stage_names());
            if scratch.len() < pipeline.scratch_len() {
                scratch.resize(pipeline.scratch_len(), 0);
            }
        }
        let mut st = state.lock();
        if swapped {
            st.swaps_seen += 1;
            st.ruleset_version = version;
        }
        for msg in queue.drain(..) {
            match msg {
                Ingest::Frame(frame) => {
                    let t0 = Instant::now();
                    pipeline.process_with(&frame, &mut st.counters, &mut scratch, &mut sink);
                    let elapsed = t0.elapsed();
                    st.latency.record(elapsed);
                    sink.latency(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
                    st.processed += 1;
                }
                Ingest::Batch(batch) => {
                    let n = batch.len();
                    if n == 0 {
                        continue;
                    }
                    let t0 = Instant::now();
                    verdicts.clear();
                    pipeline.process_batch_with(
                        batch.data(),
                        batch.spans(),
                        &mut st.counters,
                        &mut batch_scratch,
                        &mut verdicts,
                        &mut sink,
                    );
                    let per_frame = t0.elapsed() / n as u32;
                    st.latency.record_n(per_frame, n as u64);
                    sink.latency_n(
                        u64::try_from(per_frame.as_nanos()).unwrap_or(u64::MAX),
                        n as u64,
                    );
                    st.processed += n as u64;
                    st.batched_frames += n as u64;
                    st.frame_batches += 1;
                    st.vote_exits += batch_scratch.vote_early_exits();
                }
            }
        }
        st.batches += 1;
        // Flush buffered telemetry while still holding the stats lock:
        // any observer that sees this batch in `ShardStats` (snapshot,
        // drain loops) is guaranteed to find the registry caught up too.
        sink.batch_end();
    }
}
