//! The mirror tap: a sampled, non-enforcing copy of the ingest stream for
//! shadow evaluation. When closed (the default) the tap costs one relaxed
//! atomic load per frame; when open, every Nth frame's `Bytes` handle is
//! cloned (a refcount bump, no copy) and offered to a bounded channel the
//! shadow evaluator drains. The tap never blocks ingest: when the shadow
//! side falls behind, samples are shed and counted.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use p4guard_packet::arena::FrameBatch;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stride-sampled, drop-on-full frame mirror. Sampling is a
/// deterministic 1-in-N stride over the ingest sequence (not random), so
/// a replayed trace mirrors exactly the same frames every run.
#[derive(Default)]
pub struct MirrorTap {
    /// Sampling stride; 0 means the tap is closed.
    stride: AtomicU64,
    /// Frames remaining until the next sample. A countdown instead of a
    /// position counter keeps the per-frame open-tap cost to one
    /// `fetch_sub` — no integer division against a dynamic stride on the
    /// dispatch path.
    countdown: AtomicU64,
    mirrored: AtomicU64,
    shed: AtomicU64,
    tx: Mutex<Option<Sender<Bytes>>>,
}

impl MirrorTap {
    /// A closed tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the tap: one ingest frame in `stride` is mirrored into a new
    /// bounded channel of `capacity` samples, whose receiver is returned.
    /// Re-opening replaces the previous channel (its receiver disconnects)
    /// and restarts the stride counter so runs stay reproducible.
    pub fn open(&self, stride: u64, capacity: usize) -> Receiver<Bytes> {
        let (tx, rx) = bounded(capacity.max(1));
        let mut guard = self.tx.lock();
        *guard = Some(tx);
        // The first observed frame is sampled (countdown of 1), matching
        // a stride sequence starting at position 0.
        self.countdown.store(1, Ordering::Relaxed);
        self.stride.store(stride.max(1), Ordering::Relaxed);
        rx
    }

    /// Closes the tap. The shadow-side receiver disconnects once it has
    /// drained the samples already queued.
    pub fn close(&self) {
        self.stride.store(0, Ordering::Relaxed);
        *self.tx.lock() = None;
    }

    /// Whether the tap is currently open.
    pub fn is_open(&self) -> bool {
        self.stride.load(Ordering::Relaxed) != 0
    }

    /// Samples mirrored into the channel since the tap was created.
    pub fn mirrored(&self) -> u64 {
        self.mirrored.load(Ordering::Relaxed)
    }

    /// Samples shed because the shadow side was behind (channel full).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Observes one ingest frame, mirroring it when it falls on the
    /// sampled stride position. With the tap closed this is a single
    /// relaxed load — cheap enough to sit on the enforcement path.
    #[inline]
    pub fn observe(&self, frame: &Bytes) {
        let stride = self.stride.load(Ordering::Relaxed);
        if stride == 0 {
            return;
        }
        if self.countdown.fetch_sub(1, Ordering::Relaxed) != 1 {
            return;
        }
        self.countdown.store(stride, Ordering::Relaxed);
        self.send_sample(frame.clone());
    }

    /// Observes a whole ingest batch, mirroring the frames that fall on
    /// sampled stride positions — the same positions a frame-by-frame
    /// [`MirrorTap::observe`] walk would sample. With the tap closed this
    /// is a single relaxed load **per batch** (the open/closed decision is
    /// hoisted out of the frame loop; a tap opened mid-batch starts
    /// sampling at the next batch). Sampled frames are handed out as
    /// zero-copy `Bytes` views into the batch's shared chunk.
    pub fn observe_batch(&self, batch: &FrameBatch) {
        let stride = self.stride.load(Ordering::Relaxed);
        if stride == 0 {
            return;
        }
        for i in 0..batch.len() {
            if self.countdown.fetch_sub(1, Ordering::Relaxed) != 1 {
                continue;
            }
            self.countdown.store(stride, Ordering::Relaxed);
            self.send_sample(batch.frame_bytes(i));
        }
    }

    fn send_sample(&self, sample: Bytes) {
        let guard = self.tx.lock();
        if let Some(tx) = guard.as_ref() {
            match tx.try_send(sample) {
                Ok(()) => {
                    self.mirrored.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: u8) -> Bytes {
        Bytes::from(vec![i; 4])
    }

    fn drain(rx: &Receiver<Bytes>) -> Vec<u8> {
        let mut got = Vec::new();
        while let Ok(f) = rx.try_recv() {
            got.push(f[0]);
        }
        got
    }

    #[test]
    fn closed_tap_mirrors_nothing() {
        let tap = MirrorTap::new();
        assert!(!tap.is_open());
        for i in 0..10 {
            tap.observe(&frame(i));
        }
        assert_eq!(tap.mirrored(), 0);
        assert_eq!(tap.shed(), 0);
    }

    #[test]
    fn open_tap_samples_one_in_n_deterministically() {
        let tap = MirrorTap::new();
        let rx = tap.open(4, 64);
        for i in 0..16 {
            tap.observe(&frame(i));
        }
        assert_eq!(tap.mirrored(), 4);
        // Positions 0, 4, 8, 12 of the post-open stream.
        assert_eq!(drain(&rx), vec![0, 4, 8, 12]);
        // Re-opening restarts the stride so replays line up.
        let rx = tap.open(4, 64);
        for i in 0..8 {
            tap.observe(&frame(i));
        }
        assert_eq!(drain(&rx), vec![0, 4]);
    }

    #[test]
    fn observe_batch_samples_the_same_positions_as_per_frame() {
        let per = MirrorTap::new();
        let rx_per = per.open(3, 64);
        for i in 0..10 {
            per.observe(&frame(i));
        }
        let batched = MirrorTap::new();
        let rx_batched = batched.open(3, 64);
        let mut arena = p4guard_packet::arena::FrameArena::new(128);
        for i in 0..10u8 {
            arena.push(&[i; 4]);
            if i % 4 == 3 {
                let b = arena.seal_batch();
                batched.observe_batch(&b);
            }
        }
        let b = arena.seal_batch();
        batched.observe_batch(&b);
        assert_eq!(drain(&rx_per), drain(&rx_batched));
        assert_eq!(per.mirrored(), batched.mirrored());
    }

    #[test]
    fn full_channel_sheds_instead_of_blocking() {
        let tap = MirrorTap::new();
        let _rx = tap.open(1, 2);
        for i in 0..5 {
            tap.observe(&frame(i));
        }
        assert_eq!(tap.mirrored(), 2);
        assert_eq!(tap.shed(), 3);
    }

    #[test]
    fn close_disconnects_the_receiver_after_drain() {
        let tap = MirrorTap::new();
        let rx = tap.open(1, 8);
        tap.observe(&frame(7));
        tap.close();
        assert!(!tap.is_open());
        tap.observe(&frame(8)); // ignored: tap closed
        assert_eq!(rx.recv().unwrap()[0], 7);
        assert!(rx.recv().is_err(), "sender dropped on close");
    }
}
