//! RSS-style flow hashing: deterministic shard assignment from the frame's
//! 5-tuple so every packet of a flow lands on the same worker and per-flow
//! ordering is preserved across the gateway.

/// Ethernet header length.
const ETH_HLEN: usize = 14;
/// EtherType offset within the Ethernet header.
const ETHERTYPE_OFF: usize = 12;
/// IPv4 EtherType.
const ETHERTYPE_IPV4: u16 = 0x0800;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Final avalanche (the 64-bit finalizer popularized by MurmurHash3): raw
/// FNV-1a has weak low bits when inputs differ only in their last bytes,
/// and sharding takes the hash modulo a small power of two.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Extracts the IPv4 5-tuple region of `frame`, if present: protocol,
/// source/destination address, and (for TCP/UDP) the 4 port bytes right
/// after the IP header.
fn five_tuple(frame: &[u8]) -> Option<(u8, [u8; 8], [u8; 4])> {
    if frame.len() < ETH_HLEN + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[ETHERTYPE_OFF], frame[ETHERTYPE_OFF + 1]]);
    if ethertype != ETHERTYPE_IPV4 {
        return None;
    }
    let ihl = usize::from(frame[ETH_HLEN] & 0x0f) * 4;
    if ihl < 20 {
        return None;
    }
    let proto = frame[ETH_HLEN + 9];
    let mut addrs = [0u8; 8];
    addrs.copy_from_slice(&frame[ETH_HLEN + 12..ETH_HLEN + 20]);
    // TCP (6) and UDP (17) carry src/dst ports in their first 4 bytes.
    let mut ports = [0u8; 4];
    if matches!(proto, 6 | 17) {
        let l4 = ETH_HLEN + ihl;
        if let Some(p) = frame.get(l4..l4 + 4) {
            ports.copy_from_slice(p);
        }
    }
    Some((proto, addrs, ports))
}

/// Hashes a frame's flow identity (FNV-1a over the IPv4 5-tuple).
///
/// Frames of the same flow — same protocol, addresses and ports — hash
/// identically regardless of payload. Non-IPv4 or truncated frames fall
/// back to hashing their first 16 bytes, which still keeps identical
/// headers together.
pub fn flow_hash(frame: &[u8]) -> u64 {
    match five_tuple(frame) {
        Some((proto, addrs, ports)) => {
            let h = fnv1a(FNV_OFFSET, &[proto]);
            let h = fnv1a(h, &addrs);
            mix(fnv1a(h, &ports))
        }
        None => mix(fnv1a(FNV_OFFSET, &frame[..frame.len().min(16)])),
    }
}

/// Maps a frame to one of `shards` workers by flow hash.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_for(frame: &[u8], shards: usize) -> usize {
    assert!(shards > 0, "gateway needs at least one shard");
    (flow_hash(frame) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal Ethernet+IPv4+UDP frame with the given 5-tuple and
    /// payload byte.
    fn udp_frame(src: [u8; 4], dst: [u8; 4], sport: u16, dport: u16, payload: u8) -> Vec<u8> {
        let mut f = vec![0u8; ETH_HLEN];
        f[ETHERTYPE_OFF] = 0x08; // IPv4
        let mut ip = vec![0u8; 20];
        ip[0] = 0x45; // version 4, IHL 5
        ip[9] = 17; // UDP
        ip[12..16].copy_from_slice(&src);
        ip[16..20].copy_from_slice(&dst);
        f.extend_from_slice(&ip);
        f.extend_from_slice(&sport.to_be_bytes());
        f.extend_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&[0, 12, 0, 0]); // UDP length/checksum
        f.push(payload);
        f
    }

    #[test]
    fn same_five_tuple_same_shard_regardless_of_payload() {
        for shards in [1usize, 2, 4, 8] {
            let a = udp_frame([10, 0, 0, 1], [10, 0, 0, 2], 5683, 9000, 0x00);
            let b = udp_frame([10, 0, 0, 1], [10, 0, 0, 2], 5683, 9000, 0xff);
            assert_eq!(shard_for(&a, shards), shard_for(&b, shards));
            assert_eq!(flow_hash(&a), flow_hash(&b));
        }
    }

    #[test]
    fn different_flows_spread_over_shards() {
        let shards = 4usize;
        let mut seen = [0usize; 4];
        for i in 0..64u8 {
            let f = udp_frame([10, 0, 0, i], [10, 0, 1, 1], 1000 + u16::from(i), 80, 0);
            seen[shard_for(&f, shards)] += 1;
        }
        // Every shard receives some flows: the hash actually spreads.
        assert!(seen.iter().all(|&n| n > 0), "shard load: {seen:?}");
    }

    #[test]
    fn hash_is_deterministic_across_calls() {
        let f = udp_frame([192, 168, 0, 7], [192, 168, 0, 8], 1234, 4321, 9);
        assert_eq!(flow_hash(&f), flow_hash(&f.clone()));
    }

    #[test]
    fn non_ip_frames_fall_back_to_prefix_hash() {
        let short = [0xaau8; 10];
        assert_eq!(flow_hash(&short), flow_hash(&short));
        let arp = {
            let mut f = vec![0u8; 40];
            f[ETHERTYPE_OFF] = 0x08;
            f[ETHERTYPE_OFF + 1] = 0x06; // ARP
            f
        };
        let _ = shard_for(&arp, 4); // must not panic
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_for(&[0u8; 64], 0);
    }
}
