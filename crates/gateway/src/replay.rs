//! Paced trace replay into a running gateway: offers frames at a target
//! packet rate (or as fast as possible) and reports what actually made it
//! into the shard queues.

use crate::gateway::Gateway;
use bytes::Bytes;
use p4guard_dataplane::switch::compute_pps;
use p4guard_packet::arena::FrameBatch;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How many frames to send between pacing checks; coarse pacing keeps the
/// sleep overhead off the per-frame path.
const PACE_CHUNK: u64 = 256;

/// What a [`replay`] call pushed through the gateway's ingest side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Frames taken from the source.
    pub offered: u64,
    /// Frames that made it into a shard queue.
    pub enqueued: u64,
    /// Frames dropped at ingest because a queue was full (zero in
    /// blocking mode).
    pub dropped_backpressure: u64,
    /// Wall time of the replay loop.
    pub elapsed: Duration,
    /// Achieved offer rate in packets per second.
    pub offered_pps: f64,
}

/// Ingest policy for [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestMode {
    /// Wait for queue space — lossless, rate degrades under overload.
    Blocking,
    /// Drop on full queues — lossy, rate holds under overload.
    DropOnFull,
}

/// Replays `frames` into `gateway`, pacing to `target_pps` when given.
///
/// Pacing is coarse: the offered rate is checked every `PACE_CHUNK` (256)
/// frames and the loop sleeps off any accumulated lead, so short traces
/// can overshoot slightly but sustained rates converge on the target.
pub fn replay<I>(
    gateway: &Gateway,
    frames: I,
    target_pps: Option<f64>,
    mode: IngestMode,
) -> ReplayReport
where
    I: IntoIterator<Item = Bytes>,
{
    let start = Instant::now();
    let mut offered = 0u64;
    let mut enqueued = 0u64;
    for frame in frames {
        if let Some(pps) = target_pps {
            if pps > 0.0 && offered > 0 && offered.is_multiple_of(PACE_CHUNK) {
                let due = Duration::from_secs_f64(offered as f64 / pps);
                let elapsed = start.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
        }
        offered += 1;
        match mode {
            IngestMode::Blocking => {
                gateway.dispatch(frame);
                enqueued += 1;
            }
            IngestMode::DropOnFull => {
                if gateway.offer(frame) {
                    enqueued += 1;
                }
            }
        }
    }
    let elapsed = start.elapsed();
    ReplayReport {
        offered,
        enqueued,
        dropped_backpressure: offered - enqueued,
        elapsed,
        offered_pps: compute_pps(offered as usize, elapsed),
    }
}

/// Replays pre-built [`FrameBatch`]es into `gateway`, pacing to
/// `target_pps` (frames per second) when given. The batched counterpart of
/// [`replay`]: each batch enters through [`Gateway::dispatch_batch`] /
/// [`Gateway::offer_batch`], so ingest costs one flow-hash per frame and
/// one channel send per shard **per batch** rather than per frame.
///
/// `offered`/`enqueued` in the report count frames, not batches, so the
/// two replay forms are directly comparable.
pub fn replay_batched<I>(
    gateway: &Gateway,
    batches: I,
    target_pps: Option<f64>,
    mode: IngestMode,
) -> ReplayReport
where
    I: IntoIterator<Item = FrameBatch>,
{
    let start = Instant::now();
    let mut offered = 0u64;
    let mut enqueued = 0u64;
    let mut since_pace = 0u64;
    for batch in batches {
        if let Some(pps) = target_pps {
            if pps > 0.0 && offered > 0 && since_pace >= PACE_CHUNK {
                since_pace = 0;
                let due = Duration::from_secs_f64(offered as f64 / pps);
                let elapsed = start.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
        }
        let frames = batch.len() as u64;
        offered += frames;
        since_pace += frames;
        match mode {
            IngestMode::Blocking => {
                gateway.dispatch_batch(batch);
                enqueued += frames;
            }
            IngestMode::DropOnFull => {
                enqueued += gateway.offer_batch(batch);
            }
        }
    }
    let elapsed = start.elapsed();
    ReplayReport {
        offered,
        enqueued,
        dropped_backpressure: offered - enqueued,
        elapsed,
        offered_pps: compute_pps(offered as usize, elapsed),
    }
}
