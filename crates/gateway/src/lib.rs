//! # p4guard-gateway
//!
//! Online serving runtime for the p4guard data plane: wraps the software
//! switch in a pool of worker shards so traces (or live traffic) can be
//! replayed through the learned ruleset concurrently, while the control
//! plane hot-swaps new rulesets underneath with zero forwarding stalls.
//!
//! ## Architecture
//!
//! - **Sharding** ([`flow`]): frames are dispatched to one of N workers by
//!   an RSS-style FNV-1a hash of the IPv4 5-tuple, so all packets of one
//!   flow land on the same shard and per-flow ordering is preserved.
//! - **Bounded queues**: each shard drains a bounded `crossbeam` channel.
//!   Under overload the gateway drops at ingest with a counter
//!   ([`GatewaySnapshot::dropped_backpressure`]) — queues never grow
//!   without bound.
//! - **RCU-style hot swap**: workers process batches against a frozen
//!   [`ReadPipeline`](p4guard_dataplane::pipeline::ReadPipeline) snapshot
//!   and re-check the shared
//!   [`PipelineCell`](p4guard_dataplane::pipeline::PipelineCell) version
//!   (one atomic load) between batches. The control plane compiles the new
//!   ruleset off to the side and publishes it with
//!   [`ControlPlane::publish`](p4guard_dataplane::control::ControlPlane::publish);
//!   no worker ever blocks on a rule update.
//! - **Observability**: each shard keeps its own
//!   [`SwitchCounters`](p4guard_dataplane::switch::SwitchCounters) and a
//!   mergeable log-scale [`LatencyHistogram`]; [`Gateway::snapshot`]
//!   aggregates them into one [`GatewaySnapshot`] whose totals match what a
//!   single switch would have counted on the same frames.

pub mod flow;
pub mod gateway;
pub mod histogram;
pub mod mirror;
pub mod replay;
pub mod shard;

pub use flow::{flow_hash, shard_for};
pub use gateway::{Gateway, GatewayConfig, GatewaySnapshot};
pub use histogram::LatencyHistogram;
pub use mirror::MirrorTap;
pub use replay::{replay, replay_batched, IngestMode, ReplayReport};
pub use shard::{Ingest, ShardStats};
