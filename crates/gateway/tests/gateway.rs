//! End-to-end gateway tests: shard aggregation equivalence with a single
//! switch, mid-stream ruleset hot swap, and backpressure accounting.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
use p4guard_gateway::{replay, Gateway, GatewayConfig, IngestMode};

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;
const UDP: u8 = 17;
const TCP: u8 = 6;

/// Builds an Ethernet+IPv4 frame for flow `flow` carrying `proto` and one
/// payload byte. Distinct `flow` values produce distinct 5-tuples.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08; // EtherType IPv4
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    // TCP/UDP port bytes: spread source ports across flows.
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A mixed workload: 16 flows alternating UDP/TCP, `reps` frames each.
fn workload(reps: usize) -> Vec<Bytes> {
    let mut frames = Vec::new();
    for rep in 0..reps {
        for flow in 0..16u8 {
            let proto = if flow % 2 == 0 { UDP } else { TCP };
            frames.push(frame(flow, proto, rep as u8));
        }
    }
    frames
}

/// A control plane over a one-stage switch whose ternary ACL keys on the
/// IPv4 protocol byte. Starts empty (everything forwards).
fn build_control() -> (ControlPlane, usize) {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("gw-test", parser, 1);
    let acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    let stage = switch.add_stage(acl);
    (ControlPlane::new(switch), stage)
}

fn install_drop_proto(control: &ControlPlane, stage: usize, proto: u8) {
    control.with_switch_mut(|sw| {
        sw.stage_mut(stage)
            .insert(
                MatchSpec::Ternary {
                    value: vec![proto],
                    mask: vec![0xff],
                },
                Action::Drop,
                10,
            )
            .unwrap();
    });
}

/// ISSUE acceptance: counters collected from N shards must sum to exactly
/// what a single switch counts replaying the same trace.
#[test]
fn shard_counters_sum_to_single_switch_totals() {
    let frames = workload(40);
    let (control, stage) = build_control();
    install_drop_proto(&control, stage, UDP);

    let single = control.with_switch_mut(|sw| {
        sw.run_frames(frames.iter().map(|f| f.as_ref()));
        sw.counters().clone()
    });
    control.with_switch_mut(|sw| sw.reset_counters());

    for shards in [1usize, 2, 4] {
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));
        for f in &frames {
            gw.dispatch(f.clone());
        }
        let snap = gw.finish();
        assert_eq!(
            snap.totals, single,
            "{shards}-shard totals diverge from single switch"
        );
        assert_eq!(snap.dropped_backpressure, 0);
        assert_eq!(
            snap.shards.iter().map(|s| s.processed).sum::<u64>(),
            frames.len() as u64
        );
        // Per-flow placement: every frame of a flow went to one shard, so
        // the number of busy shards never exceeds the number of flows.
        let busy = snap.shards.iter().filter(|s| s.processed > 0).count();
        assert!(busy <= 16);
    }
}

/// Hot swap mid-stream: publishing a new ruleset while traffic flows takes
/// effect for every subsequent frame, with zero backpressure drops in
/// blocking mode (the "zero forwarding stalls" criterion).
#[test]
fn hot_swap_mid_stream_applies_to_all_later_frames() {
    let (control, stage) = build_control();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(4));
    let first = workload(25);
    let second = workload(25);
    let udp_in_second = second.iter().filter(|f| f[PROTO_OFF] == UDP).count() as u64;

    for f in &first {
        gw.dispatch(f.clone());
    }
    // Swaps take effect at batch boundaries, so frames still queued at
    // publish time may legitimately see the new ruleset. Drain first to
    // make the pre/post split exact.
    while gw.snapshot().totals.received < first.len() as u64 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Compile the new ruleset off to the side and publish: no worker stalls.
    install_drop_proto(&control, stage, UDP);
    let report = control.publish();
    assert!(report.subscribers >= 1);
    for f in &second {
        gw.dispatch(f.clone());
    }

    let snap = gw.finish();
    // Every pre-swap frame forwarded; every post-swap UDP frame dropped.
    assert_eq!(snap.totals.dropped, udp_in_second);
    assert_eq!(
        snap.totals.forwarded,
        (first.len() + second.len()) as u64 - udp_in_second
    );
    assert_eq!(
        snap.dropped_backpressure, 0,
        "blocking replay must not drop"
    );
    assert_eq!(snap.version, report.version);
    assert!(
        snap.shards.iter().map(|s| s.swaps_seen).sum::<u64>() >= 1,
        "at least one shard must observe the swap"
    );
    for s in &snap.shards {
        if s.processed > 0 {
            assert_eq!(s.ruleset_version, report.version);
        }
    }
}

/// Backpressure: with a tiny queue and non-blocking ingest, overload drops
/// at the edge with a counter — but every frame is accounted for.
#[test]
fn backpressure_drops_are_counted_and_conserved() {
    let (control, _) = build_control();
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 1,
            queue_capacity: 1,
            batch_size: 1,
        },
    );
    let frames = workload(2000);
    let offered = frames.len() as u64;
    let report = replay(&gw, frames, None, IngestMode::DropOnFull);
    let snap = gw.finish();

    assert_eq!(report.offered, offered);
    assert_eq!(report.dropped_backpressure, snap.dropped_backpressure);
    assert_eq!(
        snap.totals.received + snap.dropped_backpressure,
        offered,
        "every offered frame is either processed or counted as dropped"
    );
    assert_eq!(snap.totals.received, report.enqueued);
}

/// Canary primitive: a targeted publish moves only the listed shards'
/// cells; the snapshot exposes the divergence per shard; a fleet-wide
/// republish of the same version converges everyone.
#[test]
fn targeted_publish_diverges_then_republish_converges_shard_versions() {
    let (control, stage) = build_control();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(4));
    let baseline = control.publish();
    install_drop_proto(&control, stage, UDP);
    let canary = control.publish_to(&[1, 3]).unwrap();
    assert!(canary.version > baseline.version);

    let snap = gw.snapshot();
    assert_eq!(snap.shard_versions.len(), 4);
    assert_eq!(snap.shard_versions[0], baseline.version);
    assert_eq!(snap.shard_versions[1], canary.version);
    assert_eq!(snap.shard_versions[2], baseline.version);
    assert_eq!(snap.shard_versions[3], canary.version);
    assert_eq!(snap.version, canary.version, "snapshot.version is the max");

    // Canary traffic is actually enforced only on the canary shards.
    let mut udp_by_shard = [0u64; 4];
    let frames = workload(10);
    for f in &frames {
        if f[PROTO_OFF] == UDP {
            udp_by_shard[gw.shard_of(f)] += 1;
        }
        gw.dispatch(f.clone());
    }
    // Promote: republish the canaried version fleet-wide, then finish.
    control.republish(canary.version).unwrap();
    let fin = gw.finish();
    assert!(fin.shard_versions.iter().all(|&v| v == canary.version));
    // Shards 0 and 2 forwarded their UDP before promotion reached them
    // only if they processed those frames pre-republish; either way the
    // canary shards dropped every UDP frame they saw.
    for s in [1usize, 3] {
        assert_eq!(fin.shards[s].counters.dropped, udp_by_shard[s]);
    }
}

/// The mirror tap samples the live ingest stream without affecting
/// enforcement totals.
#[test]
fn mirror_tap_samples_ingest_without_changing_totals() {
    let (control, _) = build_control();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(2));
    let rx = gw.mirror().open(8, 1024);
    let frames = workload(16); // 256 frames
    for f in &frames {
        gw.dispatch(f.clone());
    }
    assert_eq!(gw.mirror().mirrored(), 32, "one in eight frames mirrored");
    let mut sampled = 0;
    while rx.try_recv().is_ok() {
        sampled += 1;
    }
    assert_eq!(sampled, 32);
    gw.mirror().close();
    let snap = gw.finish();
    assert_eq!(snap.totals.received, 256, "tap is off the enforcement path");
}

/// Paced replay approaches the requested rate instead of blasting.
#[test]
fn paced_replay_respects_target_rate() {
    let (control, _) = build_control();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(2));
    let frames = workload(32); // 512 frames
    let report = replay(&gw, frames, Some(4096.0), IngestMode::Blocking);
    let snap = gw.finish();

    assert_eq!(report.offered, 512);
    assert_eq!(report.dropped_backpressure, 0);
    assert_eq!(snap.totals.received, 512);
    // 512 frames at 4096 pps is 125ms; coarse pacing must keep us in the
    // right order of magnitude (no sleep would finish in microseconds).
    assert!(
        report.elapsed.as_millis() >= 50,
        "elapsed {:?} too fast for 4096 pps",
        report.elapsed
    );
}

/// Queue-depth visibility: the gauge family tracks the senders' live
/// occupancy, and a snapshot refreshes it on `/metrics`.
#[test]
fn queue_depth_gauges_track_sender_occupancy() {
    use p4guard_telemetry::{Telemetry, TelemetryConfig};
    use std::sync::Arc;

    let (control, _) = build_control();
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig::with_shards(2),
        Some(Arc::clone(&telemetry)),
    );
    assert_eq!(gw.queue_depths(), vec![0, 0]);
    let snap = gw.snapshot();
    assert_eq!(snap.shards.len(), 2);
    let rendered = telemetry.registry.render_prometheus();
    assert!(
        rendered.contains("p4guard_queue_depth{shard=\"0\"}"),
        "missing queue depth gauge:\n{rendered}"
    );
    assert!(rendered.contains("p4guard_queue_depth{shard=\"1\"}"));
    gw.finish();
}
