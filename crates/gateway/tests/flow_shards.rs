//! Property suite for flow sharding: frames of the same 5-tuple must land
//! on the same shard for every shard count, shard indices must always be
//! in range, and dispatching through a live gateway must account for every
//! frame on exactly the shard the flow hash predicts, for 1–16 shards.

use bytes::Bytes;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_gateway::{flow_hash, shard_for, Gateway, GatewayConfig};
use proptest::collection;
use proptest::prelude::*;

/// An Ethernet+IPv4 frame with every non-5-tuple field parameterized so
/// properties can prove they do not influence shard placement.
#[allow(clippy::too_many_arguments)]
fn ip_frame(
    mac_fill: u8,
    src: &[u8],
    dst: &[u8],
    proto: u8,
    sport: u16,
    dport: u16,
    ttl: u8,
    ip_id: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut f = vec![mac_fill; 12];
    f.extend_from_slice(&[0x08, 0x00]); // EtherType IPv4
    let mut ip = [0u8; 20];
    ip[0] = 0x45;
    ip[4..6].copy_from_slice(&ip_id.to_be_bytes());
    ip[8] = ttl;
    ip[9] = proto;
    ip[12..16].copy_from_slice(src);
    ip[16..20].copy_from_slice(dst);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&sport.to_be_bytes());
    f.extend_from_slice(&dport.to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // rest of the L4 header prefix
    f.extend_from_slice(payload);
    f
}

proptest! {
    /// Two frames of the identical 5-tuple — but different MACs, TTLs, IP
    /// identification and payloads — hash identically and land on the same
    /// shard for every shard count from 1 to 16.
    #[test]
    fn same_flow_same_shard_for_every_shard_count(
        src in collection::vec(any::<u8>(), 4usize),
        dst in collection::vec(any::<u8>(), 4usize),
        is_tcp in any::<bool>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        mac_a in any::<u8>(),
        ttl_a in any::<u8>(),
        id_a in any::<u16>(),
        mac_b in any::<u8>(),
        ttl_b in any::<u8>(),
        id_b in any::<u16>(),
        pay_a in collection::vec(any::<u8>(), 0..32),
        pay_b in collection::vec(any::<u8>(), 0..32),
    ) {
        let proto = if is_tcp { 6 } else { 17 };
        let a = ip_frame(mac_a, &src, &dst, proto, sport, dport, ttl_a, id_a, &pay_a);
        let b = ip_frame(mac_b, &src, &dst, proto, sport, dport, ttl_b, id_b, &pay_b);
        prop_assert_eq!(flow_hash(&a), flow_hash(&b));
        for shards in 1..=16usize {
            prop_assert_eq!(
                shard_for(&a, shards),
                shard_for(&b, shards),
                "5-tuple twins split across shards at {} shards",
                shards
            );
        }
    }

    /// Any byte string — IPv4 or not, truncated or not — maps into range
    /// for every shard count.
    #[test]
    fn shard_index_is_always_in_range(
        frame in collection::vec(any::<u8>(), 0..96),
        shards in 1..=16usize,
    ) {
        prop_assert!(shard_for(&frame, shards) < shards);
    }
}

/// Dispatching a fixed workload through a live gateway at every shard
/// count 1–16: the per-shard processed counts must sum to the workload
/// size, and each shard must process exactly the frames `shard_for`
/// assigns to it.
#[test]
fn dispatch_totals_account_for_every_frame_across_shard_counts() {
    // 320 frames over 40 flows, both TCP and UDP.
    let frames: Vec<Bytes> = (0..320u16)
        .map(|i| {
            let flow = (i % 40) as u8;
            let proto = if flow.is_multiple_of(2) { 6 } else { 17 };
            Bytes::from(ip_frame(
                0x02,
                &[10, 0, 0, flow],
                &[10, 0, 1, 1],
                proto,
                1000 + u16::from(flow),
                443,
                64,
                i,
                &i.to_be_bytes(),
            ))
        })
        .collect();

    for shards in 1..=16usize {
        let mut predicted = vec![0u64; shards];
        for f in &frames {
            predicted[shard_for(f, shards)] += 1;
        }

        let parser = ParserSpec::raw_window(64, 14);
        let control = ControlPlane::new(Switch::new("flow-shards", parser, 1));
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));
        for f in &frames {
            assert_eq!(gw.shard_of(f), shard_for(f, shards));
            gw.dispatch(f.clone());
        }
        let snap = gw.finish();

        assert_eq!(snap.shards.len(), shards);
        assert_eq!(snap.totals.received, frames.len() as u64);
        let processed: Vec<u64> = snap.shards.iter().map(|s| s.processed).collect();
        assert_eq!(
            processed.iter().sum::<u64>(),
            frames.len() as u64,
            "{shards}-shard dispatch lost or duplicated frames"
        );
        assert_eq!(
            processed, predicted,
            "{shards}-shard placement diverges from shard_for"
        );
    }
}
