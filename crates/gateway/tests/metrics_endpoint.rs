//! End-to-end scrape test: a live gateway with telemetry attached must
//! expose every metric family the ISSUE's acceptance criteria name on
//! `GET /metrics`, with values that reconcile against the gateway's own
//! snapshot, plus flight-recorder events on `GET /events`.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_telemetry::{http_get, MetricsServer, Telemetry, TelemetryConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

fn frame(flow: u8, proto: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    Bytes::from(f)
}

/// A control plane with one ternary stage dropping TCP (proto 6).
fn build_control() -> ControlPlane {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("metrics-e2e", parser, 1);
    let mut acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    acl.insert(
        MatchSpec::Ternary {
            value: vec![6],
            mask: vec![0xff],
        },
        Action::Drop,
        1,
    )
    .unwrap();
    switch.add_stage(acl);
    ControlPlane::new(switch)
}

fn drain(gw: &Gateway, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < expected {
        assert!(Instant::now() < deadline, "gateway failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Pulls the value of the first exposition sample whose line starts with
/// `prefix` (name plus any label subset encoded in the prefix).
fn sample_sum(body: &str, name: &str) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| l.split(['{', ' ']).next() == Some(name))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum()
}

#[test]
fn live_scrape_covers_all_required_families() {
    let control = build_control();
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 4,
        ..TelemetryConfig::default()
    }));
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig::with_shards(2),
        Some(Arc::clone(&telemetry)),
    );
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&telemetry)).unwrap();
    let addr = server.local_addr().to_string();
    let timeout = Duration::from_secs(5);

    // 100 UDP frames forward, 60 TCP frames hit the drop rule, and one
    // audited republish records a swap event.
    let mut sent = 0u64;
    for i in 0..160u64 {
        let proto = if i % 8 < 3 { 6 } else { 17 };
        gw.dispatch(frame((i % 16) as u8, proto));
        sent += 1;
    }
    drain(&gw, sent);
    control.publish_audited(None, true);

    let (status, body) = http_get(&addr, "/metrics", timeout).unwrap();
    assert_eq!(status, 200);

    // Every family the acceptance criteria require is present.
    for family in [
        "p4guard_frames_received_total",
        "p4guard_frames_forwarded_total",
        "p4guard_drops_total",
        "p4guard_table_hits_total",
        "p4guard_table_misses_total",
        "p4guard_ruleset_version",
        "p4guard_forward_latency_seconds_bucket",
        "p4guard_forward_latency_seconds_count",
        "p4guard_shards",
        "p4guard_queue_depth",
    ] {
        assert!(body.contains(family), "missing family {family}:\n{body}");
    }
    // Per-reason drop labels and per-table labels are on the wire.
    assert!(body.contains("reason=\"rule_drop\""), "{body}");
    assert!(body.contains("table=\"acl\""), "{body}");

    // The scraped values reconcile against the gateway's own snapshot.
    let snap = gw.snapshot();
    assert_eq!(
        sample_sum(&body, "p4guard_frames_received_total"),
        snap.totals.received as f64
    );
    assert_eq!(
        sample_sum(&body, "p4guard_frames_forwarded_total"),
        snap.totals.forwarded as f64
    );
    assert_eq!(
        sample_sum(&body, "p4guard_forward_latency_seconds_count"),
        snap.totals.received as f64,
        "every processed frame observes the latency histogram"
    );

    // The audited republish shows up in the flight recorder.
    let (status, events) = http_get(&addr, "/events", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(events.contains("\"Swap\""), "no swap event in {events}");
    assert!(events.contains("\"drained\":true"), "{events}");
    // Verdict sampling produced some events too (160 frames, 1-in-4).
    assert!(
        events.contains("\"Verdict\""),
        "no verdict samples in {events}"
    );

    gw.finish();
}
