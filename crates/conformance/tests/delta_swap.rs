//! Incremental-publish conformance: long chains of delta publishes and
//! rollbacks, applied mid-serve through `ControlPlane::apply_ruleset_diff`
//! and compiled incrementally, must be indistinguishable from a control
//! plane recompiling every ruleset from scratch.
//!
//! Oracles:
//! * **Phased equality** — with drains between publish points (per-frame
//!   and batched ingest), gateway totals must equal a single switch
//!   replaying the same frames under the same per-phase rulesets through
//!   the unminimized scan path.
//! * **Mid-serve chains** — deltas and rollbacks published with frames in
//!   flight (no drains) conserve every frame and land on the last
//!   published version.
//! * **Pinned repros** — shrunk schedules under `tests/corpus/delta-*.txt`
//!   that once broke verdict equality replay on every run, checked for
//!   full-keyspace verdict + winner-priority equality against a
//!   from-scratch compile.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_packet::{FrameArena, FrameBatch};
use p4guard_rules::{RuleSet, TernaryEntry};
use rand::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0xde17_a5a9;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// An Ethernet+IPv4 frame carrying protocol byte `proto`.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            let proto = *[6u8, 17, 1, 47, rng.gen()]
                .choose(rng)
                .expect("protocol list is non-empty");
            frame(rng.gen_range(0..16), proto, i as u8)
        })
        .collect()
}

fn pack(frames: &[Bytes], batch: usize) -> Vec<FrameBatch> {
    let mut arena = FrameArena::new(64 * 1024);
    let mut out = Vec::new();
    for f in frames {
        arena.push(f);
        if arena.pending() >= batch {
            out.push(arena.seal_batch());
        }
    }
    if arena.pending() > 0 {
        out.push(arena.seal_batch());
    }
    out
}

/// A control plane over a one-stage switch keyed on the protocol byte.
fn build_control() -> (ControlPlane, usize) {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("conf-delta", parser, 1);
    let acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    let stage = switch.add_stage(acl);
    (ControlPlane::new(switch), stage)
}

/// Mutates `current` into the next ruleset of the chain: a couple of
/// entries leave, a couple arrive, the rest carry over — the shape of a
/// retrain that shifted a few tree leaves.
fn evolve<R: Rng>(rng: &mut R, current: &RuleSet) -> RuleSet {
    let mut next = RuleSet::new(1, 0);
    for e in current.entries() {
        if rng.gen_range(0..4u8) > 0 {
            next.push(e.clone());
        }
    }
    for _ in 0..rng.gen_range(1..=3) {
        let mask = *[0xffu8, 0xfe, 0xf0, 0x00]
            .choose(rng)
            .expect("mask list is non-empty");
        let value = rng.gen::<u8>() & mask;
        next.push(TernaryEntry::new(
            vec![value],
            vec![mask],
            1,
            rng.gen_range(0..3),
        ));
    }
    next
}

fn drain(gw: &Gateway, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < expected {
        assert!(
            Instant::now() < deadline,
            "gateway failed to drain to {expected} received frames"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Drained delta chain with interleaved rollbacks, per-frame and batched
/// ingest: gateway totals must equal a single switch replaying the same
/// frames per phase through the unminimized scan path. Publishes after the
/// first must be incremental (the single stage recompiles only when the
/// diff is non-empty), and rollbacks must recompile nothing.
#[test]
fn drained_delta_chains_match_scan_replay() {
    for shards in [1usize, 2, 4] {
        let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64);
        let (control, stage) = build_control();
        let (reference, ref_stage) = build_control();
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));

        let mut current = RuleSet::new(1, 0);
        let mut history: Vec<(u64, RuleSet)> = Vec::new();
        let mut sent = 0u64;
        for phase in 0..12 {
            if phase > 0 && phase % 5 == 4 {
                // Rollback to a random retained version, then resync the
                // mutable tables to it (the adapt engine's abort path).
                let (version, baseline) = history[rng.gen_range(0..history.len())].clone();
                let report = control
                    .rollback_to(version, "conformance rollback")
                    .unwrap();
                assert_eq!(
                    report.stages_recompiled, 0,
                    "rollback serves retained bytes"
                );
                let resync = current.diff(&baseline);
                control
                    .apply_ruleset_diff(stage, &resync, Action::Drop)
                    .unwrap();
                current = baseline;
            } else {
                let next = evolve(&mut rng, &current);
                let diff = current.diff(&next);
                let expect_recompiled = usize::from(!diff.is_empty());
                control
                    .apply_ruleset_diff(stage, &diff, Action::Drop)
                    .unwrap();
                let report = control.publish();
                if phase > 0 {
                    assert_eq!(
                        report.stages_recompiled, expect_recompiled,
                        "delta publish must re-lower only the changed stage"
                    );
                }
                history.push((report.version, next.clone()));
                current = next;
            }
            reference.clear_stage(ref_stage).unwrap();
            reference
                .install_ruleset(ref_stage, &current, Action::Drop)
                .unwrap();

            let frames = workload(&mut rng, 300);
            if phase % 2 == 0 {
                for f in &frames {
                    gw.dispatch(f.clone());
                }
            } else {
                for batch in pack(&frames, 96) {
                    gw.dispatch_batch(batch);
                }
            }
            sent += frames.len() as u64;
            drain(&gw, sent);
            reference.with_switch_mut(|sw| {
                sw.run_frames(frames.iter().map(|f| f.as_ref()));
            });
        }

        let snap = gw.finish();
        let single = reference.with_switch_mut(|sw| sw.counters().clone());
        assert_eq!(
            snap.totals, single,
            "{shards}-shard delta-chain totals diverge from scan replay"
        );
        assert_eq!(snap.dropped_backpressure, 0, "blocking ingest never drops");
    }
}

/// Deltas and rollbacks landing with frames in flight (no drains), mixed
/// per-frame and batched ingest: conservation must hold exactly and the
/// gateway must end on the last published version.
#[test]
fn undrained_delta_chains_lose_no_frames() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x17);
    let (control, stage) = build_control();
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 4,
            queue_capacity: 8,
            batch_size: 32,
        },
    );
    let frames = workload(&mut rng, 3000);
    let batches = pack(&frames, 50);
    let mut current = RuleSet::new(1, 0);
    let mut history: Vec<(u64, RuleSet)> = Vec::new();
    let mut last_version = 0u64;
    let mut per_frame_cursor = 0usize;
    for (i, batch) in batches.into_iter().enumerate() {
        if i % 6 == 3 {
            if !history.is_empty() && i % 12 == 9 {
                let (version, baseline) = history[rng.gen_range(0..history.len())].clone();
                control.rollback_to(version, "mid-serve rollback").unwrap();
                let resync = current.diff(&baseline);
                control
                    .apply_ruleset_diff(stage, &resync, Action::Drop)
                    .unwrap();
                current = baseline;
                last_version = version;
            } else {
                let next = evolve(&mut rng, &current);
                let diff = current.diff(&next);
                control
                    .apply_ruleset_diff(stage, &diff, Action::Drop)
                    .unwrap();
                let report = control.publish();
                history.push((report.version, next.clone()));
                current = next;
                last_version = report.version;
            }
        }
        // Alternate ingest grain so swaps land against both hot paths.
        if i % 2 == 0 {
            gw.dispatch_batch(batch);
        } else {
            for f in batch.iter() {
                gw.dispatch(Bytes::from(f.to_vec()));
                per_frame_cursor += 1;
            }
        }
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, frames.len() as u64);
    assert_eq!(snap.dropped_backpressure, 0);
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received,
        "every received frame must get exactly one verdict"
    );
    assert_eq!(snap.version, last_version);
    assert!(per_frame_cursor > 0, "per-frame lane must see traffic");
    let swaps_seen: u64 = snap.shards.iter().map(|s| s.swaps_seen).sum();
    assert!(swaps_seen > 0, "no shard observed a swap");
}

/// One pinned schedule: `(from entries, to entries)` parsed from a
/// corpus file.
fn parse_pin(path: &PathBuf) -> (RuleSet, RuleSet) {
    let text = std::fs::read_to_string(path).expect("corpus pin readable");
    let mut from = RuleSet::new(1, 0);
    let mut to = RuleSet::new(1, 0);
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let side = parts.next().expect("side column");
        let value = u8::from_str_radix(parts.next().expect("value column"), 16).unwrap();
        let mask = u8::from_str_radix(parts.next().expect("mask column"), 16).unwrap();
        let priority: i32 = parts.next().expect("priority column").parse().unwrap();
        let entry = TernaryEntry::new(vec![value], vec![mask], 1, priority);
        match side {
            "from" => from.push(entry),
            "to" => to.push(entry),
            other => panic!("unknown side {other:?} in {}", path.display()),
        }
    }
    (from, to)
}

/// Replays every `delta-*.txt` pin: install `from`, publish, delta to
/// `to`, publish again, and require full-keyspace verdict + winner
/// priority equality between the incrementally compiled pipeline and a
/// twin control plane compiling `to` from scratch.
#[test]
fn pinned_delta_repros_replay_identically() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut pins: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("delta-") && n.ends_with(".txt"))
        })
        .collect();
    pins.sort();
    assert!(!pins.is_empty(), "no delta pins found in {}", dir.display());

    for pin in pins {
        let (from, to) = parse_pin(&pin);
        let (control, stage) = build_control();
        control.install_ruleset(stage, &from, Action::Drop).unwrap();
        control.publish();
        let diff = from.diff(&to);
        control
            .apply_ruleset_diff(stage, &diff, Action::Drop)
            .unwrap();
        let incremental = control.snapshot();

        let (scratch_control, scratch_stage) = build_control();
        scratch_control
            .install_ruleset(scratch_stage, &to, Action::Drop)
            .unwrap();
        let scratch = scratch_control.snapshot();

        let inc_stage = &incremental.stages()[stage];
        let ref_stage = &scratch.stages()[scratch_stage];
        let mut inc_probe = [0u8; 1];
        let mut ref_probe = [0u8; 1];
        for key in 0u8..=255 {
            let (inc_action, inc_outcome) = inc_stage.lookup_traced(&[key], &mut inc_probe);
            let (ref_action, ref_outcome) = ref_stage.lookup_traced(&[key], &mut ref_probe);
            assert_eq!(
                inc_action,
                ref_action,
                "{}: verdict diverges at key {key:#04x}",
                pin.display()
            );
            let inc_priority = match inc_outcome {
                p4guard_dataplane::compiled::LookupOutcome::Hit(r) => inc_stage.rank_priority(r),
                _ => None,
            };
            let ref_priority = match ref_outcome {
                p4guard_dataplane::compiled::LookupOutcome::Hit(r) => ref_stage.rank_priority(r),
                _ => None,
            };
            assert_eq!(
                inc_priority,
                ref_priority,
                "{}: winner priority diverges at key {key:#04x}",
                pin.display()
            );
        }
    }
}
