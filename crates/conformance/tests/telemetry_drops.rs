//! Drop-taxonomy conservation oracle: under a fault schedule mixing hot
//! swaps, parser-rejectable runts, rule drops and queue overload, the
//! per-reason telemetry counters must reconcile exactly with the legacy
//! [`SwitchCounters`] totals — the taxonomy is a partition of the old
//! aggregate drop counts, not a parallel bookkeeping that can drift.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_rules::{RuleSet, TernaryEntry};
use p4guard_telemetry::{DropReason, Telemetry, TelemetryConfig};
use rand::prelude::*;
use std::sync::Arc;

const SEED: u64 = 0x7e1e_0bed;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// An Ethernet+IPv4 frame for `flow` carrying protocol byte `proto`.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A runt frame shorter than the parser's minimum window: always
/// parser-rejected, never reaches a table.
fn runt(len: usize, fill: u8) -> Bytes {
    Bytes::from(vec![fill; len])
}

/// A workload mixing well-formed frames over 16 flows (some protocols
/// matched by rulesets, some not) with ~1-in-8 parser-rejectable runts.
fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            if rng.gen_range(0..8) == 0 {
                runt(rng.gen_range(0..14), i as u8)
            } else {
                let proto = *[6u8, 17, 1, 47, rng.gen()]
                    .choose(rng)
                    .expect("protocol list is non-empty");
                frame(rng.gen_range(0..16), proto, i as u8)
            }
        })
        .collect()
}

/// A control plane over a one-stage switch whose ternary ACL keys on the
/// IPv4 protocol byte.
fn build_control() -> (ControlPlane, usize) {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("conf-telemetry", parser, 1);
    let acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    let stage = switch.add_stage(acl);
    (ControlPlane::new(switch), stage)
}

/// A small adversarial ruleset over the protocol byte.
fn random_ruleset<R: Rng>(rng: &mut R) -> RuleSet {
    let mut rs = RuleSet::new(1, 0);
    for _ in 0..rng.gen_range(1..=6) {
        let mask = *[0xffu8, 0xff, 0xf0, 0x0f, 0x00]
            .choose(rng)
            .expect("mask list is non-empty");
        rs.push(TernaryEntry::new(
            vec![rng.gen()],
            vec![mask],
            1,
            rng.gen_range(0..4),
        ));
    }
    rs
}

/// Sum of every `p4guard_drops_total` series carrying `reason`.
fn drops_for(telemetry: &Telemetry, reason: DropReason) -> u64 {
    telemetry
        .registry
        .counter_snapshot()
        .into_iter()
        .filter(|(name, labels, _)| {
            name == "p4guard_drops_total"
                && labels
                    .iter()
                    .any(|(k, v)| k == "reason" && v == reason.as_str())
        })
        .map(|(_, _, value)| value)
        .sum()
}

/// Fault schedule (undrained hot swaps + runts + overload with small
/// queues), then reconcile: every legacy aggregate must equal the sum of
/// its telemetry refinement, and the taxonomy must cover all drops.
#[test]
fn drop_taxonomy_reconciles_with_legacy_totals() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let (control, stage) = build_control();
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 16,
        ..TelemetryConfig::default()
    }));
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig {
            shards: 3,
            queue_capacity: 8,
            batch_size: 4,
        },
        Some(Arc::clone(&telemetry)),
    );

    let frames = workload(&mut rng, 6000);
    let mut accepted = 0u64;
    for (i, f) in frames.iter().enumerate() {
        if i % 1500 == 750 {
            let ruleset = random_ruleset(&mut rng);
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, &ruleset, Action::Drop)
                .unwrap();
            control.publish();
        }
        // Alternate blocking and lossy ingest so the schedule exercises
        // both backpressure drops and full-queue stalls.
        if i % 3 == 0 {
            if gw.offer(f.clone()) {
                accepted += 1;
            }
        } else {
            gw.dispatch(f.clone());
            accepted += 1;
        }
    }
    let snap = gw.finish();

    // The gateway's own conservation law still holds.
    assert_eq!(snap.totals.received, accepted);
    assert_eq!(
        snap.totals.received + snap.dropped_backpressure,
        frames.len() as u64
    );

    // Telemetry frame counters mirror the legacy totals exactly.
    let registry = &telemetry.registry;
    assert_eq!(
        registry.family_sum("p4guard_frames_received_total"),
        snap.totals.received
    );
    assert_eq!(
        registry.family_sum("p4guard_frames_forwarded_total"),
        snap.totals.forwarded
    );

    // Per-reason refinement: parser rejects map 1:1; the pipeline reasons
    // partition the legacy `dropped` aggregate; backpressure matches the
    // ingest-side count.
    assert_eq!(
        drops_for(&telemetry, DropReason::ParserRejected),
        snap.totals.parser_rejected,
        "parser_rejected refinement diverged"
    );
    assert_eq!(
        drops_for(&telemetry, DropReason::RuleDrop)
            + drops_for(&telemetry, DropReason::NoRule)
            + drops_for(&telemetry, DropReason::WrongWidth),
        snap.totals.dropped,
        "pipeline drop reasons must partition the legacy dropped total"
    );
    assert_eq!(
        drops_for(&telemetry, DropReason::Backpressure),
        snap.dropped_backpressure,
        "backpressure refinement diverged"
    );

    // Full coverage: summing the whole family accounts for every dropped
    // frame, whatever the reason.
    assert_eq!(
        registry.family_sum("p4guard_drops_total"),
        snap.totals.dropped + snap.totals.parser_rejected + snap.dropped_backpressure
    );

    // The schedule really did exercise the taxonomy.
    assert!(snap.totals.parser_rejected > 0, "schedule sent no runts?");
    assert!(snap.totals.dropped > 0, "schedule matched no drop rules?");
}
