//! Pinned regressions: every hex repro under `tests/corpus/` is replayed
//! through the frame oracle on every test run.
//!
//! The curated pins are frames that once broke an oracle (panic, unbounded
//! allocation, or a `decode → encode → decode` divergence) and were fixed;
//! fuzzer-discovered repros written by `smoke.rs` accumulate here too.

use p4guard_conformance::{corpus, oracle};
use p4guard_packet::addr::MacAddr;
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::packet::PacketBuilder;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::zwire::{ZWireFrame, ZWireType};
use std::net::Ipv4Addr;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The hand-curated pins, built deterministically from the codecs.
///
/// Each is `(file name, what it pins, frame bytes)`.
fn curated_pins() -> Vec<(&'static str, &'static str, Vec<u8>)> {
    let b = PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2));
    let (src, dst) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let mut pins = Vec::new();

    // DNS label containing a dot: decoded to qname "." whose re-encoding
    // collapsed to the root name, breaking the struct fixpoint. The
    // decoder now rejects dot-bearing labels.
    let mut q = Vec::new();
    q.extend_from_slice(&[0x00, 0x07]); // id
    q.extend_from_slice(&[0x01, 0x00]); // flags: standard query
    q.extend_from_slice(&[0x00, 0x01]); // qdcount
    q.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // ancount/nscount/arcount
    q.extend_from_slice(&[1, b'.', 0]); // qname: the label "."
    q.extend_from_slice(&[0, 1, 0, 1]); // qtype A, qclass IN
    pins.push((
        "frame-dns-dot-label.hex",
        "dns label \".\" used to break the qname round-trip fixpoint",
        b.udp(src, dst, 40000, 53, &q).to_vec(),
    ));

    // IPv4 header with options (IHL 6): encode used to hard-code IHL 5,
    // so header_len 24 re-encoded as 20 and the fixpoint broke.
    let mut v = b.udp(src, dst, 40000, 9, b"opt").to_vec();
    v[14] = 0x46; // version 4, IHL 6
    let tl = u16::from_be_bytes([v[16], v[17]]) + 4;
    v[16..18].copy_from_slice(&tl.to_be_bytes());
    v.splice(34..34, [0x01, 0x01, 0x01, 0x00]); // NOP, NOP, NOP, EOL
    pins.push((
        "frame-ipv4-options-ihl.hex",
        "ipv4 options (IHL 6) used to break the header_len fixpoint",
        v,
    ));

    // TCP header with an MSS option (data offset 6): same hard-coded
    // offset bug as IPv4, on the TCP side.
    let mut v = b
        .tcp(
            src,
            dst,
            TcpHeader::new(40000, 80, 1, 0, TcpFlags::SYN),
            b"",
        )
        .to_vec();
    v[14 + 20 + 12] = 0x60; // data offset 6
    let tl = u16::from_be_bytes([v[16], v[17]]) + 4;
    v[16..18].copy_from_slice(&tl.to_be_bytes());
    v.splice(54..54, [2, 4, 5, 0xb4]); // MSS 1460
    pins.push((
        "frame-tcp-options-offset.hex",
        "tcp options (data offset 6) used to break the header_len fixpoint",
        v,
    ));

    // MQTT remaining-length lie: the varint claims 127 bytes but the
    // segment carries 9. Must stay a lenient opaque payload, not a panic.
    let publish = MqttPacket::Publish {
        topic: "a/b".into(),
        packet_id: None,
        qos: 0,
        retain: false,
        payload: vec![1, 2, 3],
    };
    let mut v = b
        .tcp(
            src,
            dst,
            TcpHeader::new(40000, 1883, 1, 1, TcpFlags::PSH | TcpFlags::ACK),
            &publish.encode(),
        )
        .to_vec();
    v[55] = 0x7f; // remaining-length byte (frame offset 14+20+20+1)
    pins.push((
        "frame-mqtt-varint-lie.hex",
        "mqtt remaining-length varint lying about the body size",
        v,
    ));

    // ZWire payload-length lie: the length byte (offset 24) claims 255
    // bytes; the old arithmetic under-flowed on the trailing checksum.
    let mut v = b
        .zwire(&ZWireFrame::new(
            ZWireType::Data,
            0x1234,
            1,
            2,
            3,
            vec![9, 9, 9],
        ))
        .to_vec();
    v[24] = 0xff;
    pins.push((
        "frame-zwire-length-lie.hex",
        "zwire payload-length byte lying about the frame size",
        v,
    ));

    pins
}

#[test]
fn corpus_repros_stay_green() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus dir must load");
    assert!(
        entries.len() >= 5,
        "corpus unexpectedly small: {} files",
        entries.len()
    );
    let mut failures = Vec::new();
    for (name, bytes) in entries {
        if let Err(e) = oracle::check_frame(&bytes) {
            failures.push(format!("{name}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "pinned repro(s) regressed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn curated_pin_files_match_their_builders() {
    let on_disk = corpus::load_dir(&corpus_dir()).expect("corpus dir must load");
    for (name, _, bytes) in curated_pins() {
        let found = on_disk
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing; run the regenerate test"));
        assert_eq!(
            found.1, bytes,
            "{name} drifted from its builder; run the regenerate test"
        );
    }
}

/// Rewrites the curated pin files from their builders. Run explicitly
/// after changing a pin:
/// `cargo test -p p4guard-conformance regenerate -- --ignored`
#[test]
#[ignore = "writes tests/corpus/ pin files"]
fn regenerate_curated_pins() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("corpus dir must be creatable");
    for (name, comment, bytes) in curated_pins() {
        let body = format!("# {comment}\n{}", corpus::to_hex(&bytes));
        std::fs::write(dir.join(name), body).expect("pin file must be writable");
    }
}
