//! Batched-ingest conformance: the arena-batched hot path must preserve
//! every per-frame guarantee under hot swaps, for every shard count.
//!
//! Oracles:
//! * **Phased equality** — with drains between swap points, batched
//!   gateway totals must equal a single switch replaying the same frames
//!   under the same per-phase rulesets.
//! * **Mid-batch swaps** — rulesets published while batches are in flight
//!   (no drains) must conserve every frame, and a batch already dequeued
//!   processes entirely against one snapshot.
//! * **Overload conservation** — non-blocking batched ingest drops whole
//!   sub-batches, and offered = processed + backpressure-dropped exactly.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_packet::{FrameArena, FrameBatch};
use p4guard_rules::{RuleSet, TernaryEntry};
use rand::prelude::*;
use std::time::{Duration, Instant};

const SEED: u64 = 0xba7c_45ed;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// An Ethernet+IPv4 frame for `flow` carrying protocol byte `proto`.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A randomized workload over 16 flows, with short runts mixed in so the
/// batched parse stage exercises its reject lane too.
fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            if rng.gen_range(0..16u8) == 0 {
                return Bytes::from(vec![i as u8; 4]); // parser-rejected runt
            }
            let proto = *[6u8, 17, 1, 47, rng.gen()]
                .choose(rng)
                .expect("protocol list is non-empty");
            frame(rng.gen_range(0..16), proto, i as u8)
        })
        .collect()
}

/// Packs `frames` into arena batches of `batch` frames (last one short).
fn pack(frames: &[Bytes], batch: usize) -> Vec<FrameBatch> {
    let mut arena = FrameArena::new(64 * 1024);
    let mut out = Vec::new();
    for f in frames {
        arena.push(f);
        if arena.pending() >= batch {
            out.push(arena.seal_batch());
        }
    }
    if arena.pending() > 0 {
        out.push(arena.seal_batch());
    }
    out
}

/// A control plane over a one-stage switch keyed on the protocol byte.
fn build_control() -> (ControlPlane, usize) {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("conf-batch", parser, 1);
    let acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    let stage = switch.add_stage(acl);
    (ControlPlane::new(switch), stage)
}

/// A small adversarial ruleset over the protocol byte.
fn random_ruleset<R: Rng>(rng: &mut R) -> RuleSet {
    let mut rs = RuleSet::new(1, 0);
    for _ in 0..rng.gen_range(1..=6) {
        let mask = *[0xffu8, 0xff, 0xf0, 0x0f, 0x00]
            .choose(rng)
            .expect("mask list is non-empty");
        rs.push(TernaryEntry::new(
            vec![rng.gen()],
            vec![mask],
            1,
            rng.gen_range(0..4),
        ));
    }
    rs
}

fn drain(gw: &Gateway, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < expected {
        assert!(
            Instant::now() < deadline,
            "gateway failed to drain to {expected} received frames"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Phased hot-swap schedule on the batched path: for every shard count,
/// batched gateway totals (drained at each swap point) must equal a single
/// switch replaying the identical schedule frame by frame.
#[test]
fn phased_hot_swaps_match_single_switch_on_batched_path() {
    for shards in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64);
        let phases: Vec<(RuleSet, Vec<Bytes>)> = (0..4)
            .map(|_| (random_ruleset(&mut rng), workload(&mut rng, 400)))
            .collect();

        let (control, stage) = build_control();
        let (reference, ref_stage) = build_control();
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));

        let mut sent = 0u64;
        for (ruleset, frames) in &phases {
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, ruleset, Action::Drop)
                .unwrap();
            control.publish();
            reference.clear_stage(ref_stage).unwrap();
            reference
                .install_ruleset(ref_stage, ruleset, Action::Drop)
                .unwrap();

            // 96 does not divide 400, so phase tails ride in short batches.
            for batch in pack(frames, 96) {
                gw.dispatch_batch(batch);
            }
            sent += frames.len() as u64;
            drain(&gw, sent);
            reference.with_switch_mut(|sw| {
                sw.run_frames(frames.iter().map(|f| f.as_ref()));
            });
        }

        let snap = gw.finish();
        let single = reference.with_switch_mut(|sw| sw.counters().clone());
        assert_eq!(
            snap.totals, single,
            "{shards}-shard batched phased totals diverge from single-switch replay"
        );
        assert_eq!(snap.dropped_backpressure, 0, "blocking ingest never drops");
        let batched_frames: u64 = snap.shards.iter().map(|s| s.batched_frames).sum();
        assert_eq!(batched_frames, sent, "all frames took the batched path");
    }
}

/// Swaps published with batches still in flight (no drains): conservation
/// must hold exactly, the final version must be the last published one,
/// and the shards must have both processed batches and seen the swaps.
#[test]
fn swaps_landing_mid_batch_lose_no_frames() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x001d);
    let (control, stage) = build_control();
    // Tiny queues and shard batch budget force batches to straddle
    // publishes: a dequeued batch finishes on its drain's snapshot while
    // the next drain picks up the new version.
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 4,
            queue_capacity: 8,
            batch_size: 32,
        },
    );
    let frames = workload(&mut rng, 3000);
    let batches = pack(&frames, 64);
    let mut last_version = 0;
    for (i, batch) in batches.into_iter().enumerate() {
        if i % 8 == 4 {
            let ruleset = random_ruleset(&mut rng);
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, &ruleset, Action::Drop)
                .unwrap();
            last_version = control.publish().version;
        }
        gw.dispatch_batch(batch);
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, frames.len() as u64);
    assert_eq!(snap.dropped_backpressure, 0);
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received,
        "every received frame must get exactly one verdict"
    );
    assert_eq!(snap.version, last_version);
    let swaps_seen: u64 = snap.shards.iter().map(|s| s.swaps_seen).sum();
    assert!(swaps_seen > 0, "no shard observed a swap");
    let frame_batches: u64 = snap.shards.iter().map(|s| s.frame_batches).sum();
    assert!(frame_batches > 0, "no shard processed a FrameBatch");
}

/// Overload burst with non-blocking batched ingest and concurrent swaps:
/// enqueued + backpressure-dropped must equal offered, and the shards must
/// process exactly the enqueued frames.
#[test]
fn batched_overload_bursts_conserve_every_frame() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xb00);
    let (control, stage) = build_control();
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 2,
            queue_capacity: 2,
            batch_size: 4,
        },
    );
    let frames = workload(&mut rng, 4000);
    let batches = pack(&frames, 32);
    let mut enqueued = 0u64;
    for (i, batch) in batches.into_iter().enumerate() {
        if i % 32 == 16 {
            let ruleset = random_ruleset(&mut rng);
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, &ruleset, Action::Drop)
                .unwrap();
            control.publish();
        }
        enqueued += gw.offer_batch(batch);
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, enqueued);
    assert_eq!(
        snap.totals.received + snap.dropped_backpressure,
        frames.len() as u64,
        "offered = processed + backpressure-dropped, nothing vanishes"
    );
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received
    );
}
