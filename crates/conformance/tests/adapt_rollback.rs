//! Canary-rollback fault schedule: a poisoned candidate passes the
//! shadow gate, reaches the canary shards, trips the drop-rate guardrail
//! mid-rollout, and is rolled back.
//!
//! Oracles:
//! * **Exact restoration** — after rollback every shard cell serves the
//!   baseline *version number* again, and the engine's active ruleset is
//!   multiset-identical to the pre-canary baseline
//!   ([`RuleSet::diff`] emptiness, both directions by construction).
//! * **Behavioural equality** — post-rollback gateway verdict deltas on a
//!   fresh workload equal a single switch replaying the same frames under
//!   the baseline ruleset: the *tables* were restored, not just the
//!   version label.
//! * **Re-entrancy** — the schedule repeats the poisoned proposal; the
//!   engine must be stable after rollback and every cycle must land back
//!   on the same baseline.

use bytes::Bytes;
use p4guard_adapt::{AdaptConfig, AdaptEngine, DriftConfig, PhaseKind, Retrainer, StepOutcome};
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_rules::{RuleSet, TernaryEntry};
use p4guard_telemetry::{Telemetry, TelemetryConfig};
use p4guard_traffic::{Fleet, Scenario};
use rand::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0xca9a_12b4;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// Frames dispatched between engine checkpoints.
const CHUNK: usize = 400;

/// An Ethernet+IPv4 frame for `flow` carrying protocol byte `proto`.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08; // EtherType IPv4
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A randomized workload over 16 flows and a fixed protocol palette:
/// TCP, UDP, ICMP, GRE in equal shares. The baseline drops only GRE
/// (~25%); the poisoned candidate drops TCP, UDP and ICMP (~75%), so the
/// canary/control drop-rate gap is ~0.5 — far past the 0.2 guardrail but
/// well inside the 0.9 shadow gate.
fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            let proto = *[6u8, 17, 1, 47]
                .choose(rng)
                .expect("protocol list is non-empty");
            frame(rng.gen_range(0..16), proto, i as u8)
        })
        .collect()
}

/// A control plane over a one-stage ternary ACL keying on the IPv4
/// protocol byte.
fn build_control() -> ControlPlane {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("adapt-conf", parser, 1);
    switch.add_stage(Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    ));
    ControlPlane::new(switch)
}

/// Drops exactly the given protocol bytes.
fn drop_protos(protos: &[u8]) -> RuleSet {
    let mut rs = RuleSet::new(1, 0);
    for (i, p) in protos.iter().enumerate() {
        rs.push(TernaryEntry::new(vec![*p], vec![0xff], 1, i as i32 + 1));
    }
    rs
}

/// Dispatches `frames` and blocks until the gateway has drained them, so
/// the next `engine.step` sees exact counters.
fn replay_chunk(gw: &Gateway, frames: &[Bytes], expected: &mut u64) {
    for f in frames {
        gw.dispatch(f.clone());
    }
    *expected += frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < *expected {
        assert!(Instant::now() < deadline, "gateway failed to drain chunk");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A guardrail-quiet engine config: drift statistically disabled (the
/// schedule drives the propose path only), shadow gate loose enough to
/// admit the poisoned candidate, canary guardrail tight enough to trip.
fn config() -> AdaptConfig {
    AdaptConfig {
        drift: DriftConfig {
            warmup_checks: 2,
            min_frames: 250,
            ph_delta: 0.01,
            ph_lambda: 1e9,
            chi_threshold: 1e9,
        },
        stage: 0,
        mirror_stride: 2,
        mirror_capacity: 4096,
        shadow_min_samples: 32,
        shadow_max_drop_rate: 0.9,
        canary_shards: 1,
        min_canary_frames: 200,
        guardrail_max_drop_increase: 0.2,
        guardrail_max_p99_factor: None,
    }
}

/// Drives one poisoned proposal to its terminal outcome. Returns the
/// `(from, to)` versions of the rollback and whether a canary phase was
/// observed before it.
fn drive_poisoned_cycle<R: Rng>(
    rng: &mut R,
    gw: &Gateway,
    engine: &mut AdaptEngine,
    poisoned: &RuleSet,
    expected: &mut u64,
) -> (u64, u64, bool) {
    let frames = workload(rng, 4 * CHUNK);
    replay_chunk(gw, &frames[..CHUNK], expected);
    let outcome = engine
        .propose(gw, poisoned.clone(), "conformance-poison")
        .expect("stable engine accepts a proposal");
    assert!(
        matches!(outcome, StepOutcome::ShadowStarted { .. }),
        "proposal enters shadow, got {outcome:?}"
    );

    let mut saw_canary = false;
    let mut rolled_back = None;
    let mut chunk_start = CHUNK;
    // The schedule keeps generating traffic until the guardrail decides;
    // the loop is bounded by the drain deadline inside replay_chunk.
    while rolled_back.is_none() {
        let chunk: Vec<Bytes> = if chunk_start + CHUNK <= frames.len() {
            let c = frames[chunk_start..chunk_start + CHUNK].to_vec();
            chunk_start += CHUNK;
            c
        } else {
            workload(rng, CHUNK)
        };
        replay_chunk(gw, &chunk, expected);
        match engine.step(gw).expect("step succeeds") {
            StepOutcome::CanaryStarted { .. } => saw_canary = true,
            StepOutcome::RolledBack { from, to } => rolled_back = Some((from, to)),
            StepOutcome::ShadowProgress { .. } | StepOutcome::CanaryProgress { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let (from, to) = rolled_back.expect("guardrail tripped");
    (from, to, saw_canary)
}

/// The full schedule, for 2- and 4-shard gateways: two poisoned-proposal
/// cycles, each ending in a guardrail rollback that restores the exact
/// baseline, then a behavioural check against a single-switch replay.
#[test]
fn canary_guardrail_rollback_restores_exact_baseline() {
    for shards in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64);
        let control = build_control();
        let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
        let gw = Gateway::start_with_telemetry(
            &control,
            GatewayConfig {
                shards,
                queue_capacity: 8192,
                batch_size: 32,
            },
            Some(Arc::clone(&telemetry)),
        );

        let r0 = drop_protos(&[47]); // baseline: drop GRE only
        let poisoned = drop_protos(&[6, 17, 1]); // drop TCP+UDP+ICMP
        let window_source = Scenario {
            fleet: Fleet::mixed(),
            duration_s: 1.0,
            seed: SEED,
            benign_intensity: 1.0,
            attacks: Vec::new(),
        };
        let mut engine = AdaptEngine::new(
            control.clone(),
            Arc::clone(&telemetry),
            Retrainer::new(64, vec![PROTO_OFF]),
            window_source,
            config(),
        );
        let initial = engine.install_initial(&r0).expect("baseline installs");
        let mut expected = 0u64;

        for cycle in 0..2 {
            let (from, to, saw_canary) =
                drive_poisoned_cycle(&mut rng, &gw, &mut engine, &poisoned, &mut expected);
            assert!(
                saw_canary,
                "{shards}-shard cycle {cycle}: guardrail must trip mid-rollout, after canary start"
            );
            assert!(
                from > initial.version,
                "{shards}-shard cycle {cycle}: canary version advances past the baseline"
            );
            assert_eq!(
                to, initial.version,
                "{shards}-shard cycle {cycle}: rollback targets the baseline version"
            );

            // Exact restoration: version on every shard cell, and the
            // active ruleset multiset-identical to the baseline.
            let snap = gw.snapshot();
            assert_eq!(snap.version, initial.version);
            assert!(
                snap.shard_versions.iter().all(|v| *v == initial.version),
                "{shards}-shard cycle {cycle}: shard versions {:?} != baseline {}",
                snap.shard_versions,
                initial.version
            );
            assert_eq!(engine.phase(), PhaseKind::Stable, "engine is reusable");
            let active = engine.active_ruleset().expect("baseline retained");
            assert!(
                active.diff(&r0).is_empty() && r0.diff(active).is_empty(),
                "{shards}-shard cycle {cycle}: restored ruleset differs from baseline"
            );
        }

        // Behavioural equality: fresh workload through the rolled-back
        // gateway must match a single switch running the baseline rules.
        let probe = workload(&mut rng, 1200);
        let before = gw.snapshot().totals;
        replay_chunk(&gw, &probe, &mut expected);
        let snap = gw.finish();

        let reference = build_control();
        reference
            .install_ruleset(0, &r0, Action::Drop)
            .expect("baseline installs into reference");
        let single = reference.with_switch_mut(|sw| {
            sw.run_frames(probe.iter().map(|f| f.as_ref()));
            sw.counters().clone()
        });
        assert_eq!(
            snap.totals.received - before.received,
            single.received,
            "{shards}-shard probe receive totals diverge"
        );
        assert_eq!(
            snap.totals.dropped - before.dropped,
            single.dropped,
            "{shards}-shard post-rollback drop verdicts diverge from baseline replay"
        );
        assert_eq!(
            snap.totals.forwarded - before.forwarded,
            single.forwarded,
            "{shards}-shard post-rollback forward verdicts diverge from baseline replay"
        );
    }
}
