//! Gateway fault schedules: deterministic, seed-driven sequences of hot
//! swaps, overload bursts and invalid installs, with differential oracles
//! against a single-switch replay.
//!
//! Oracles:
//! * **Phased equality** — with drains between swap points, the sharded
//!   gateway's merged totals must equal a single switch replaying the same
//!   frames under the same per-phase rulesets, for every shard count.
//! * **Conservation** — under overload and mid-replay swaps (no drains),
//!   every frame is either processed or counted as a backpressure drop;
//!   nothing vanishes.
//! * **Fault rejection** — a wrong-width ruleset install fails loudly and
//!   leaves the gateway serving the previous ruleset.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table, TableError};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_rules::{RuleSet, TernaryEntry};
use rand::prelude::*;
use std::time::{Duration, Instant};

const SEED: u64 = 0xfa17_5eed;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// An Ethernet+IPv4 frame for `flow` carrying protocol byte `proto`.
/// Distinct flows produce distinct 5-tuples (and so distinct shards).
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08; // EtherType IPv4
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A randomized workload over 16 flows and a protocol mix that includes
/// values no ruleset mentions.
fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            let proto = *[6u8, 17, 1, 47, rng.gen()]
                .choose(rng)
                .expect("protocol list is non-empty");
            frame(rng.gen_range(0..16), proto, i as u8)
        })
        .collect()
}

/// A control plane over a one-stage switch whose ternary ACL keys on the
/// IPv4 protocol byte. Starts empty (everything forwards).
fn build_control() -> (ControlPlane, usize) {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("conf-gw", parser, 1);
    let acl = Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    );
    let stage = switch.add_stage(acl);
    (ControlPlane::new(switch), stage)
}

/// A small adversarial ruleset over the protocol byte: partial masks,
/// duplicate priorities, occasional match-alls.
fn random_ruleset<R: Rng>(rng: &mut R) -> RuleSet {
    let mut rs = RuleSet::new(1, 0);
    for _ in 0..rng.gen_range(1..=6) {
        let mask = *[0xffu8, 0xff, 0xf0, 0x0f, 0x00]
            .choose(rng)
            .expect("mask list is non-empty");
        rs.push(TernaryEntry::new(
            vec![rng.gen()],
            vec![mask],
            1,
            rng.gen_range(0..4),
        ));
    }
    rs
}

fn drain(gw: &Gateway, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < expected {
        assert!(
            Instant::now() < deadline,
            "gateway failed to drain to {expected} received frames"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Phased hot-swap schedule: for every shard count, gateway totals under a
/// sequence of ruleset swaps (drained at each swap point) must equal a
/// single switch replaying the identical schedule.
#[test]
fn phased_hot_swaps_match_single_switch_replay() {
    for shards in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64);
        let phases: Vec<(RuleSet, Vec<Bytes>)> = (0..4)
            .map(|_| (random_ruleset(&mut rng), workload(&mut rng, 400)))
            .collect();

        let (control, stage) = build_control();
        let (reference, ref_stage) = build_control();
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));

        let mut sent = 0u64;
        for (ruleset, frames) in &phases {
            // Swap on the live path…
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, ruleset, Action::Drop)
                .unwrap();
            control.publish();
            // …and identically on the reference switch.
            reference.clear_stage(ref_stage).unwrap();
            reference
                .install_ruleset(ref_stage, ruleset, Action::Drop)
                .unwrap();

            for f in frames {
                gw.dispatch(f.clone());
            }
            sent += frames.len() as u64;
            // Drain so no queued frame straddles the next swap.
            drain(&gw, sent);
            reference.with_switch_mut(|sw| {
                sw.run_frames(frames.iter().map(|f| f.as_ref()));
            });
        }

        let snap = gw.finish();
        let single = reference.with_switch_mut(|sw| sw.counters().clone());
        assert_eq!(
            snap.totals, single,
            "{shards}-shard phased totals diverge from single-switch replay"
        );
        assert_eq!(snap.dropped_backpressure, 0, "blocking ingest never drops");
    }
}

/// Mid-replay swaps with no drain: totals can legitimately split across
/// ruleset versions, but conservation must hold exactly and the final
/// version must be the last published one.
#[test]
fn undrained_swaps_lose_no_frames() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xdead);
    let (control, stage) = build_control();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(4));
    let frames = workload(&mut rng, 3000);
    let mut last_version = 0;
    for (i, f) in frames.iter().enumerate() {
        if i % 500 == 250 {
            let ruleset = random_ruleset(&mut rng);
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, &ruleset, Action::Drop)
                .unwrap();
            last_version = control.publish().version;
        }
        gw.dispatch(f.clone());
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, frames.len() as u64);
    assert_eq!(snap.dropped_backpressure, 0);
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received,
        "every received frame must get exactly one verdict"
    );
    assert_eq!(snap.version, last_version);
}

/// Queue-overload burst with non-blocking ingest and concurrent swaps:
/// accepted + backpressure-dropped must equal offered, and the shards must
/// process exactly the accepted frames.
#[test]
fn overload_bursts_conserve_every_frame() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xb00);
    let (control, stage) = build_control();
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 2,
            queue_capacity: 4,
            batch_size: 2,
        },
    );
    let frames = workload(&mut rng, 4000);
    let mut accepted = 0u64;
    for (i, f) in frames.iter().enumerate() {
        if i % 1000 == 500 {
            let ruleset = random_ruleset(&mut rng);
            control.clear_stage(stage).unwrap();
            control
                .install_ruleset(stage, &ruleset, Action::Drop)
                .unwrap();
            control.publish();
        }
        if gw.offer(f.clone()) {
            accepted += 1;
        }
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, accepted);
    assert_eq!(
        snap.totals.received + snap.dropped_backpressure,
        frames.len() as u64,
        "offered = processed + backpressure-dropped, nothing vanishes"
    );
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received
    );
}

/// A ruleset whose key width does not match the stage must be rejected
/// with a typed error, and the gateway must keep serving the previously
/// published ruleset untouched.
#[test]
fn wrong_width_ruleset_is_rejected_and_service_continues() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1de);
    let (control, stage) = build_control();

    // Publish a known-good ruleset first: drop TCP.
    let mut good = RuleSet::new(1, 0);
    good.push(TernaryEntry::new(vec![6], vec![0xff], 1, 1));
    control.install_ruleset(stage, &good, Action::Drop).unwrap();
    let gw = Gateway::start(&control, GatewayConfig::with_shards(2));

    // A two-byte-wide ruleset cannot install into the one-byte stage.
    let mut wide = RuleSet::new(2, 0);
    wide.push(TernaryEntry::new(vec![0xaa, 0xbb], vec![0xff, 0xff], 1, 1));
    let err = control
        .install_ruleset(stage, &wide, Action::Drop)
        .expect_err("wrong-width install must fail");
    assert!(
        matches!(err, TableError::WidthMismatch { table: 1, entry: 2 }),
        "want WidthMismatch, got {err}"
    );

    // The failed install must not have disturbed the live ruleset.
    let frames = workload(&mut rng, 600);
    let tcp = frames.iter().filter(|f| f[PROTO_OFF] == 6).count() as u64;
    for f in &frames {
        gw.dispatch(f.clone());
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, frames.len() as u64);
    assert_eq!(
        snap.totals.dropped, tcp,
        "previous ruleset must still apply"
    );
}
