//! Forest-pipeline conformance: hot swaps of a multi-stage ensemble
//! (one ternary stage per tree feeding the vote stage) must preserve
//! every per-frame guarantee on the batched gateway path.
//!
//! Oracles:
//! * **Phased equality** — with drains between swap points, batched
//!   gateway totals under a vote-mode pipeline (sound early exit on)
//!   must equal a single mutable switch replaying the same frames
//!   per-frame under the same per-phase tree rulesets.
//! * **Structural mid-serve swaps** — trees *added and removed* while
//!   batches are in flight (stage-count changes force the full-rebuild
//!   publish path) must conserve every frame, land on the last published
//!   version, and leave the expected stage count installed.

use bytes::Bytes;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
use p4guard_dataplane::vote::{EarlyExit, VoteStage};
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_packet::{FrameArena, FrameBatch};
use p4guard_rules::{RuleSet, TernaryEntry};
use rand::prelude::*;
use std::time::{Duration, Instant};

const SEED: u64 = 0xf0e5_7ed5;

/// Offset of the IPv4 protocol byte in an Ethernet frame.
const PROTO_OFF: usize = 14 + 9;

/// An Ethernet+IPv4 frame for `flow` carrying protocol byte `proto`.
fn frame(flow: u8, proto: u8, payload: u8) -> Bytes {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = proto;
    ip[12..16].copy_from_slice(&[10, 0, 0, flow]);
    ip[16..20].copy_from_slice(&[10, 0, 1, 1]);
    f.extend_from_slice(&ip);
    f.extend_from_slice(&(1000 + u16::from(flow)).to_be_bytes());
    f.extend_from_slice(&443u16.to_be_bytes());
    f.extend_from_slice(&[0, 9, 0, 0]);
    f.push(payload);
    Bytes::from(f)
}

/// A randomized workload over 16 flows, runts included so the batched
/// parse stage exercises its reject lane under vote mode too.
fn workload<R: Rng>(rng: &mut R, n: usize) -> Vec<Bytes> {
    (0..n)
        .map(|i| {
            if rng.gen_range(0..16u8) == 0 {
                return Bytes::from(vec![i as u8; 4]); // parser-rejected runt
            }
            let proto = *[6u8, 17, 1, 47, rng.gen()]
                .choose(rng)
                .expect("protocol list is non-empty");
            frame(rng.gen_range(0..16), proto, i as u8)
        })
        .collect()
}

/// Packs `frames` into arena batches of `batch` frames (last one short).
fn pack(frames: &[Bytes], batch: usize) -> Vec<FrameBatch> {
    let mut arena = FrameArena::new(64 * 1024);
    let mut out = Vec::new();
    for f in frames {
        arena.push(f);
        if arena.pending() >= batch {
            out.push(arena.seal_batch());
        }
    }
    if arena.pending() > 0 {
        out.push(arena.seal_batch());
    }
    out
}

/// An empty per-tree stage keyed on the protocol byte.
fn tree_stage() -> Table {
    Table::new(
        "tree",
        MatchKind::Ternary,
        KeyLayout::new(vec![PROTO_OFF]),
        64,
        Action::NoOp,
    )
}

/// A control plane whose switch is a `trees`-stage vote pipeline.
fn build_forest_control(trees: usize, vote: VoteStage) -> ControlPlane {
    let parser = ParserSpec::raw_window(64, 14);
    let mut switch = Switch::new("conf-forest", parser, 1);
    for _ in 0..trees {
        switch.add_stage(tree_stage());
    }
    switch.set_vote(Some(vote));
    ControlPlane::new(switch)
}

/// A small adversarial per-tree ruleset over the protocol byte.
fn random_ruleset<R: Rng>(rng: &mut R) -> RuleSet {
    let mut rs = RuleSet::new(1, 0);
    for _ in 0..rng.gen_range(1..=6) {
        let mask = *[0xffu8, 0xff, 0xf0, 0x0f, 0x00]
            .choose(rng)
            .expect("mask list is non-empty");
        rs.push(TernaryEntry::new(
            vec![rng.gen()],
            vec![mask],
            1,
            rng.gen_range(0..4),
        ));
    }
    rs
}

fn drain(gw: &Gateway, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < expected {
        assert!(
            Instant::now() < deadline,
            "gateway failed to drain to {expected} received frames"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Phased hot-swap schedule on a vote-mode pipeline: for every shard
/// count, batched gateway totals (drained at each swap point) must equal
/// a single mutable switch replaying the identical schedule per-frame —
/// with the sound early exit active on both, so skipped lookups are
/// exercised while verdicts stay provably the full-majority ones.
#[test]
fn phased_forest_swaps_match_single_switch_replay() {
    const TREES: usize = 3;
    let vote = VoteStage::with_early_exit(EarlyExit::sound_majority(TREES));
    for shards in [1usize, 2, 4] {
        let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64);
        // Each phase: one fresh ruleset per tree stage, plus a workload.
        let phases: Vec<(Vec<RuleSet>, Vec<Bytes>)> = (0..4)
            .map(|_| {
                (
                    (0..TREES).map(|_| random_ruleset(&mut rng)).collect(),
                    workload(&mut rng, 400),
                )
            })
            .collect();

        let control = build_forest_control(TREES, vote);
        let reference = build_forest_control(TREES, vote);
        let gw = Gateway::start(&control, GatewayConfig::with_shards(shards));

        let mut sent = 0u64;
        for (rulesets, frames) in &phases {
            for (stage, ruleset) in rulesets.iter().enumerate() {
                control.clear_stage(stage).unwrap();
                control
                    .install_ruleset(stage, ruleset, Action::Drop)
                    .unwrap();
                reference.clear_stage(stage).unwrap();
                reference
                    .install_ruleset(stage, ruleset, Action::Drop)
                    .unwrap();
            }
            control.publish();

            // 96 does not divide 400, so phase tails ride in short batches.
            for batch in pack(frames, 96) {
                gw.dispatch_batch(batch);
            }
            sent += frames.len() as u64;
            drain(&gw, sent);
            reference.with_switch_mut(|sw| {
                sw.run_frames(frames.iter().map(|f| f.as_ref()));
            });
        }

        let snap = gw.finish();
        let single = reference.with_switch_mut(|sw| sw.counters().clone());
        assert_eq!(
            snap.totals, single,
            "{shards}-shard batched forest totals diverge from per-frame replay"
        );
        assert_eq!(snap.dropped_backpressure, 0, "blocking ingest never drops");
        let batched_frames: u64 = snap.shards.iter().map(|s| s.batched_frames).sum();
        assert_eq!(batched_frames, sent, "all frames took the batched path");
    }
}

/// Trees added and removed while batches are in flight (no drains): the
/// stage-count change takes the full-rebuild publish path, yet every
/// frame is conserved, the gateway lands on the last published version,
/// and the switch ends with exactly the tracked number of tree stages.
#[test]
fn tree_add_remove_mid_serve_conserves_frames() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x001d);
    let control = build_forest_control(3, VoteStage::majority());
    for stage in 0..3 {
        let rs = random_ruleset(&mut rng);
        control.install_ruleset(stage, &rs, Action::Drop).unwrap();
    }
    // Tiny queues and shard batch budget force batches to straddle the
    // structural publishes.
    let gw = Gateway::start(
        &control,
        GatewayConfig {
            shards: 4,
            queue_capacity: 8,
            batch_size: 32,
        },
    );
    let frames = workload(&mut rng, 3000);
    let batches = pack(&frames, 64);
    let mut last_version = 0;
    let mut expected_stages = 3usize;
    for (i, batch) in batches.into_iter().enumerate() {
        match i % 8 {
            // Grow the electorate: a new tree with a fresh ruleset.
            2 => {
                let rs = random_ruleset(&mut rng);
                control.with_switch_mut(|sw| {
                    let mut table = tree_stage();
                    for e in rs.entries() {
                        table
                            .insert(
                                MatchSpec::Ternary {
                                    value: e.value.clone(),
                                    mask: e.mask.clone(),
                                },
                                Action::Drop,
                                e.priority,
                            )
                            .unwrap();
                    }
                    sw.add_stage(table);
                });
                expected_stages += 1;
                last_version = control.publish().version;
            }
            // Shrink it again, never below one tree.
            6 if expected_stages > 1 => {
                control.with_switch_mut(|sw| {
                    sw.remove_stage(expected_stages - 1);
                });
                expected_stages -= 1;
                last_version = control.publish().version;
            }
            _ => {}
        }
        gw.dispatch_batch(batch);
    }
    let snap = gw.finish();
    assert_eq!(snap.totals.received, frames.len() as u64);
    assert_eq!(snap.dropped_backpressure, 0);
    assert_eq!(
        snap.totals.forwarded + snap.totals.dropped + snap.totals.parser_rejected,
        snap.totals.received,
        "every received frame must get exactly one verdict"
    );
    assert_eq!(snap.version, last_version, "gateway lands on last publish");
    assert_eq!(
        control.with_switch(|sw| sw.stage_count()),
        expected_stages,
        "structural swaps leave the tracked tree count installed"
    );
    let swaps_seen: u64 = snap.shards.iter().map(|s| s.swaps_seen).sum();
    assert!(swaps_seen > 0, "no shard observed a structural swap");
}
