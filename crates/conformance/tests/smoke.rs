//! Fixed-seed conformance smoke: structure-aware frame fuzzing plus
//! compiled-table differential testing, deterministic and fast enough for
//! every `cargo test` run (see `ci.sh` for the time-boxed CI gate).
//!
//! New failures shrink to minimal repros and are persisted under
//! `tests/corpus/` so they become pinned regressions (`corpus_replay.rs`)
//! even before the underlying bug is fixed.

use p4guard_conformance::{corpus, gen, mutate, oracle, shrink, tables};
use p4guard_dataplane::CompiledTable;
use rand::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// One seed for the whole smoke so every run covers the identical input
/// set; bump deliberately to rotate coverage.
const SEED: u64 = 0x1cdc_2020;

/// Mutated frames per protocol family.
const FRAMES_PER_FAMILY: usize = 10_000;

/// Valid frames per family given the exhaustive truncation sweep.
const SWEEP_FRAMES: usize = 8;

/// Adversarial tables for the differential table oracle.
const TABLES: usize = 120;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn report_frame_failure(
    failures: &mut Vec<String>,
    family: gen::Family,
    frame: &[u8],
    failure: &oracle::Failure,
) {
    // Shrink while the *same kind* of failure reproduces, then pin it.
    let minimal = shrink::shrink_frame(frame, |f| oracle::check_frame(f).is_err());
    let comment = format!("family {family}: {failure}");
    let path = corpus::write_repro(&corpus_dir(), "frame", &comment, &minimal)
        .map(|p| p.display().to_string())
        .unwrap_or_else(|e| format!("<corpus write failed: {e}>"));
    failures.push(format!(
        "{comment}\n  repro ({} bytes, saved to {path}):\n{}",
        minimal.len(),
        corpus::to_hex(&minimal)
    ));
}

#[test]
fn frame_families_survive_structured_corruption() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut failures = Vec::new();
    for family in gen::Family::ALL {
        let budget = failures.len() + 3; // cap noise per family
                                         // Valid frames must pass outright, and every truncation must be
                                         // rejected cleanly (never a panic, never a broken fixpoint).
        for _ in 0..SWEEP_FRAMES {
            let frame = gen::valid_frame(family, &mut rng);
            for cut in (0..=frame.len()).rev() {
                if failures.len() >= budget {
                    break;
                }
                if let Err(e) = oracle::check_frame(&frame[..cut]) {
                    report_frame_failure(&mut failures, family, &frame[..cut], &e);
                }
            }
        }
        // Structure-aware corruption: length lies, bit flips, truncation,
        // region duplication/deletion on fresh valid frames.
        for _ in 0..FRAMES_PER_FAMILY {
            let mut frame = gen::valid_frame(family, &mut rng);
            mutate::mutate(&mut frame, &mut rng);
            if let Err(e) = oracle::check_frame(&frame) {
                report_frame_failure(&mut failures, family, &frame, &e);
                if failures.len() >= budget {
                    break;
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn compiled_tables_agree_with_reference_scan() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x7ab1e);
    let mut strategies = BTreeSet::new();
    let mut failures = Vec::new();
    for index in 0..TABLES {
        let adv = tables::adversarial_table(&mut rng, index);
        let compiled = CompiledTable::compile(&adv.table);
        strategies.insert(compiled.strategy());
        for key in &adv.probes {
            if let Err(e) = oracle::check_compiled(&adv.table, &compiled, key) {
                failures.push(format!("table {index}: {e}"));
                if failures.len() >= 10 {
                    break;
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s) between scan and compiled engines:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The generator must actually exercise every engine, including both
    // sides of the tuple-space fallback threshold.
    for want in [
        "exact-hash",
        "lpm-buckets",
        "range-index",
        "tuple-space",
        "scan",
    ] {
        assert!(
            strategies.contains(want),
            "strategy {want} never compiled; saw {strategies:?}"
        );
    }
}
