//! Budget-rejection fault schedule: a tenant proposes a ruleset larger
//! than its allocation while the fleet gateway is serving live traffic.
//!
//! Oracles:
//! * **No version movement** — the rejected publish leaves *every*
//!   tenant's shard pipeline cells at the exact version they served
//!   before the attempt (admission happens strictly before any table
//!   mutation).
//! * **Replay equality** — the same workload replayed before and after
//!   the rejection produces bit-identical per-tenant counter deltas, on
//!   every shard; and a twin registry that never saw the oversized
//!   proposal serves bit-identical verdicts.
//! * **Re-entrancy** — after the rejection the *other* tenant can still
//!   publish a legitimate update, and every shard picks it up.

use bytes::Bytes;
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_fleet::{
    AclLayout, AdmitPolicy, BudgetConfig, FleetError, FleetGateway, FleetSim, FleetSimConfig,
    FleetSnapshot, TenantRegistry, TenantShare, TenantSpec,
};
use p4guard_gateway::GatewayConfig;
use p4guard_rules::{RuleSet, TernaryEntry};
use std::time::{Duration, Instant};

const SEED: u64 = 0xf1ee_12b4;
const SHARDS: usize = 2;
const TENANTS: usize = 2;
/// Tight global budget: 2 flat-share tenants get 1024 TCAM bits each —
/// room for 12 entries of the 5-byte ACL key, so the 20-entry proposal
/// below must be rejected.
const BUDGET: BudgetConfig = BudgetConfig {
    tcam_bits: 2048,
    sram_bits: 2048,
};

/// A ternary ruleset dropping frames whose IPv4 protocol byte (key
/// offset 0 of the fleet ACL layout) equals `proto`, padded to `entries`
/// by distinct high-priority rows on the source-port high byte.
fn drop_proto(width: usize, proto: u8, entries: usize) -> RuleSet {
    let mut rs = RuleSet::new(width, 0);
    let mut value = vec![0u8; width];
    let mut mask = vec![0u8; width];
    value[0] = proto;
    mask[0] = 0xff;
    rs.push(TernaryEntry::new(value, mask, 1, 100));
    for i in 1..entries {
        let mut value = vec![0u8; width];
        let mut mask = vec![0u8; width];
        value[1] = 0x04; // attack source-port band
        mask[1] = 0xff;
        value[2] = (i % 256) as u8;
        mask[2] = 0xff;
        rs.push(TernaryEntry::new(value, mask, 1, 50 + i as i32));
    }
    rs
}

fn build_registry() -> TenantRegistry {
    let specs = (0..TENANTS)
        .map(|t| TenantSpec {
            name: format!("tenant-{t}"),
            share: TenantShare::flat(),
        })
        .collect();
    let mut registry = TenantRegistry::new(specs, BUDGET, AclLayout::default())
        .expect("flat shares fit the tight budget");
    let width = registry.layout().offsets.len();
    // Tenant 0 drops TCP SYN-band sources, tenant 1 drops UDP: distinct
    // verdict surfaces, both within the 12-entry allocation.
    registry
        .publish(0, &drop_proto(width, 6, 4), AdmitPolicy::Reject)
        .expect("baseline 0 fits");
    registry
        .publish(1, &drop_proto(width, 17, 4), AdmitPolicy::Reject)
        .expect("baseline 1 fits");
    registry
}

fn workload() -> Vec<Bytes> {
    let mut config = FleetSimConfig::demo(TENANTS, 2_000, SEED);
    config.steps = 8;
    config.frames_per_step = 1024;
    FleetSim::new(config)
        .run()
        .into_iter()
        .map(|f| f.frame)
        .collect()
}

/// Replays `frames` and waits for the gateway to drain them.
fn replay(gw: &FleetGateway, frames: &[Bytes], already: u64) -> FleetSnapshot {
    for f in frames {
        gw.dispatch(f.clone());
    }
    let expected = already + frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = gw.snapshot();
        if snap.totals.received >= expected {
            return snap;
        }
        assert!(Instant::now() < deadline, "fleet gateway failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The timing-independent verdict fields of a counter set.
fn verdicts(c: &SwitchCounters) -> (u64, u64, u64, u64) {
    (c.received, c.forwarded, c.dropped, c.parser_rejected)
}

fn delta(now: &SwitchCounters, before: &SwitchCounters) -> (u64, u64, u64, u64) {
    (
        now.received - before.received,
        now.forwarded - before.forwarded,
        now.dropped - before.dropped,
        now.parser_rejected - before.parser_rejected,
    )
}

#[test]
fn rejected_publish_is_invisible_to_every_tenant() {
    let frames = workload();
    let width = AclLayout::default().offsets.len();

    // Twin registry/gateway that never sees the oversized proposal: the
    // behavioural reference.
    let twin_registry = build_registry();
    let twin_gw = FleetGateway::start(&twin_registry, GatewayConfig::with_shards(SHARDS), None);
    let twin_snap = replay(&twin_gw, &frames, 0);
    let twin_final = twin_gw.finish();

    let mut registry = build_registry();
    let gw = FleetGateway::start(&registry, GatewayConfig::with_shards(SHARDS), None);
    let first = replay(&gw, &frames, 0);

    // Both gateways served identical verdicts per tenant and per shard.
    assert_eq!(first.unknown_tenant, 0);
    assert_eq!(twin_snap.unknown_tenant, 0);
    for t in 0..TENANTS {
        assert_eq!(
            verdicts(&first.per_tenant[t]),
            verdicts(&twin_snap.per_tenant[t]),
            "tenant {t} diverged from the twin"
        );
        assert!(
            first.per_tenant[t].dropped > 0,
            "tenant {t} dropped nothing"
        );
    }
    for s in 0..SHARDS {
        for t in 0..TENANTS {
            assert_eq!(
                verdicts(&first.shards[s].per_tenant[t]),
                verdicts(&twin_final.shards[s].per_tenant[t]),
                "shard {s} tenant {t} diverged from the twin"
            );
        }
    }

    // The fault: tenant 1 proposes 20 entries against a 12-entry
    // allocation, mid-serve.
    let versions_before: Vec<Vec<u64>> = (0..TENANTS)
        .map(|t| gw.tenant_cells(t).iter().map(|c| c.version()).collect())
        .collect();
    match registry.publish(1, &drop_proto(width, 17, 20), AdmitPolicy::Reject) {
        Err(FleetError::Budget(_)) => {}
        other => panic!("oversized publish must be rejected, got {other:?}"),
    }
    assert_eq!(registry.rejected_publishes(1), 1);

    // Oracle 1: no pipeline cell moved — any tenant, any shard.
    for (t, before) in versions_before.iter().enumerate() {
        let now: Vec<u64> = gw.tenant_cells(t).iter().map(|c| c.version()).collect();
        assert_eq!(&now, before, "tenant {t} cell version moved");
    }
    // The registry still serves the baseline ruleset.
    assert_eq!(
        registry
            .active_ruleset(1)
            .expect("published")
            .entries()
            .len(),
        4
    );

    // Oracle 2: the same workload replays with bit-identical per-tenant,
    // per-shard verdict deltas.
    let second = replay(&gw, &frames, first.totals.received);
    for t in 0..TENANTS {
        assert_eq!(
            delta(&second.per_tenant[t], &first.per_tenant[t]),
            verdicts(&first.per_tenant[t]),
            "tenant {t} verdicts changed after the rejected publish"
        );
    }
    for s in 0..SHARDS {
        for t in 0..TENANTS {
            assert_eq!(
                delta(
                    &second.shards[s].per_tenant[t],
                    &first.shards[s].per_tenant[t]
                ),
                verdicts(&first.shards[s].per_tenant[t]),
                "shard {s} tenant {t} verdicts changed after the rejected publish"
            );
        }
    }

    // Oracle 3: the fleet is not wedged — tenant 0 publishes a
    // legitimate update and every shard picks it up.
    let before0 = versions_before[0].clone();
    let publish = registry
        .publish(0, &drop_proto(width, 6, 6), AdmitPolicy::Reject)
        .expect("legitimate update fits");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now: Vec<u64> = gw.tenant_cells(0).iter().map(|c| c.version()).collect();
        if now.iter().all(|&v| v == publish.version) {
            assert!(now.iter().zip(&before0).all(|(n, b)| n > b));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shards never saw the new version"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    gw.finish();
}
