//! Differential oracles.
//!
//! * [`check_frame`]: the parser must never panic, and every layer struct
//!   it yields must be a `decode → encode → decode` fixpoint — re-encoding
//!   a decoded header and decoding it again must give back the identical
//!   struct. Clean parse *errors* on corrupt input are conformant; only
//!   panics and fixpoint divergences are bugs.
//! * [`check_compiled`]: a [`CompiledTable`] must return exactly the
//!   verdict of the reference priority scan (`Table::peek`) for any key.

use p4guard_dataplane::table::Table;
use p4guard_dataplane::CompiledTable;
use p4guard_packet::arp::ArpHeader;
use p4guard_packet::coap::CoapMessage;
use p4guard_packet::dns::DnsMessage;
use p4guard_packet::ethernet::EthernetHeader;
use p4guard_packet::icmp::IcmpHeader;
use p4guard_packet::ipv4::Ipv4Header;
use p4guard_packet::ipv6::Ipv6Header;
use p4guard_packet::modbus::ModbusAdu;
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::tcp::TcpHeader;
use p4guard_packet::udp::UdpHeader;
use p4guard_packet::zwire::ZWireFrame;
use p4guard_packet::{parse, Application, ParsedPacket, Transport};
use std::fmt;
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A conformance violation found by an oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// Code panicked instead of returning an error.
    Panic {
        /// Best-effort panic payload.
        detail: String,
    },
    /// A decoded struct did not survive `encode → decode`.
    Fixpoint {
        /// Which layer diverged (e.g. `"ipv4"`, `"mqtt"`).
        layer: &'static str,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Panic { detail } => write!(f, "panic: {detail}"),
            Failure::Fixpoint { layer, detail } => write!(f, "{layer} fixpoint broken: {detail}"),
        }
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn roundtrip<T, E>(
    layer: &'static str,
    original: &T,
    encoded: &[u8],
    decode: impl FnOnce(&[u8]) -> Result<(T, usize), E>,
) -> Result<(), Failure>
where
    T: PartialEq + fmt::Debug,
    E: fmt::Display,
{
    match decode(encoded) {
        Ok((again, _)) if &again == original => Ok(()),
        Ok((again, _)) => Err(Failure::Fixpoint {
            layer,
            detail: format!("decoded {original:?}, re-decoded {again:?}"),
        }),
        Err(e) => Err(Failure::Fixpoint {
            layer,
            detail: format!("re-encoding of {original:?} no longer decodes: {e}"),
        }),
    }
}

fn check_fixpoints(p: &ParsedPacket) -> Result<(), Failure> {
    // Checksums and addresses are either absent from the structs or
    // recomputed on encode, so dummy endpoints are fine for transport
    // re-encoding: decode never verifies them.
    let (a, b) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));

    let mut buf = Vec::new();
    p.ethernet.encode(&mut buf);
    roundtrip("ethernet", &p.ethernet, &buf, EthernetHeader::decode)?;

    if let Some(arp) = &p.arp {
        buf.clear();
        arp.encode(&mut buf);
        roundtrip("arp", arp, &buf, ArpHeader::decode)?;
    }
    if let Some(ip) = &p.ipv4 {
        buf.clear();
        ip.encode(&mut buf);
        roundtrip("ipv4", ip, &buf, Ipv4Header::decode)?;
    }
    if let Some(ip6) = &p.ipv6 {
        buf.clear();
        ip6.encode(&mut buf);
        roundtrip("ipv6", ip6, &buf, Ipv6Header::decode)?;
    }
    if let Some(zw) = &p.zwire {
        let bytes = zw.encode();
        roundtrip("zwire", zw, &bytes, ZWireFrame::decode)?;
    }
    match &p.transport {
        Some(Transport::Tcp(tcp)) => {
            buf.clear();
            tcp.encode_with_payload(a, b, &[], &mut buf);
            roundtrip("tcp", tcp, &buf, TcpHeader::decode)?;
        }
        Some(Transport::Udp(udp)) => {
            buf.clear();
            udp.encode_with_payload(a, b, &[], &mut buf);
            roundtrip("udp", udp, &buf, UdpHeader::decode)?;
        }
        Some(Transport::Icmp(icmp)) => {
            buf.clear();
            icmp.encode_with_payload(&[], &mut buf);
            roundtrip("icmp", icmp, &buf, IcmpHeader::decode)?;
        }
        None => {}
    }
    match &p.app {
        Some(Application::Mqtt(m)) => roundtrip("mqtt", m, &m.encode(), MqttPacket::decode)?,
        Some(Application::Coap(m)) => roundtrip("coap", m, &m.encode(), CoapMessage::decode)?,
        Some(Application::Dns(m)) => roundtrip("dns", m, &m.encode(), DnsMessage::decode)?,
        Some(Application::Modbus(m)) => roundtrip("modbus", m, &m.encode(), ModbusAdu::decode)?,
        None => {}
    }
    Ok(())
}

/// Runs the frame oracle: panic-free parsing, and layer-struct fixpoints
/// on whatever survives parsing.
///
/// # Errors
///
/// Returns the first [`Failure`] found; a clean [`p4guard_packet::parse`]
/// error is conformant and returns `Ok`.
pub fn check_frame(frame: &[u8]) -> Result<(), Failure> {
    let parsed = match catch_unwind(AssertUnwindSafe(|| parse(frame))) {
        Err(payload) => {
            return Err(Failure::Panic {
                detail: format!("parse: {}", panic_detail(payload)),
            })
        }
        Ok(Err(_)) => return Ok(()),
        Ok(Ok(p)) => p,
    };
    match catch_unwind(AssertUnwindSafe(|| check_fixpoints(&parsed))) {
        Err(payload) => Err(Failure::Panic {
            detail: format!("re-encode: {}", panic_detail(payload)),
        }),
        Ok(result) => result,
    }
}

/// Runs the table oracle: [`CompiledTable::peek`] must agree with the
/// reference scan `Table::peek` on `key`.
///
/// # Errors
///
/// Returns a [`Failure::Fixpoint`] describing both verdicts on divergence.
pub fn check_compiled(table: &Table, compiled: &CompiledTable, key: &[u8]) -> Result<(), Failure> {
    let want = table.peek(key);
    let got = compiled.peek(key);
    if got == want {
        Ok(())
    } else {
        Err(Failure::Fixpoint {
            layer: "compiled-table",
            detail: format!(
                "key {key:02x?}: scan says {want}, {} engine says {got}",
                compiled.strategy()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_packet::addr::MacAddr;
    use p4guard_packet::packet::PacketBuilder;
    use p4guard_packet::tcp::TcpFlags;

    #[test]
    fn valid_frame_passes_and_truncations_never_fail_the_oracle() {
        let b = PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2));
        let frame = b.tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(40000, 80, 1, 0, TcpFlags::SYN),
            b"hello",
        );
        for cut in 0..=frame.len() {
            check_frame(&frame[..cut]).expect("truncation must reject cleanly, not fail");
        }
    }
}
