//! Field-aware corruption of valid frames.
//!
//! Mutations are biased toward the places parsers actually branch on:
//! length and count fields (IHL, IPv4 total length, UDP length, TCP data
//! offset, MQTT remaining-length varints, Modbus length, CoAP option
//! nibbles, ZWire payload length), with plain bit flips, truncation and
//! region duplication layered on top.

use rand::prelude::*;

/// Byte offsets where the standard encapsulation keeps its length, count
/// and offset fields (Ethernet II, no VLAN): IPv4 ver/IHL (14), total
/// length (16–17) / IPv6 payload length (18–19), fragment word (20–21),
/// protocol (23), UDP length (38–39), TCP data offset (46), and the first
/// application-layer bytes (54+) where MQTT varints, Modbus lengths, DNS
/// counts and CoAP option nibbles live. VLAN-tagged frames shift by 4,
/// which the random stomp arm covers.
pub const LENGTH_FIELD_OFFSETS: &[usize] = &[
    14, 16, 17, 18, 19, 20, 21, 23, 24, 38, 39, 46, 54, 55, 56, 57, 58, 59, 60,
];

/// Values that sit on parser decision boundaries: zero, one, nibble and
/// sign edges, the IPv4 `0x45` ver/IHL byte and all-ones.
pub const EXTREME_BYTES: &[u8] = &[
    0x00, 0x01, 0x04, 0x0f, 0x3f, 0x40, 0x45, 0x50, 0x7f, 0x80, 0xc0, 0xf0, 0xff,
];

/// Applies 1–3 random structure-aware mutations to `frame` in place.
///
/// The frame may end up shorter (truncation, deletion) or longer
/// (duplication); it is never left empty unless it started empty.
pub fn mutate<R: Rng>(frame: &mut Vec<u8>, rng: &mut R) {
    for _ in 0..rng.gen_range(1..=3) {
        if frame.is_empty() {
            return;
        }
        match rng.gen_range(0..6) {
            // Lie in a length/count/offset field.
            0 => {
                let &at = LENGTH_FIELD_OFFSETS
                    .choose(rng)
                    .expect("offset list is non-empty");
                if at < frame.len() {
                    frame[at] = *EXTREME_BYTES.choose(rng).expect("byte list is non-empty");
                }
            }
            // Truncate at an arbitrary offset.
            1 => {
                let at = rng.gen_range(0..frame.len());
                frame.truncate(at);
            }
            // Flip one bit anywhere.
            2 => {
                let at = rng.gen_range(0..frame.len());
                frame[at] ^= 1 << rng.gen_range(0..8);
            }
            // Stomp a random byte with a random value.
            3 => {
                let at = rng.gen_range(0..frame.len());
                frame[at] = rng.gen();
            }
            // Delete a short region (shifts every later field).
            4 => {
                let at = rng.gen_range(0..frame.len());
                let len = rng.gen_range(1..=8).min(frame.len() - at);
                frame.drain(at..at + len);
            }
            // Duplicate a short region (nested-option / repeated-TLV abuse).
            _ => {
                let at = rng.gen_range(0..frame.len());
                let len = rng.gen_range(1..=8).min(frame.len() - at);
                let chunk: Vec<u8> = frame[at..at + len].to_vec();
                frame.splice(at..at, chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let base: Vec<u8> = (0..120).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        mutate(&mut a, &mut StdRng::seed_from_u64(42));
        mutate(&mut b, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let mut c = base;
        mutate(&mut c, &mut StdRng::seed_from_u64(43));
        // Different seeds almost surely differ; equality would mean the rng
        // is being ignored.
        assert_ne!(a, c);
    }
}
