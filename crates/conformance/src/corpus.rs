//! Hex repro corpus: minimal failing inputs persisted as text files under
//! `tests/corpus/` and replayed as pinned regressions.
//!
//! File format: `#`-prefixed comment lines (what the repro demonstrates),
//! then hex digits in any layout — whitespace is ignored.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Renders bytes as commented hex, 32 bytes per line.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 16);
    for chunk in bytes.chunks(32) {
        for b in chunk {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

/// Parses a corpus file body: `#` comment lines are skipped, whitespace
/// is ignored, the rest must be an even number of hex digits.
///
/// # Errors
///
/// Returns a description of the first non-hex character or an odd digit
/// count.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let mut nibbles = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for ch in line.chars().filter(|c| !c.is_whitespace()) {
            let n = ch
                .to_digit(16)
                .ok_or_else(|| format!("non-hex character {ch:?}"))?;
            nibbles.push(n as u8);
        }
    }
    if nibbles.len() % 2 != 0 {
        return Err(format!("odd number of hex digits ({})", nibbles.len()));
    }
    Ok(nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Loads every `*.hex` file in `dir`, sorted by file name.
///
/// # Errors
///
/// Returns I/O errors from the directory walk, or an
/// [`io::ErrorKind::InvalidData`] error naming the file for malformed hex.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("hex") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_owned();
        let bytes = from_hex(&fs::read_to_string(&path)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        out.push((name, bytes));
    }
    out.sort();
    Ok(out)
}

/// Content fingerprint (FNV-1a) used to give repro files stable names.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Writes a repro as `<dir>/<kind>-<fingerprint>.hex` with `comment`
/// lines explaining what it pins, returning the path. Idempotent for
/// identical bytes.
///
/// # Errors
///
/// Returns I/O errors from directory creation or the file write.
pub fn write_repro(dir: &Path, kind: &str, comment: &str, bytes: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{kind}-{:016x}.hex", fingerprint(bytes)));
    let mut body = String::new();
    for line in comment.lines() {
        body.push_str("# ");
        body.push_str(line);
        body.push('\n');
    }
    body.push_str(&to_hex(bytes));
    fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_with_comments() {
        let bytes: Vec<u8> = (0..=255).collect();
        let text = format!("# a comment\n\n{}", to_hex(&bytes));
        assert_eq!(from_hex(&text).unwrap(), bytes);
    }

    #[test]
    fn malformed_hex_is_rejected() {
        assert!(from_hex("zz").is_err());
        assert!(from_hex("abc").is_err());
        assert_eq!(from_hex("# only comments\n").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }
}
