//! Adversarial match-action tables and probe keys for differential
//! testing of the compiled lookup engines.
//!
//! Generation deliberately straddles the tuple-space fallback threshold in
//! `p4guard-dataplane`'s compiler (≥ 16 entries with more distinct masks
//! than half the entry count falls back to a scan engine), piles up
//! duplicate priorities, uses maximum-width keys, overlapping LPM
//! prefixes and degenerate ranges — the shapes where a fast engine and
//! the reference scan are most likely to disagree.

use p4guard_dataplane::action::Action;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
use rand::prelude::*;

/// A generated table plus probe keys biased toward its entries.
pub struct AdversarialTable {
    /// The table under test (reference semantics via `Table::peek`).
    pub table: Table,
    /// Probe keys: per-entry hits, near-miss bit flips and uniform noise.
    pub probes: Vec<Vec<u8>>,
}

fn rand_action<R: Rng>(rng: &mut R) -> Action {
    match rng.gen_range(0..5) {
        0 => Action::Drop,
        1 => Action::Forward(rng.gen_range(0..8)),
        2 => Action::Mirror(rng.gen_range(0..8)),
        3 => Action::Count(rng.gen_range(0..4)),
        _ => Action::NoOp,
    }
}

fn rand_bytes<R: Rng>(rng: &mut R, width: usize) -> Vec<u8> {
    let mut v = vec![0u8; width];
    rng.fill(v.as_mut_slice());
    v
}

/// Sparse masks keep accidental overlap between entries likely.
fn rand_mask<R: Rng>(rng: &mut R, width: usize) -> Vec<u8> {
    (0..width)
        .map(|_| match rng.gen_range(0..4) {
            0 => 0xff,
            1 => 0xf0,
            2 => 0x0f,
            _ => rng.gen(),
        })
        .collect()
}

fn probes_for<R: Rng>(rng: &mut R, table: &Table) -> Vec<Vec<u8>> {
    let width = table.key().width();
    let mut probes = Vec::new();
    for entry in table.entries() {
        // A key that satisfies the entry, with unconstrained bits random.
        let mut hit = match &entry.spec {
            MatchSpec::Exact(v) => v.clone(),
            MatchSpec::Ternary { value, mask } => value
                .iter()
                .zip(mask)
                .map(|(&v, &m)| (v & m) | (rng.gen::<u8>() & !m))
                .collect(),
            MatchSpec::Lpm { value, prefix_len } => {
                let mut key = rand_bytes(rng, width);
                for (i, k) in key.iter_mut().enumerate() {
                    let bits = prefix_len.saturating_sub(i * 8).min(8);
                    if bits > 0 {
                        let m = 0xffu8 << (8 - bits);
                        *k = (value[i] & m) | (*k & !m);
                    }
                }
                key
            }
            MatchSpec::Range { lo, hi } => lo
                .iter()
                .zip(hi)
                .map(|(&l, &h)| rng.gen_range(l..=h))
                .collect(),
        };
        probes.push(hit.clone());
        // A near-miss one bit away from the hit.
        let at = rng.gen_range(0..width);
        hit[at] ^= 1 << rng.gen_range(0..8);
        probes.push(hit);
    }
    for _ in 0..16 {
        probes.push(rand_bytes(rng, width));
    }
    probes
}

fn table_with<R: Rng>(rng: &mut R, kind: MatchKind, width: usize, specs: Vec<MatchSpec>) -> Table {
    let mut table = Table::new(
        "fuzz",
        kind,
        KeyLayout::window(width),
        specs.len() + 8,
        Action::NoOp,
    );
    for spec in specs {
        // Duplicate priorities on purpose: ties must resolve identically
        // (stable insertion order) in every engine.
        let priority = rng.gen_range(0..4);
        let action = rand_action(rng);
        table
            .insert(spec, action, priority)
            .expect("generated spec must be valid for its table");
    }
    table
}

/// Builds the `index`-th adversarial table.
///
/// The first indices are fixed archetypes that guarantee every compiled
/// strategy (`exact-hash`, `lpm-buckets`, `range-index`, `tuple-space`,
/// `scan`) appears in a run; later indices are fully randomized.
pub fn adversarial_table<R: Rng>(rng: &mut R, index: usize) -> AdversarialTable {
    let table = match index {
        // Exact, with duplicate values (first insert must win ties).
        0 => {
            let mut values: Vec<Vec<u8>> = (0..12).map(|_| rand_bytes(rng, 4)).collect();
            values.push(values[0].clone());
            table_with(
                rng,
                MatchKind::Exact,
                4,
                values.into_iter().map(MatchSpec::Exact).collect(),
            )
        }
        // Overlapping LPM prefixes, including the match-all zero prefix.
        1 => {
            let base = rand_bytes(rng, 4);
            let specs = [0usize, 3, 8, 11, 16, 21, 27, 32]
                .iter()
                .map(|&prefix_len| {
                    let mut value = base.clone();
                    for byte in value.iter_mut().skip(prefix_len.div_ceil(8)) {
                        *byte = rng.gen();
                    }
                    MatchSpec::Lpm { value, prefix_len }
                })
                .collect();
            table_with(rng, MatchKind::Lpm, 4, specs)
        }
        // Ranges: degenerate (lo == hi), full-byte and narrow spans.
        2 => {
            let specs = (0..10)
                .map(|i| {
                    let (lo, hi): (Vec<u8>, Vec<u8>) = (0..2)
                        .map(|_| match i % 3 {
                            0 => {
                                let v = rng.gen::<u8>();
                                (v, v)
                            }
                            1 => (0, 255),
                            _ => {
                                let l = rng.gen_range(0..200u8);
                                (l, l + rng.gen_range(0..=55))
                            }
                        })
                        .unzip();
                    MatchSpec::Range { lo, hi }
                })
                .collect();
            table_with(rng, MatchKind::Range, 2, specs)
        }
        // 16 ternary entries over 4 masks: stays on the tuple-space engine.
        3 => {
            let masks: Vec<Vec<u8>> = (0..4).map(|_| rand_mask(rng, 2)).collect();
            let specs = (0..16)
                .map(|i| MatchSpec::Ternary {
                    value: rand_bytes(rng, 2),
                    mask: masks[i % masks.len()].clone(),
                })
                .collect();
            table_with(rng, MatchKind::Ternary, 2, specs)
        }
        // 16 ternary entries with 16 distinct masks: mask diversity above
        // half the entry count forces the scan fallback.
        4 => {
            let specs = (0..16u8)
                .map(|i| MatchSpec::Ternary {
                    value: rand_bytes(rng, 2),
                    mask: vec![i | 0x10, rng.gen()],
                })
                .collect();
            table_with(rng, MatchKind::Ternary, 2, specs)
        }
        // Maximum-width ternary keys.
        5 => {
            let specs = (0..8)
                .map(|_| MatchSpec::Ternary {
                    value: rand_bytes(rng, 16),
                    mask: rand_mask(rng, 16),
                })
                .collect();
            table_with(rng, MatchKind::Ternary, 16, specs)
        }
        // Fully random: any kind, any width, entry count straddling the
        // tuple-space threshold.
        _ => {
            let width = *[1usize, 2, 4, 8]
                .choose(rng)
                .expect("width list is non-empty");
            match rng.gen_range(0..4) {
                0 => {
                    let specs = (0..rng.gen_range(1..=20))
                        .map(|_| MatchSpec::Exact(rand_bytes(rng, width)))
                        .collect();
                    table_with(rng, MatchKind::Exact, width, specs)
                }
                1 => {
                    let specs = (0..rng.gen_range(1..=12))
                        .map(|_| MatchSpec::Lpm {
                            value: rand_bytes(rng, width),
                            prefix_len: rng.gen_range(0..=width * 8),
                        })
                        .collect();
                    table_with(rng, MatchKind::Lpm, width, specs)
                }
                2 => {
                    let specs = (0..rng.gen_range(1..=12))
                        .map(|_| {
                            let (lo, hi): (Vec<u8>, Vec<u8>) = (0..width)
                                .map(|_| {
                                    let l: u8 = rng.gen();
                                    (l, rng.gen_range(l..=255))
                                })
                                .unzip();
                            MatchSpec::Range { lo, hi }
                        })
                        .collect();
                    table_with(rng, MatchKind::Range, width, specs)
                }
                _ => {
                    let entries = rng.gen_range(8..=24);
                    let distinct_masks = rng.gen_range(1..=entries);
                    let masks: Vec<Vec<u8>> =
                        (0..distinct_masks).map(|_| rand_mask(rng, width)).collect();
                    let specs = (0..entries)
                        .map(|i| MatchSpec::Ternary {
                            value: rand_bytes(rng, width),
                            mask: masks[i % masks.len()].clone(),
                        })
                        .collect();
                    table_with(rng, MatchKind::Ternary, width, specs)
                }
            }
        }
    };
    let probes = probes_for(rng, &table);
    AdversarialTable { table, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_dataplane::CompiledTable;

    #[test]
    fn archetypes_cover_every_compiled_strategy() {
        let mut rng = StdRng::seed_from_u64(11);
        let strategies: Vec<&str> = (0..6)
            .map(|i| CompiledTable::compile(&adversarial_table(&mut rng, i).table).strategy())
            .collect();
        for want in [
            "exact-hash",
            "lpm-buckets",
            "range-index",
            "tuple-space",
            "scan",
        ] {
            assert!(
                strategies.contains(&want),
                "archetypes produced {strategies:?}, missing {want}"
            );
        }
    }
}
