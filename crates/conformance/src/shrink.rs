//! Greedy shrinking of failing frames to minimal repros.
//!
//! Two passes, repeated to fixpoint (bounded): remove byte chunks of
//! halving sizes while the predicate still fails, then zero individual
//! bytes so the surviving repro highlights exactly which bytes matter.

/// Shrinks `frame` to a (locally) minimal input for which `still_fails`
/// returns `true`.
///
/// `still_fails(&frame)` must be `true` on entry; the result is the
/// smallest frame the greedy passes could reach, never empty growth —
/// only removals and zeroing are attempted.
pub fn shrink_frame(frame: &[u8], still_fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    debug_assert!(still_fails(frame), "shrink needs a failing input");
    let mut best = frame.to_vec();
    // Chunk removal to fixpoint.
    loop {
        let mut progressed = false;
        let mut chunk = best.len().max(1);
        while chunk >= 1 {
            let mut at = 0;
            while at < best.len() {
                let end = (at + chunk).min(best.len());
                let mut candidate = Vec::with_capacity(best.len() - (end - at));
                candidate.extend_from_slice(&best[..at]);
                candidate.extend_from_slice(&best[end..]);
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                    // Retry at the same offset: the next chunk shifted in.
                } else {
                    at = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if !progressed {
            break;
        }
    }
    // Zero bytes that are not load-bearing.
    for i in 0..best.len() {
        if best[i] == 0 {
            continue;
        }
        let saved = best[i];
        best[i] = 0;
        if !still_fails(&best) {
            best[i] = saved;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_subsequence() {
        // Failing iff the frame contains the byte 0xbb.
        let frame: Vec<u8> = (0..64).map(|i| if i == 40 { 0xbb } else { i }).collect();
        let small = shrink_frame(&frame, |f| f.contains(&0xbb));
        assert_eq!(small, vec![0xbb]);
    }

    #[test]
    fn zeroes_non_load_bearing_bytes() {
        // Failing iff byte 0 is 0x10 and the frame is at least 3 long.
        let small = shrink_frame(&[0x10, 0xaa, 0xcc, 0xdd], |f| f.len() >= 3 && f[0] == 0x10);
        assert_eq!(small, vec![0x10, 0, 0]);
    }
}
