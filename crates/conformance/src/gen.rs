//! Structure-aware generation of *valid* frames, one generator per
//! protocol family the `p4guard-packet` parsers understand.
//!
//! Valid frames matter more than random bytes: the deep codec paths
//! (MQTT varints, CoAP option nibbles, DNS labels, nested IP options)
//! only execute when the outer layers hold up, so mutation starts from
//! well-formed inputs and corrupts them surgically (see [`crate::mutate`]).

use p4guard_packet::addr::MacAddr;
use p4guard_packet::arp::ArpHeader;
use p4guard_packet::coap::CoapMessage;
use p4guard_packet::dns::DnsMessage;
use p4guard_packet::ethernet::VlanTag;
use p4guard_packet::icmp::IcmpHeader;
use p4guard_packet::modbus::ModbusAdu;
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::packet::PacketBuilder;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::zwire::{ZWireFrame, ZWireType};
use p4guard_packet::{coap, dns, modbus, mqtt};
use rand::prelude::*;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A protocol family with its own frame generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// MQTT over TCP/1883.
    Mqtt,
    /// CoAP over UDP/5683.
    Coap,
    /// DNS over UDP/53.
    Dns,
    /// Modbus over TCP/502.
    Modbus,
    /// Plain TCP with an unrecognized application payload.
    Tcp,
    /// Plain UDP with an unrecognized application payload.
    Udp,
    /// ICMP echo traffic.
    Icmp,
    /// ARP requests.
    Arp,
    /// The non-IP ZWire protocol.
    ZWire,
    /// UDP over IPv6.
    Ipv6Udp,
}

impl Family {
    /// Every family, in smoke-test order.
    pub const ALL: [Family; 10] = [
        Family::Mqtt,
        Family::Coap,
        Family::Dns,
        Family::Modbus,
        Family::Tcp,
        Family::Udp,
        Family::Icmp,
        Family::Arp,
        Family::ZWire,
        Family::Ipv6Udp,
    ];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Mqtt => "mqtt",
            Family::Coap => "coap",
            Family::Dns => "dns",
            Family::Modbus => "modbus",
            Family::Tcp => "tcp",
            Family::Udp => "udp",
            Family::Icmp => "icmp",
            Family::Arp => "arp",
            Family::ZWire => "zwire",
            Family::Ipv6Udp => "ipv6-udp",
        };
        write!(f, "{s}")
    }
}

fn builder<R: Rng>(rng: &mut R) -> PacketBuilder {
    let mut b = PacketBuilder::new(
        MacAddr::from_id(rng.gen_range(1..64)),
        MacAddr::from_id(rng.gen_range(1..64)),
    );
    if rng.gen_bool(0.15) {
        b.vlan(VlanTag::new(rng.gen_range(1..4095)));
    }
    b.ttl(rng.gen_range(1..=255));
    b.ip_id(rng.gen());
    if rng.gen_bool(0.2) {
        b.dscp_ecn(rng.gen());
    }
    b
}

fn ips<R: Rng>(rng: &mut R) -> (Ipv4Addr, Ipv4Addr) {
    (
        Ipv4Addr::new(10, 0, rng.gen(), rng.gen_range(1..=254)),
        Ipv4Addr::new(192, 168, rng.gen(), rng.gen_range(1..=254)),
    )
}

fn payload<R: Rng>(rng: &mut R, max: usize) -> Vec<u8> {
    let mut v = vec![0u8; rng.gen_range(0..=max)];
    rng.fill(v.as_mut_slice());
    v
}

fn label<R: Rng>(rng: &mut R) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    let len = rng.gen_range(1..=12);
    (0..len)
        .map(|_| *ALPHA.choose(rng).expect("alphabet is non-empty") as char)
        .collect()
}

fn mqtt_packet<R: Rng>(rng: &mut R) -> MqttPacket {
    match rng.gen_range(0..9) {
        0 => MqttPacket::Connect {
            keep_alive: rng.gen(),
            client_id: label(rng),
            connect_flags: rng.gen::<u8>() & 0xfe,
        },
        1 => MqttPacket::ConnAck {
            session_present: rng.gen(),
            return_code: rng.gen_range(0..6),
        },
        2 => {
            let qos = rng.gen_range(0..=2);
            MqttPacket::Publish {
                topic: format!("{}/{}", label(rng), label(rng)),
                packet_id: (qos > 0).then(|| rng.gen()),
                qos,
                retain: rng.gen(),
                payload: payload(rng, 48),
            }
        }
        3 => MqttPacket::PubAck {
            packet_id: rng.gen(),
        },
        4 => MqttPacket::Subscribe {
            packet_id: rng.gen(),
            topic: format!("{}/#", label(rng)),
            qos: rng.gen_range(0..=2),
        },
        5 => MqttPacket::SubAck {
            packet_id: rng.gen(),
            return_code: rng.gen_range(0..3),
        },
        6 => MqttPacket::PingReq,
        7 => MqttPacket::Disconnect,
        _ => MqttPacket::PingResp,
    }
}

/// Generates one valid frame of the given family.
///
/// The result always parses cleanly through [`p4guard_packet::parse`] and
/// classifies as the family's [`p4guard_packet::ProtocolTag`].
pub fn valid_frame<R: Rng>(family: Family, rng: &mut R) -> Vec<u8> {
    let b = builder(rng);
    let (src, dst) = ips(rng);
    let frame = match family {
        Family::Mqtt => {
            let tcp = TcpHeader::new(
                rng.gen_range(1024..=65535),
                mqtt::PORT,
                rng.gen(),
                rng.gen(),
                TcpFlags::PSH | TcpFlags::ACK,
            );
            b.tcp(src, dst, tcp, &mqtt_packet(rng).encode())
        }
        Family::Coap => {
            let token = payload(rng, 8);
            let msg = if rng.gen_bool(0.5) {
                let parts: Vec<String> = (0..rng.gen_range(1..=3)).map(|_| label(rng)).collect();
                let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
                CoapMessage::get(rng.gen(), token, &refs)
            } else {
                CoapMessage::content_response(rng.gen(), token, payload(rng, 32))
            };
            b.udp(
                src,
                dst,
                rng.gen_range(1024..=65535),
                coap::PORT,
                &msg.encode(),
            )
        }
        Family::Dns => {
            let mut msg = DnsMessage::query(
                rng.gen(),
                &(0..rng.gen_range(1..=4))
                    .map(|_| label(rng))
                    .collect::<Vec<_>>()
                    .join("."),
            );
            if rng.gen_bool(0.3) {
                msg.flags = DnsMessage::FLAGS_RESPONSE;
                msg.ancount = rng.gen_range(1..=3);
                msg.answer_bytes = payload(rng, 48);
            }
            b.udp(
                src,
                dst,
                rng.gen_range(1024..=65535),
                dns::PORT,
                &msg.encode(),
            )
        }
        Family::Modbus => {
            let adu = if rng.gen_bool(0.5) {
                ModbusAdu::read_holding_registers(
                    rng.gen(),
                    rng.gen(),
                    rng.gen(),
                    rng.gen_range(1..=125),
                )
            } else {
                ModbusAdu::write_single_coil(rng.gen(), rng.gen(), rng.gen(), rng.gen())
            };
            let tcp = TcpHeader::new(
                rng.gen_range(1024..=65535),
                modbus::PORT,
                rng.gen(),
                rng.gen(),
                TcpFlags::PSH | TcpFlags::ACK,
            );
            b.tcp(src, dst, tcp, &adu.encode())
        }
        Family::Tcp => {
            let flags = [
                TcpFlags::SYN,
                TcpFlags::SYN | TcpFlags::ACK,
                TcpFlags::ACK,
                TcpFlags::FIN | TcpFlags::ACK,
                TcpFlags::RST,
                TcpFlags::PSH | TcpFlags::ACK | TcpFlags::URG,
            ];
            let tcp = TcpHeader::new(
                rng.gen_range(1024..=65535),
                rng.gen_range(1..1024),
                rng.gen(),
                rng.gen(),
                *flags.choose(rng).expect("flag set is non-empty"),
            );
            b.tcp(src, dst, tcp, &payload(rng, 64))
        }
        Family::Udp => b.udp(
            src,
            dst,
            rng.gen_range(1024..=65535),
            rng.gen_range(1..1024),
            &payload(rng, 64),
        ),
        Family::Icmp => b.icmp(
            src,
            dst,
            IcmpHeader::echo_request(rng.gen(), rng.gen()),
            &payload(rng, 32),
        ),
        Family::Arp => b.arp(&ArpHeader::request(
            MacAddr::from_id(rng.gen_range(1..64)),
            src,
            dst,
        )),
        Family::ZWire => {
            let types = [
                ZWireType::Beacon,
                ZWireType::Data,
                ZWireType::Command,
                ZWireType::Ack,
                ZWireType::Pair,
            ];
            b.zwire(&ZWireFrame::new(
                *types.choose(rng).expect("type set is non-empty"),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                payload(rng, 40),
            ))
        }
        Family::Ipv6Udp => {
            let v6 = |rng: &mut R| {
                Ipv6Addr::new(0xfd00, 0, 0, 0, rng.gen(), rng.gen(), rng.gen(), rng.gen())
            };
            let (s6, d6) = (v6(rng), v6(rng));
            b.udp6(
                s6,
                d6,
                rng.gen_range(1024..=65535),
                if rng.gen_bool(0.3) {
                    coap::PORT
                } else {
                    rng.gen_range(1..1024)
                },
                &payload(rng, 48),
            )
        }
    };
    frame.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_packet::parse;

    #[test]
    fn every_family_generates_parsable_frames() {
        let mut rng = StdRng::seed_from_u64(7);
        for family in Family::ALL {
            for _ in 0..50 {
                let frame = valid_frame(family, &mut rng);
                let parsed = parse(&frame)
                    .unwrap_or_else(|e| panic!("{family} generator emitted unparsable frame: {e}"));
                drop(parsed);
            }
        }
    }
}
