//! # p4guard-conformance
//!
//! Deterministic, structure-aware conformance fuzzer for the `p4guard`
//! pipeline, runnable as ordinary `cargo test`.
//!
//! Three input families drive three differential oracles:
//!
//! * **Frames** ([`gen`] + [`mutate`]): valid protocol frames for every
//!   parser in `p4guard-packet`, then field-aware corruption — truncation
//!   at every byte offset, length-field lies, bit flips, region
//!   duplication. The oracle ([`oracle::check_frame`]) demands that
//!   [`p4guard_packet::parse`] never panics and that every layer struct it
//!   produces is a `decode → encode → decode` fixpoint.
//! * **Tables** ([`tables`]): adversarial rulesets — ternary mask
//!   diversity straddling the tuple-space fallback threshold, duplicate
//!   priorities, wide keys, overlapping LPM prefixes, degenerate ranges.
//!   The oracle compares [`p4guard_dataplane::CompiledTable`] verdicts
//!   against the reference priority scan (`Table::peek`) on every probe
//!   key.
//! * **Gateway fault schedules** (`tests/gateway_faults.rs`): mid-replay
//!   hot swaps, queue-overload bursts and wrong-width ruleset installs.
//!   The oracle demands that drained-gateway totals equal a single-switch
//!   replay and that no frame is ever lost unaccounted.
//! * **Adaptation rollback schedules** (`tests/adapt_rollback.rs`): a
//!   poisoned candidate trips the canary guardrail mid-rollout; the
//!   oracle demands that rollback restores the exact prior version —
//!   shard version numbers, [`p4guard_rules::RuleSet::diff`] emptiness
//!   against the baseline, and verdict-for-verdict agreement with a
//!   single switch replaying the baseline rules.
//!
//! Failures shrink ([`shrink`]) to minimal hex repros persisted under
//! `tests/corpus/` ([`corpus`]), which `tests/corpus_replay.rs` replays
//! forever after as pinned regressions. See `DESIGN.md` § "Conformance
//! harness" for the full contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;
pub mod tables;

pub use gen::Family;
pub use oracle::Failure;
