//! Multi-layer perceptron classifier.

use crate::activation::{softmax_rows, Activation};
use crate::layer::Dense;
use crate::loss::softmax_cross_entropy;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture description for an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of input features.
    pub input_dim: usize,
    /// Sizes of hidden layers, in order.
    pub hidden: Vec<usize>,
    /// Number of output classes (softmax logits).
    pub num_classes: usize,
    /// Hidden-layer activation.
    pub activation: Activation,
    /// Dropout probability applied after each hidden layer (0 disables).
    pub dropout: f32,
    /// RNG seed for weight initialization and dropout masks.
    pub seed: u64,
}

impl MlpConfig {
    /// A two-hidden-layer ReLU classifier, the default architecture of the
    /// paper's detection networks.
    pub fn classifier(input_dim: usize, num_classes: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: vec![64, 32],
            num_classes,
            activation: Activation::Relu,
            dropout: 0.0,
            seed: 0x9e3779b9,
        }
    }
}

/// A feed-forward softmax classifier trained with backprop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    config: MlpConfig,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl Mlp {
    /// Builds a network from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `num_classes` is zero.
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.num_classes > 0, "num_classes must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.hidden.len() + 1);
        let mut prev = config.input_dim;
        for &h in &config.hidden {
            let mut layer = Dense::new(prev, h, config.activation, &mut rng);
            if config.dropout > 0.0 {
                layer.set_dropout(config.dropout);
            }
            layers.push(layer);
            prev = h;
        }
        layers.push(Dense::new(
            prev,
            config.num_classes,
            Activation::Linear,
            &mut rng,
        ));
        Mlp {
            layers,
            config,
            rng,
        }
    }

    /// The network's configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Borrows the layers (first-layer weights feed the weight-magnitude
    /// field-selection baseline).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Inference forward pass producing raw logits.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        let mut a = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            a = layer.forward(&a);
        }
        a
    }

    /// Class probabilities (`batch × classes`).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.logits(x))
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.logits(x);
        (0..p.rows())
            .map(|r| {
                p.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Runs one training step on a minibatch, returning the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes or labels are inconsistent with the configuration.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let logits = self.forward_train(x);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        self.backward(grad);
        self.apply_grads(optimizer);
        loss
    }

    /// Runs one *autoencoder* training step: the network reconstructs its
    /// input under mean-squared error (`num_classes` acts as the output
    /// width and must equal `input_dim`). Returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if the output width differs from the input width.
    pub fn train_batch_reconstruct(&mut self, x: &Matrix, optimizer: &mut dyn Optimizer) -> f32 {
        assert_eq!(
            self.config.num_classes, self.config.input_dim,
            "autoencoder output width must equal input width"
        );
        let output = self.forward_train(x);
        let (loss, grad) = crate::loss::mse(&output, x);
        self.backward(grad);
        self.apply_grads(optimizer);
        loss
    }

    /// Per-sample reconstruction error (mean squared error per feature),
    /// the anomaly score of an autoencoder.
    ///
    /// # Panics
    ///
    /// Panics if the output width differs from the input width.
    pub fn reconstruction_errors(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(
            self.config.num_classes, self.config.input_dim,
            "autoencoder output width must equal input width"
        );
        let output = self.logits(x);
        (0..x.rows())
            .map(|r| {
                let xi = x.row(r);
                let oi = output.row(r);
                xi.iter()
                    .zip(oi)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f32>()
                    / xi.len() as f32
            })
            .collect()
    }

    fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &mut self.layers {
            a = layer.forward_train(&a, &mut self.rng);
        }
        a
    }

    fn backward(&mut self, grad_logits: Matrix) -> Matrix {
        let mut grad = grad_logits;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(grad);
        }
        grad
    }

    fn apply_grads(&mut self, optimizer: &mut dyn Optimizer) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.apply_grads(i * 2, |slot, param, grad| optimizer.step(slot, param, grad));
        }
        optimizer.next_step();
    }

    /// Gradient of the summed logit of `class` with respect to the inputs,
    /// per sample (`batch × input_dim`). Weights are untouched. This is the
    /// saliency signal stage 1 ranks byte positions with.
    pub fn input_gradient(&mut self, x: &Matrix, class: usize) -> Matrix {
        assert!(class < self.config.num_classes, "class out of range");
        // Dropout must not distort attribution, and the pass must leave the
        // model untouched: run a cache-building forward with dropout forced
        // off, backprop a one-hot seed, then restore the saved layers.
        let saved: Vec<Dense> = self.layers.clone();
        for layer in &mut self.layers {
            layer.set_dropout(0.0);
        }
        let logits = self.forward_train(x);
        let mut seed = Matrix::zeros(logits.rows(), logits.cols());
        for r in 0..seed.rows() {
            seed.set(r, class, 1.0);
        }
        let grad_input = self.backward(seed);
        // Restore weights untouched but discard accumulated grads/caches and
        // restore dropout configuration.
        self.layers = saved;
        for layer in &mut self.layers {
            layer.clear_state();
        }
        grad_input
    }

    /// Serializes the model to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Restores a model from [`Mlp::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON does not describe a model.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Convenience: a logistic-regression classifier is an [`Mlp`] with no
/// hidden layers.
pub fn logistic_regression(input_dim: usize, num_classes: usize, seed: u64) -> Mlp {
    Mlp::new(MlpConfig {
        input_dim,
        hidden: vec![],
        num_classes,
        activation: Activation::Linear,
        dropout: 0.0,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::Rng;

    /// A linearly-separable toy problem: class = (x0 > x1).
    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen::<f32>());
        let labels = (0..n)
            .map(|r| usize::from(x.get(r, 0) > x.get(r, 1)))
            .collect();
        (x, labels)
    }

    #[test]
    fn learns_linearly_separable_problem() {
        let (x, y) = toy_data(256, 1);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            num_classes: 2,
            activation: Activation::Relu,
            dropout: 0.0,
            seed: 42,
        });
        let mut opt = Adam::new(0.01);
        let mut last_loss = f32::INFINITY;
        for _ in 0..200 {
            last_loss = mlp.train_batch(&x, &y, &mut opt);
        }
        assert!(last_loss < 0.1, "loss = {last_loss}");
        let preds = mlp.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct as f32 / y.len() as f32 > 0.95);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mlp = Mlp::new(MlpConfig::classifier(4, 3));
        let x = Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1);
        let p = mlp.predict_proba(&x);
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn same_seed_same_predictions() {
        let a = Mlp::new(MlpConfig::classifier(4, 2));
        let b = Mlp::new(MlpConfig::classifier(4, 2));
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.05);
        assert_eq!(a.logits(&x).data(), b.logits(&x).data());
    }

    #[test]
    fn input_gradient_finds_the_informative_feature() {
        // Class depends only on feature 0; the saliency of feature 0 must
        // dominate features 1..4 after training.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 256;
        let x = Matrix::from_fn(n, 4, |_, _| rng.gen::<f32>());
        let y: Vec<usize> = (0..n).map(|r| usize::from(x.get(r, 0) > 0.5)).collect();
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![16],
            num_classes: 2,
            activation: Activation::Tanh,
            dropout: 0.0,
            seed: 3,
        });
        let mut opt = Adam::new(0.02);
        for _ in 0..300 {
            mlp.train_batch(&x, &y, &mut opt);
        }
        let grad = mlp.input_gradient(&x, 1);
        let mut importance = [0.0f32; 4];
        for r in 0..n {
            for (c, imp) in importance.iter_mut().enumerate() {
                *imp += grad.get(r, c).abs();
            }
        }
        assert!(
            importance[0] > 3.0 * importance[1]
                && importance[0] > 3.0 * importance[2]
                && importance[0] > 3.0 * importance[3],
            "importance = {importance:?}"
        );
    }

    #[test]
    fn input_gradient_does_not_change_weights() {
        let mut mlp = Mlp::new(MlpConfig::classifier(3, 2));
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1);
        let before = mlp.logits(&x);
        let _ = mlp.input_gradient(&x, 1);
        let after = mlp.logits(&x);
        assert_eq!(before.data(), after.data());
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mlp = Mlp::new(MlpConfig::classifier(4, 2));
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let json = mlp.to_json();
        let restored = Mlp::from_json(&json).unwrap();
        assert_eq!(mlp.logits(&x).data(), restored.logits(&x).data());
    }

    #[test]
    fn logistic_regression_has_single_layer() {
        let lr = logistic_regression(5, 2, 1);
        assert_eq!(lr.layers().len(), 1);
        assert_eq!(lr.parameter_count(), 5 * 2 + 2);
    }

    #[test]
    fn autoencoder_learns_identity_on_low_rank_data() {
        // Data living on a 1-D manifold inside 4-D space: x = t·[1, 2, 3, 4].
        let n = 128;
        let x = Matrix::from_fn(n, 4, |r, c| (r as f32 / n as f32) * (c + 1) as f32 * 0.2);
        let mut ae = Mlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![2],
            num_classes: 4,
            activation: Activation::Tanh,
            dropout: 0.0,
            seed: 8,
        });
        let mut opt = Adam::new(0.01);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            last = ae.train_batch_reconstruct(&x, &mut opt);
        }
        assert!(last < 0.003, "reconstruction loss {last}");
        // In-manifold points reconstruct well; off-manifold points do not.
        let errors = ae.reconstruction_errors(&x);
        let mean_in: f32 = errors.iter().sum::<f32>() / errors.len() as f32;
        let outlier = Matrix::from_vec(1, 4, vec![0.9, -0.9, 0.9, -0.9]);
        let e_out = ae.reconstruction_errors(&outlier)[0];
        assert!(e_out > 10.0 * mean_in, "in {mean_in} vs out {e_out}");
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn reconstruct_requires_square_config() {
        let mut m = Mlp::new(MlpConfig::classifier(4, 2));
        let x = Matrix::zeros(1, 4);
        let mut opt = Adam::new(0.01);
        let _ = m.train_batch_reconstruct(&x, &mut opt);
    }

    #[test]
    #[should_panic(expected = "input_dim")]
    fn zero_input_dim_panics() {
        let _ = Mlp::new(MlpConfig {
            input_dim: 0,
            hidden: vec![],
            num_classes: 2,
            activation: Activation::Relu,
            dropout: 0.0,
            seed: 0,
        });
    }
}
