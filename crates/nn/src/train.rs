//! Minibatch training loop with per-epoch history (the data behind the
//! convergence figure, F5).

use crate::data::Dataset;
use crate::matrix::Matrix;
use crate::network::Mlp;
use crate::optim::Optimizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training-loop hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// RNG seed for epoch shuffles.
    pub seed: u64,
    /// Stop early once the epoch loss drops below this value (`None`
    /// disables early stopping).
    pub early_stop_loss: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            seed: 17,
            early_stop_loss: None,
        }
    }
}

/// Loss and accuracy after one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean minibatch loss across the epoch.
    pub loss: f32,
    /// Accuracy over the full training set after the epoch.
    pub train_accuracy: f32,
}

/// Per-epoch training history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Stats for each completed epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// Loss of the final epoch, or `None` when no epoch ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.loss)
    }

    /// Accuracy of the final epoch, or `None` when no epoch ran.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.train_accuracy)
    }
}

/// Trains `model` on `dataset`, returning the per-epoch history.
///
/// # Panics
///
/// Panics if the dataset is empty, the feature dimension does not match the
/// model, or `batch_size` is zero.
pub fn train(
    model: &mut Mlp,
    dataset: &Dataset,
    optimizer: &mut dyn Optimizer,
    config: &TrainConfig,
) -> History {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    assert!(config.batch_size > 0, "batch_size must be positive");
    assert_eq!(
        dataset.feature_dim(),
        model.config().input_dim,
        "dataset feature dimension does not match the model"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = History::default();
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let x = dataset.features().select_rows(chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| dataset.labels()[i]).collect();
            loss_sum += model.train_batch(&x, &y, optimizer);
            batches += 1;
        }
        let loss = loss_sum / batches as f32;
        let train_accuracy = evaluate_accuracy(model, dataset);
        history.epochs.push(EpochStats {
            epoch,
            loss,
            train_accuracy,
        });
        if config.early_stop_loss.is_some_and(|t| loss < t) {
            break;
        }
    }
    history
}

/// Fraction of dataset samples the model classifies correctly.
pub fn evaluate_accuracy(model: &Mlp, dataset: &Dataset) -> f32 {
    if dataset.is_empty() {
        return 0.0;
    }
    let preds = predict_in_batches(model, dataset.features(), 1024);
    let correct = preds
        .iter()
        .zip(dataset.labels())
        .filter(|(a, b)| a == b)
        .count();
    correct as f32 / dataset.len() as f32
}

/// Predicts labels in fixed-size batches to bound peak memory.
pub fn predict_in_batches(model: &Mlp, features: &Matrix, batch: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(features.rows());
    let mut start = 0;
    while start < features.rows() {
        let end = (start + batch).min(features.rows());
        let indices: Vec<usize> = (start..end).collect();
        let x = features.select_rows(&indices);
        out.extend(model.predict(&x));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::MlpConfig;
    use crate::optim::Adam;

    fn xor_dataset() -> Dataset {
        // XOR with replication so minibatches see every case.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..64 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.extend_from_slice(&[a, b]);
                labels.push(usize::from((a != b) as u8 == 1));
            }
        }
        Dataset::new(Matrix::from_vec(labels.len(), 2, rows), labels)
    }

    #[test]
    fn trains_xor_to_high_accuracy() {
        let data = xor_dataset();
        let mut model = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden: vec![16],
            num_classes: 2,
            activation: Activation::Tanh,
            dropout: 0.0,
            seed: 5,
        });
        let mut opt = Adam::new(0.02);
        let history = train(
            &mut model,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 60,
                batch_size: 32,
                seed: 1,
                early_stop_loss: None,
            },
        );
        assert_eq!(history.epochs.len(), 60);
        assert!(history.final_accuracy().unwrap() > 0.98);
        // Loss must broadly decrease.
        assert!(history.epochs[0].loss > history.final_loss().unwrap());
    }

    #[test]
    fn early_stopping_truncates_history() {
        let data = xor_dataset();
        let mut model = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden: vec![16],
            num_classes: 2,
            activation: Activation::Tanh,
            dropout: 0.0,
            seed: 5,
        });
        let mut opt = Adam::new(0.02);
        let history = train(
            &mut model,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 500,
                batch_size: 32,
                seed: 1,
                early_stop_loss: Some(0.05),
            },
        );
        assert!(history.epochs.len() < 500);
        assert!(history.final_loss().unwrap() < 0.05);
    }

    #[test]
    fn predict_in_batches_matches_single_shot() {
        let data = xor_dataset();
        let model = Mlp::new(MlpConfig::classifier(2, 2));
        let batched = predict_in_batches(&model, data.features(), 7);
        let single = model.predict(data.features());
        assert_eq!(batched, single);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(Matrix::zeros(0, 2), vec![]);
        let mut model = Mlp::new(MlpConfig::classifier(2, 2));
        let mut opt = Adam::new(0.01);
        let _ = train(&mut model, &data, &mut opt, &TrainConfig::default());
    }
}
