//! Feature-importance attribution: the signal stage 1 uses to rank header
//! byte positions.

use crate::data::Dataset;
use crate::network::Mlp;

/// Mean `|gradient × input|` attribution per feature, computed for the
/// attack class over the whole dataset in batches.
///
/// The returned vector has one nonnegative score per feature; higher means
/// the feature moves the attack logit more.
///
/// # Panics
///
/// Panics if `class` is out of range for the model or the dataset feature
/// dimension does not match the model.
pub fn gradient_input_scores(model: &mut Mlp, dataset: &Dataset, class: usize) -> Vec<f32> {
    assert_eq!(
        dataset.feature_dim(),
        model.config().input_dim,
        "dataset feature dimension does not match the model"
    );
    let dim = dataset.feature_dim();
    let mut scores = vec![0.0f32; dim];
    if dataset.is_empty() {
        return scores;
    }
    let batch = 512usize;
    let mut start = 0;
    while start < dataset.len() {
        let end = (start + batch).min(dataset.len());
        let indices: Vec<usize> = (start..end).collect();
        let x = dataset.features().select_rows(&indices);
        let grad = model.input_gradient(&x, class);
        for r in 0..x.rows() {
            let g = grad.row(r);
            let v = x.row(r);
            for ((s, &gi), &vi) in scores.iter_mut().zip(g).zip(v) {
                *s += (gi * vi).abs();
            }
        }
        start = end;
    }
    let n = dataset.len() as f32;
    for s in &mut scores {
        *s /= n;
    }
    scores
}

/// Pure-gradient saliency (mean `|gradient|`), which also credits features
/// whose *current* value is zero but would flip the decision if set.
///
/// # Panics
///
/// Panics on a feature-dimension mismatch.
pub fn gradient_scores(model: &mut Mlp, dataset: &Dataset, class: usize) -> Vec<f32> {
    assert_eq!(
        dataset.feature_dim(),
        model.config().input_dim,
        "dataset feature dimension does not match the model"
    );
    let dim = dataset.feature_dim();
    let mut scores = vec![0.0f32; dim];
    if dataset.is_empty() {
        return scores;
    }
    let batch = 512usize;
    let mut start = 0;
    while start < dataset.len() {
        let end = (start + batch).min(dataset.len());
        let indices: Vec<usize> = (start..end).collect();
        let x = dataset.features().select_rows(&indices);
        let grad = model.input_gradient(&x, class);
        for r in 0..x.rows() {
            for (s, &gi) in scores.iter_mut().zip(grad.row(r)) {
                *s += gi.abs();
            }
        }
        start = end;
    }
    let n = dataset.len() as f32;
    for s in &mut scores {
        *s /= n;
    }
    scores
}

/// First-layer weight-magnitude importance: the L1 norm of each input
/// feature's outgoing weights. A cheap, data-free ablation baseline.
pub fn weight_magnitude_scores(model: &Mlp) -> Vec<f32> {
    let first = &model.layers()[0];
    let w = first.weights();
    (0..w.rows())
        .map(|r| w.row(r).iter().map(|v| v.abs()).sum())
        .collect()
}

/// Returns the indices of the `k` highest-scoring features, in descending
/// score order. Ties break toward the lower index for determinism.
pub fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::matrix::Matrix;
    use crate::network::MlpConfig;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_model_on_feature_two() -> (Mlp, Dataset) {
        // Only feature 2 is informative.
        let mut rng = StdRng::seed_from_u64(21);
        let n = 300;
        let x = Matrix::from_fn(n, 6, |_, _| rng.gen::<f32>());
        let y: Vec<usize> = (0..n).map(|r| usize::from(x.get(r, 2) > 0.5)).collect();
        let data = Dataset::new(x, y);
        let mut model = Mlp::new(MlpConfig {
            input_dim: 6,
            hidden: vec![16],
            num_classes: 2,
            activation: Activation::Tanh,
            dropout: 0.0,
            seed: 4,
        });
        let mut opt = Adam::new(0.02);
        for _ in 0..200 {
            model.train_batch(data.features(), data.labels(), &mut opt);
        }
        (model, data)
    }

    #[test]
    fn gradient_input_finds_informative_feature() {
        let (mut model, data) = trained_model_on_feature_two();
        let scores = gradient_input_scores(&mut model, &data, 1);
        let top = top_k(&scores, 1);
        assert_eq!(top, vec![2], "scores = {scores:?}");
    }

    #[test]
    fn gradient_scores_find_informative_feature() {
        let (mut model, data) = trained_model_on_feature_two();
        let scores = gradient_scores(&mut model, &data, 1);
        assert_eq!(top_k(&scores, 1), vec![2]);
    }

    #[test]
    fn weight_magnitude_finds_informative_feature() {
        let (model, _) = trained_model_on_feature_two();
        let scores = weight_magnitude_scores(&model);
        assert_eq!(scores.len(), 6);
        assert_eq!(top_k(&scores, 1), vec![2]);
    }

    #[test]
    fn top_k_breaks_ties_deterministically() {
        let scores = [1.0, 3.0, 3.0, 0.5];
        assert_eq!(top_k(&scores, 3), vec![1, 2, 0]);
        assert_eq!(top_k(&scores, 0), Vec::<usize>::new());
        assert_eq!(top_k(&scores, 10).len(), 4);
    }

    #[test]
    fn empty_dataset_gives_zero_scores() {
        let mut model = Mlp::new(MlpConfig::classifier(4, 2));
        let data = Dataset::new(Matrix::zeros(0, 4), vec![]);
        assert_eq!(gradient_input_scores(&mut model, &data, 1), vec![0.0; 4]);
    }
}
