//! # p4guard-nn
//!
//! A from-scratch, CPU-only neural-network library sized for the small MLPs
//! the `p4guard` pipeline trains over packet-header bytes: dense layers with
//! backprop, SGD/Momentum/Adam optimizers, dropout, a minibatch trainer with
//! per-epoch history, classification metrics (including ROC/AUC), and
//! saliency attribution for learned feature selection.
//!
//! The paper used a GPU deep-learning framework; this crate substitutes for
//! it because (per the reproduction brief) the Rust ML ecosystem is
//! immature, and the networks involved — a few dense layers over at most a
//! few hundred byte features — train in seconds on a CPU.
//!
//! # Examples
//!
//! Train a classifier on a toy problem:
//!
//! ```
//! use p4guard_nn::data::Dataset;
//! use p4guard_nn::matrix::Matrix;
//! use p4guard_nn::network::{Mlp, MlpConfig};
//! use p4guard_nn::optim::Adam;
//! use p4guard_nn::train::{train, TrainConfig};
//!
//! // class = x0 > 0.5, 64 samples.
//! let features = Matrix::from_fn(64, 2, |r, c| if c == 0 { (r % 10) as f32 / 10.0 } else { 0.3 });
//! let labels: Vec<usize> = (0..64).map(|r| usize::from((r % 10) as f32 / 10.0 > 0.5)).collect();
//! let data = Dataset::new(features, labels);
//!
//! let mut model = Mlp::new(MlpConfig::classifier(2, 2));
//! let mut optimizer = Adam::new(0.01);
//! let history = train(&mut model, &data, &mut optimizer, &TrainConfig::default());
//! assert!(history.final_accuracy().unwrap() > 0.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod data;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod saliency;
pub mod train;

pub use data::{Dataset, Standardizer};
pub use matrix::Matrix;
pub use metrics::{binary_metrics, BinaryMetrics, Confusion};
pub use network::{logistic_regression, Mlp, MlpConfig};
pub use optim::{Adam, Momentum, Optimizer, Sgd};
pub use train::{train, History, TrainConfig};
