//! Gradient-descent optimizers.
//!
//! Optimizers are addressed through parameter *slots*: each parameter tensor
//! (one weight matrix or bias vector) has a stable integer id, which lets
//! stateful optimizers (momentum, Adam) keep per-tensor state without the
//! layers knowing about it.

use std::collections::HashMap;

/// A gradient-descent update rule.
pub trait Optimizer {
    /// Applies one update to the parameter tensor identified by `slot`.
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]);

    /// Advances the global step counter (called once per minibatch).
    fn next_step(&mut self) {}
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _slot: usize, param: &mut [f32], grad: &[f32]) {
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.learning_rate * g;
        }
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (typically 0.9).
    pub beta: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Momentum {
    /// Creates momentum SGD.
    pub fn new(learning_rate: f32, beta: f32) -> Self {
        Momentum {
            learning_rate,
            beta,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), v) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *v = self.beta * *v + g;
            *p -= self.learning_rate * *v;
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay (typically 0.9).
    pub beta1: f32,
    /// Second-moment decay (typically 0.999).
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
    step: u64,
    moments: HashMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with standard β values.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 1,
            moments: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        let (m, v) = self
            .moments
            .entry(slot)
            .or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (((p, &g), m), v) in param
            .iter_mut()
            .zip(grad)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            *p -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn next_step(&mut self) {
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with each optimizer; all must converge.
    fn minimize(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..iters {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &grad);
            opt.next_step();
        }
        x[0]
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 100) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_converges() {
        let mut opt = Momentum::new(0.02, 0.9);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.1);
        assert!((minimize(&mut opt, 400) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[-1.0]);
        // Each slot's velocity is its own; the updates must be symmetric.
        assert!((a[0] + b[0]).abs() < 1e-7);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction the first Adam step is ≈ lr regardless of
        // gradient magnitude.
        let mut opt = Adam::new(0.5);
        let mut x = [0.0f32];
        opt.step(0, &mut x, &[1e-4]);
        assert!((x[0] + 0.5).abs() < 1e-2, "x = {}", x[0]);
    }
}
