//! Labelled datasets consumed by the trainer, and per-feature
//! standardization.

use crate::matrix::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-feature z-score standardization fitted on a training set and applied
/// to any later matrix with the same width.
///
/// Standardization matters doubly here: it conditions training, and it
/// makes gradient×input saliency compare features by *information* rather
/// than raw byte amplitude (a constant-ish opcode byte must be able to
/// outrank a full-range sequence-number byte).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits per-column mean and standard deviation. Constant columns get a
    /// unit standard deviation, so they transform to zero.
    pub fn fit(features: &Matrix) -> Self {
        let cols = features.cols();
        let rows = features.rows().max(1) as f32;
        let mut mean = vec![0.0f32; cols];
        for r in 0..features.rows() {
            for (m, &v) in mean.iter_mut().zip(features.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= rows;
        }
        let mut var = vec![0.0f32; cols];
        for r in 0..features.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(features.row(r)).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / rows).sqrt();
                if s < 1e-6 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Number of features the standardizer was fitted on.
    pub fn width(&self) -> usize {
        self.mean.len()
    }

    /// Returns a standardized copy of `features`.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the fitted width.
    pub fn transform(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.width(), "feature width mismatch");
        let mut out = features.clone();
        for r in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Fits on `features` and returns the standardized copy.
    pub fn fit_transform(features: &Matrix) -> (Self, Matrix) {
        let st = Standardizer::fit(features);
        let out = st.transform(features);
        (st, out)
    }

    /// Returns a dataset with standardized features and unchanged labels.
    pub fn transform_dataset(&self, dataset: &Dataset) -> Dataset {
        Dataset::new(
            self.transform(dataset.features()),
            dataset.labels().to_vec(),
        )
    }
}

/// A labelled dataset: a `samples × features` matrix plus integer class
/// labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    pub fn new(features: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(
            labels.len(),
            features.rows(),
            "label count {} does not match sample count {}",
            labels.len(),
            features.rows()
        );
        Dataset { features, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Borrows the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Borrows the labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct classes, computed as `max(label) + 1`.
    pub fn num_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |m| m + 1)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Builds a sub-dataset from the given sample indices (repeats allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Builds a dataset keeping only the feature columns in `columns`.
    ///
    /// # Panics
    ///
    /// Panics if any column is out of bounds.
    pub fn project_columns(&self, columns: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_cols(columns),
            labels: self.labels.clone(),
        }
    }

    /// Randomly shuffles samples in place.
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        *self = self.select(&indices);
    }

    /// Splits into `(first, second)` with `fraction` of samples in the first
    /// part, preserving order.
    pub fn split_at_fraction(&self, fraction: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize).min(self.len());
        let first: Vec<usize> = (0..cut).collect();
        let second: Vec<usize> = (cut..self.len()).collect();
        (self.select(&first), self.select(&second))
    }

    /// Downsamples the majority class so class counts differ by at most one
    /// sample per minority count, preserving sample order. Only meaningful
    /// for binary labels.
    pub fn balance_binary(&self, rng: &mut impl Rng) -> Dataset {
        let counts = self.class_counts();
        if counts.len() < 2 || counts[0] == 0 || counts[1] == 0 {
            return self.clone();
        }
        let minority = counts[0].min(counts[1]);
        let mut keep: Vec<usize> = Vec::with_capacity(minority * 2);
        for class in 0..2 {
            let mut idx: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            idx.shuffle(rng);
            idx.truncate(minority);
            keep.extend(idx);
        }
        keep.sort_unstable();
        self.select(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let features = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        Dataset::new(features, vec![0, 0, 0, 0, 1, 1])
    }

    #[test]
    fn accessors() {
        let d = dataset();
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.class_counts(), vec![4, 2]);
    }

    #[test]
    fn select_and_project() {
        let d = dataset();
        let s = d.select(&[4, 5]);
        assert_eq!(s.labels(), &[1, 1]);
        let p = d.project_columns(&[1]);
        assert_eq!(p.feature_dim(), 1);
        assert_eq!(p.features().get(0, 0), 1.0);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut d = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        d.shuffle(&mut rng);
        // Label 1 samples have first feature 8 or 10.
        for i in 0..d.len() {
            let f = d.features().get(i, 0);
            if d.labels()[i] == 1 {
                assert!(f == 8.0 || f == 10.0);
            } else {
                assert!(f < 8.0);
            }
        }
    }

    #[test]
    fn split_fraction() {
        let d = dataset();
        let (a, b) = d.split_at_fraction(0.5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn balance_binary_downsamples_majority() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let b = d.balance_binary(&mut rng);
        assert_eq!(b.class_counts(), vec![2, 2]);
    }

    #[test]
    fn balance_binary_is_noop_for_single_class() {
        let d = Dataset::new(Matrix::zeros(3, 1), vec![0, 0, 0]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(d.balance_binary(&mut rng).len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(Matrix::zeros(3, 1), vec![0]);
    }

    #[test]
    fn standardizer_zero_means_unit_stds() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 10.0, 3.0, 10.0, 5.0, 10.0, 7.0, 10.0]);
        let (st, out) = Standardizer::fit_transform(&m);
        assert_eq!(st.width(), 2);
        // Column 0 standardizes to zero mean, unit-ish std.
        let col0: Vec<f32> = (0..4).map(|r| out.get(r, 0)).collect();
        let mean: f32 = col0.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        let var: f32 = col0.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-4);
        // Constant column 1 becomes zero, not NaN.
        for r in 0..4 {
            assert_eq!(out.get(r, 1), 0.0);
        }
    }

    #[test]
    fn standardizer_transform_applies_train_statistics() {
        let train = Matrix::from_vec(2, 1, vec![0.0, 2.0]); // mean 1, std 1
        let st = Standardizer::fit(&train);
        let test = Matrix::from_vec(1, 1, vec![3.0]);
        let out = st.transform(&test);
        assert!((out.get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn standardizer_rejects_wrong_width() {
        let st = Standardizer::fit(&Matrix::zeros(2, 3));
        let _ = st.transform(&Matrix::zeros(1, 2));
    }
}
