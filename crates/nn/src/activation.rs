//! Activation functions and their derivatives.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Elementwise activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity: the layer stays affine (used for output logits).
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to `z` in place.
    pub fn apply(&self, z: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => z.map_inplace(|v| v.max(0.0)),
            Activation::Sigmoid => z.map_inplace(sigmoid),
            Activation::Tanh => z.map_inplace(f32::tanh),
        }
    }

    /// Multiplies `grad` in place by the activation derivative evaluated
    /// from the *post-activation* values `a` (all supported activations
    /// admit this form).
    pub fn backprop(&self, grad: &mut Matrix, a: &Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for (g, &v) in grad.data_mut().iter_mut().zip(a.data()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &v) in grad.data_mut().iter_mut().zip(a.data()) {
                    *g *= v * (1.0 - v);
                }
            }
            Activation::Tanh => {
                for (g, &v) in grad.data_mut().iter_mut().zip(a.data()) {
                    *g *= 1.0 - v * v;
                }
            }
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise softmax, numerically stabilized by subtracting the row max.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_apply_and_backprop() {
        let mut z = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        Activation::Relu.apply(&mut z);
        assert_eq!(z.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        Activation::Relu.backprop(&mut g, &z);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow.
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // Monotone within a row.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn sigmoid_backprop_matches_derivative() {
        let x = 0.7f32;
        let a = sigmoid(x);
        let mut z = Matrix::from_vec(1, 1, vec![a]);
        let mut g = Matrix::from_vec(1, 1, vec![1.0]);
        Activation::Sigmoid.backprop(&mut g, &z);
        let eps = 1e-3;
        let numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
        assert!((g.get(0, 0) - numeric).abs() < 1e-4);
        // Tanh too.
        z.set(0, 0, x.tanh());
        let mut g2 = Matrix::from_vec(1, 1, vec![1.0]);
        Activation::Tanh.backprop(&mut g2, &z);
        let numeric = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
        assert!((g2.get(0, 0) - numeric).abs() < 1e-4);
    }
}
