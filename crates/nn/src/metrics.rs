//! Classification metrics: confusion counts, precision/recall/F1, and ROC
//! curves (experiments T2 and F7).

use serde::{Deserialize, Serialize};

/// Binary confusion counts with the attack class (`1`) as positive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Attack predicted attack.
    pub true_positives: usize,
    /// Benign predicted attack.
    pub false_positives: usize,
    /// Benign predicted benign.
    pub true_negatives: usize,
    /// Attack predicted benign.
    pub false_negatives: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(predicted: &[usize], actual: &[usize]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p != 0, a != 0) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, false) => c.true_negatives += 1,
                (false, true) => c.false_negatives += 1,
            }
        }
        c
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// Of predicted attacks, the fraction that are attacks.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Of actual attacks, the fraction detected.
    pub fn recall(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Of actual benign traffic, the fraction wrongly flagged.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The headline metric bundle reported by every detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// Accuracy.
    pub accuracy: f64,
    /// Precision.
    pub precision: f64,
    /// Recall (detection rate).
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// False-positive rate.
    pub false_positive_rate: f64,
}

impl From<Confusion> for BinaryMetrics {
    fn from(c: Confusion) -> Self {
        BinaryMetrics {
            accuracy: c.accuracy(),
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            false_positive_rate: c.false_positive_rate(),
        }
    }
}

/// Computes the headline metrics for binary predictions.
pub fn binary_metrics(predicted: &[usize], actual: &[usize]) -> BinaryMetrics {
    Confusion::from_predictions(predicted, actual).into()
}

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f32,
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
}

/// Computes the ROC curve from attack-class scores, sorted from the
/// strictest threshold (FPR 0) to the loosest (FPR 1).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_curve(scores: &[f32], actual: &[usize]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), actual.len(), "length mismatch");
    let positives = actual.iter().filter(|&&a| a != 0).count();
    let negatives = actual.len() - positives;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut points = vec![RocPoint {
        threshold: f32::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume every sample tied at this threshold before emitting.
        while i < order.len() && scores[order[i]] == threshold {
            if actual[order[i]] != 0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: ratio(fp, negatives),
            tpr: ratio(tp, positives),
        });
    }
    points
}

/// Area under a ROC curve by trapezoidal integration.
pub fn auc(curve: &[RocPoint]) -> f64 {
    curve
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let predicted = [1, 1, 0, 0, 1, 0];
        let actual = [1, 0, 0, 1, 1, 0];
        let c = Confusion::from_predictions(&predicted, &actual);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 2);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.total(), 6);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let c = Confusion::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier_has_unit_auc() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let actual = [1, 1, 0, 0];
        let curve = roc_curve(&scores, &actual);
        assert!((auc(&curve) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_classifier_has_half_auc() {
        // Scores identical for all samples: single jump to (1, 1), AUC 0.5.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let actual = [1, 0, 1, 0];
        let curve = roc_curve(&scores, &actual);
        assert!((auc(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverted_classifier_has_zero_auc() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let actual = [1, 1, 0, 0];
        let curve = roc_curve(&scores, &actual);
        assert!(auc(&curve) < 1e-12);
    }

    #[test]
    fn roc_is_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.3, 0.2];
        let actual = [1, 0, 1, 1, 0, 0];
        let curve = roc_curve(&scores, &actual);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.fpr, 1.0);
        assert_eq!(last.tpr, 1.0);
    }

    #[test]
    fn binary_metrics_bundle() {
        let m = binary_metrics(&[1, 0, 1], &[1, 0, 0]);
        assert!((m.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
    }
}
