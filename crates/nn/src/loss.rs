//! Loss functions. The networks in this workspace are classifiers, so the
//! primary loss is softmax cross-entropy with the combined, numerically
//! stable gradient `p - onehot`.

use crate::activation::softmax_rows;
use crate::matrix::Matrix;

/// Computes mean softmax cross-entropy loss over a batch of `logits`
/// (`batch × classes`) against integer `labels`, returning `(loss,
/// grad_logits)` where the gradient is already divided by the batch size.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "label count mismatch");
    let probs = softmax_rows(logits);
    let n = logits.rows() as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_inplace(1.0 / n);
    (loss / n, grad)
}

/// Mean squared error over a batch, returning `(loss, grad_pred)`.
///
/// # Panics
///
/// Panics on a shape mismatch.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(2, 2, vec![20.0, -20.0, -20.0, 20.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6);
        assert!(grad.norm() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_classes() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut logits = Matrix::from_vec(1, 3, vec![0.5, -0.2, 0.1]);
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_basic() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.data(), &[1.0, 2.0]); // 2d/n
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn label_count_mismatch_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(2, 2), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }
}
