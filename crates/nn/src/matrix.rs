//! A minimal dense row-major `f32` matrix, sized for the small MLPs this
//! workspace trains (tens of inputs, hundreds of hidden units).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the row-major backing slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the row-major backing slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a new matrix from the rows of `self` selected by `indices`
    /// (repeats allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Builds a new matrix from the columns of `self` selected by `indices`
    /// (repeats allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &idx) in indices.iter().enumerate() {
                assert!(idx < self.cols, "column {idx} out of bounds");
                dst[j] = src[idx];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b dimension mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_a_bt dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Adds `row` to every row of `self` in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Sums each column into a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Elementwise product in place.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self.get(r, c))?;
            }
            if self.cols > 12 {
                write!(f, " …")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> Matrix {
        Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b());
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let x = a();
        let y = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.matmul_at_b(&y), x.transpose().matmul(&y));
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let x = a();
        let y = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(x.matmul_a_bt(&y), x.matmul(&y.transpose()));
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = a();
        m.add_row_broadcast(&[10.0, 20.0, 30.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        assert_eq!(m.column_sums(), vec![25.0, 47.0, 69.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = a();
        let r = m.select_rows(&[1, 1, 0]);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.row(2), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.data(), &[3.0, 1.0, 6.0, 4.0]);
    }

    #[test]
    fn map_hadamard_scale_norm() {
        let mut m = Matrix::from_vec(1, 3, vec![3.0, 0.0, 4.0]);
        assert_eq!(m.norm(), 5.0);
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.data(), &[6.0, 0.0, 8.0]);
        m.hadamard_inplace(&doubled);
        assert_eq!(m.data(), &[18.0, 0.0, 32.0]);
        m.scale_inplace(0.5);
        assert_eq!(m.data(), &[9.0, 0.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", a()).contains("Matrix 2x3"));
    }
}
