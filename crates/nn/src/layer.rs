//! Fully-connected layer with activation, optional dropout, and backprop.

use crate::activation::Activation;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense (fully-connected) layer: `a = act(x·W + b)`.
///
/// Weights are `input_dim × output_dim`; inputs are row vectors stacked into
/// a batch matrix. The layer caches what backprop needs during
/// [`Dense::forward_train`]; inference via [`Dense::forward`] caches
/// nothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    /// Dropout probability applied to the layer output during training;
    /// zero disables dropout.
    dropout: f32,
    #[serde(skip)]
    cache: Option<Cache>,
    #[serde(skip)]
    grads: Option<Grads>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: Matrix,
    output: Matrix,
    dropout_mask: Option<Matrix>,
}

#[derive(Debug, Clone)]
struct Grads {
    weights: Matrix,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a layer with He-style initialization scaled for the fan-in.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let scale = (2.0 / input_dim as f32).sqrt();
        let weights = Matrix::from_fn(input_dim, output_dim, |_, _| {
            (rng.gen::<f32>() * 2.0 - 1.0) * scale
        });
        Dense {
            weights,
            bias: vec![0.0; output_dim],
            activation,
            dropout: 0.0,
            cache: None,
            grads: None,
        }
    }

    /// Sets the training-time dropout probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn set_dropout(&mut self, p: f32) {
        assert!((0.0..1.0).contains(&p), "dropout must be in [0, 1)");
        self.dropout = p;
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    fn affine(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.weights);
        z.add_row_broadcast(&self.bias);
        self.activation.apply(&mut z);
        z
    }

    /// Inference forward pass (no caching, no dropout).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.affine(x)
    }

    /// Training forward pass: caches activations and applies inverted
    /// dropout when enabled.
    pub fn forward_train(&mut self, x: &Matrix, rng: &mut impl Rng) -> Matrix {
        let mut a = self.affine(x);
        let dropout_mask = if self.dropout > 0.0 {
            let keep = 1.0 - self.dropout;
            let mask = Matrix::from_fn(a.rows(), a.cols(), |_, _| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            });
            a.hadamard_inplace(&mask);
            Some(mask)
        } else {
            None
        };
        self.cache = Some(Cache {
            input: x.clone(),
            output: a.clone(),
            dropout_mask,
        });
        a
    }

    /// Backward pass: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input, accumulating parameter
    /// gradients internally.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_train`].
    pub fn backward(&mut self, mut grad_output: Matrix) -> Matrix {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a prior forward_train");
        if let Some(mask) = &cache.dropout_mask {
            grad_output.hadamard_inplace(mask);
            // Undo the mask on the cached output before the activation
            // derivative: the derivative must see pre-dropout activations.
        }
        // The cached output includes dropout scaling; for the activation
        // derivative we need pre-dropout activations. Since the mask is
        // either 0 (gradient already zeroed) or 1/keep (sign-preserving and,
        // for ReLU, zero-preserving), using the cached output is safe for
        // ReLU/Linear; for Sigmoid/Tanh dropout layers we recompute.
        let act_ref = match (&cache.dropout_mask, self.activation) {
            (Some(_), Activation::Sigmoid | Activation::Tanh) => {
                let mut undone = cache.output.clone();
                let mask = cache.dropout_mask.as_ref().expect("mask present");
                for (v, &m) in undone.data_mut().iter_mut().zip(mask.data()) {
                    if m > 0.0 {
                        *v /= m;
                    }
                }
                undone
            }
            _ => cache.output.clone(),
        };
        self.activation.backprop(&mut grad_output, &act_ref);
        let grad_weights = cache.input.matmul_at_b(&grad_output);
        let grad_bias = grad_output.column_sums();
        let grad_input = grad_output.matmul_a_bt(&self.weights);
        match &mut self.grads {
            Some(g) => {
                for (a, b) in g.weights.data_mut().iter_mut().zip(grad_weights.data()) {
                    *a += b;
                }
                for (a, b) in g.bias.iter_mut().zip(&grad_bias) {
                    *a += b;
                }
            }
            None => {
                self.grads = Some(Grads {
                    weights: grad_weights,
                    bias: grad_bias,
                });
            }
        }
        grad_input
    }

    /// Applies accumulated gradients via `step` (called once per parameter
    /// tensor with a stable slot id derived from `base_slot`), then clears
    /// them.
    pub fn apply_grads(
        &mut self,
        base_slot: usize,
        mut step: impl FnMut(usize, &mut [f32], &[f32]),
    ) {
        if let Some(grads) = self.grads.take() {
            step(base_slot, self.weights.data_mut(), grads.weights.data());
            step(base_slot + 1, &mut self.bias, &grads.bias);
        }
    }

    /// Discards cached activations and gradients.
    pub fn clear_state(&mut self) {
        self.cache = None;
        self.grads = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng();
        let layer = Dense::new(4, 3, Activation::Relu, &mut r);
        let x = Matrix::zeros(5, 4);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW for L = sum(output).
        let mut r = rng();
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut r);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.0, -0.4]);
        let out = layer.forward_train(&x, &mut r);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        layer.backward(ones);
        let mut analytic = None;
        layer.apply_grads(0, |slot, _param, grad| {
            if slot == 0 {
                analytic = Some(grad.to_vec());
            }
        });
        let analytic = analytic.expect("weights gradient produced");
        let eps = 1e-3f32;
        for (idx, &expected) in analytic.iter().enumerate().take(6) {
            let orig = layer.weights.data()[idx];
            layer.weights.data_mut()[idx] = orig + eps;
            let lp: f32 = layer.forward(&x).data().iter().sum();
            layer.weights.data_mut()[idx] = orig - eps;
            let lm: f32 = layer.forward(&x).data().iter().sum();
            layer.weights.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - expected).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {expected}",
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, Activation::Sigmoid, &mut r);
        let x = Matrix::from_vec(1, 3, vec![0.3, -0.1, 0.7]);
        let out = layer.forward_train(&x, &mut r);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; 2]);
        let grad_input = layer.backward(ones);
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp).data().iter().sum();
            let lm: f32 = layer.forward(&xm).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_input.data()[idx]).abs() < 1e-2,
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn dropout_zeroes_and_scales() {
        let mut r = rng();
        let mut layer = Dense::new(1, 1000, Activation::Linear, &mut r);
        layer.set_dropout(0.5);
        // Force deterministic weights: all ones, zero bias.
        layer.weights = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let out = layer.forward_train(&x, &mut r);
        let zeros = out.data().iter().filter(|v| **v == 0.0).count();
        let nonzero: Vec<f32> = out.data().iter().copied().filter(|v| *v != 0.0).collect();
        // Roughly half dropped.
        assert!((300..700).contains(&zeros), "zeros = {zeros}");
        // Survivors are scaled by 1/keep = 2.
        for v in nonzero {
            assert!((v - 2.0).abs() < 1e-6);
        }
        // Inference applies no dropout.
        let out = layer.forward(&x);
        assert!(out.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "forward_train")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut r);
        let _ = layer.backward(Matrix::zeros(1, 2));
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let mut r = rng();
        let mut layer = Dense::new(2, 1, Activation::Linear, &mut r);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        for _ in 0..2 {
            let out = layer.forward_train(&x, &mut r);
            let g = Matrix::from_vec(out.rows(), out.cols(), vec![1.0]);
            layer.backward(g);
        }
        let mut seen = Vec::new();
        layer.apply_grads(0, |slot, _p, g| {
            if slot == 0 {
                seen = g.to_vec();
            }
        });
        // Two identical backward passes double the gradient: dW = 2·x.
        assert_eq!(seen, vec![2.0, 4.0]);
    }
}
