//! End-to-end closed-loop adaptation tests.
//!
//! Each test drives a real sharded [`Gateway`] with scenario traffic in
//! chunks, stepping the [`AdaptEngine`] only at drained checkpoints
//! (every dispatched frame processed, registry flushed), so every run is
//! seed-deterministic: same traffic, same drift decision, same published
//! versions.
//!
//! Covered paths:
//! - regime shift → drift → retrain → shadow → canary → **promote**,
//!   with `/metrics` and `/events` scrape assertions;
//! - operator-proposed poisoned candidate → shadow passes → canary
//!   guardrail trips → **rollback** restores the exact prior version;
//! - drop-everything candidate → **shadow reject**, plus the NotStable
//!   guard against concurrent proposals.

use bytes::Bytes;
use p4guard_adapt::{
    AdaptConfig, AdaptEngine, AdaptError, DriftConfig, PhaseKind, Retrainer, StepOutcome,
};
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_features::ByteDataset;
use p4guard_gateway::{Gateway, GatewayConfig};
use p4guard_packet::{AttackFamily, Trace};
use p4guard_rules::{RuleSet, TernaryEntry};
use p4guard_telemetry::{http_get, MetricsServer, Telemetry, TelemetryConfig};
use p4guard_traffic::{AttackEvent, Fleet, Scenario};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Byte window the ACL parser captures.
const WINDOW: usize = 64;
/// ACL key: IPv4 protocol byte plus source/destination port bytes.
const OFFSETS: [usize; 5] = [23, 34, 35, 36, 37];
/// Frames dispatched between engine checkpoints.
const CHUNK: usize = 300;

/// A mixed-fleet scenario with benign traffic boosted (~55 fps) and an
/// optional full-duration attack damped to ~half the frame share, so
/// drift statistics see a balanced mix.
fn scenario(family: Option<AttackFamily>, duration_s: f64, seed: u64) -> Scenario {
    Scenario {
        fleet: Fleet::mixed(),
        duration_s,
        seed,
        benign_intensity: 8.0,
        attacks: family
            .map(|f| {
                vec![AttackEvent {
                    family: f,
                    start_s: 0.0,
                    end_s: duration_s,
                    intensity: 0.5,
                }]
            })
            .unwrap_or_default(),
    }
}

fn retrainer() -> Retrainer {
    Retrainer::new(WINDOW, OFFSETS.to_vec())
}

/// A control plane over a one-stage ternary ACL shaped like the
/// retrainer's key layout.
fn build_control() -> ControlPlane {
    let parser = ParserSpec::raw_window(WINDOW, 14);
    let mut sw = Switch::new("closed-loop", parser, 1);
    sw.add_stage(Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::new(OFFSETS.to_vec()),
        8192,
        Action::NoOp,
    ));
    ControlPlane::new(sw)
}

fn telemetry() -> Arc<Telemetry> {
    Arc::new(Telemetry::new(TelemetryConfig {
        events_capacity: 8192,
        sample_every: 8,
        seed: 1,
        ..TelemetryConfig::default()
    }))
}

/// Dispatches `frames` and blocks until the gateway has drained them all
/// (the shard workers flush telemetry under the stats lock, so once the
/// received total catches up the registry is exact).
fn replay_chunk(gw: &Gateway, frames: &[Bytes], expected: &mut u64) {
    for f in frames {
        gw.dispatch(f.clone());
    }
    *expected += frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = gw.snapshot();
        if snap.totals.received + snap.dropped_backpressure >= *expected {
            break;
        }
        assert!(Instant::now() < deadline, "gateway failed to drain chunk");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn frames_of(trace: &Trace) -> Vec<Bytes> {
    trace.iter().map(|r| r.frame.clone()).collect()
}

/// Sums a counter family across label sets, optionally requiring one
/// label pair.
fn counter_value(telemetry: &Telemetry, name: &str, label: Option<(&str, &str)>) -> u64 {
    telemetry
        .registry
        .counter_snapshot()
        .into_iter()
        .filter(|(n, labels, _)| {
            n == name
                && label
                    .map(|(k, v)| labels.iter().any(|(lk, lv)| lk == k && lv == v))
                    .unwrap_or(true)
        })
        .map(|(_, _, v)| v)
        .sum()
}

/// Classification recall of `rules` on the attack frames of `trace`.
fn attack_recall(rules: &RuleSet, trace: &Trace) -> f64 {
    let projected = ByteDataset::from_trace(trace, WINDOW).project(&OFFSETS);
    let mut attacks = 0usize;
    let mut hit = 0usize;
    for i in 0..projected.len() {
        if projected.labels()[i] == 1 {
            attacks += 1;
            hit += usize::from(rules.classify(projected.sample(i)) == 1);
        }
    }
    assert!(attacks > 0, "trace has attack frames");
    hit as f64 / attacks as f64
}

/// The full loop: a TCP SYN-flood baseline regime shifts to a UDP flood;
/// drift fires, the engine retrains on the new regime, shadows the
/// candidate on mirrored traffic, canaries it on two of four shards, and
/// promotes it fleet-wide. Deterministic for the fixed seeds.
#[test]
fn drift_shadow_canary_promote_end_to_end() {
    let baseline_sc = scenario(Some(AttackFamily::SynFlood), 16.0, 7);
    let shift_sc = scenario(Some(AttackFamily::UdpFlood), 16.0, 9);
    let baseline_trace = baseline_sc.generate().unwrap();
    let shift_trace = shift_sc.generate().unwrap();

    let control = build_control();
    let tel = telemetry();
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig {
            shards: 4,
            queue_capacity: 8192,
            batch_size: 32,
        },
        Some(Arc::clone(&tel)),
    );

    let r0 = retrainer().retrain(&baseline_trace).unwrap();
    // Thresholds are policy: after a genuine regime shift a good candidate
    // drops ~ the attack share (~0.5 here), so the drift path runs with
    // generous shadow/canary allowances and tight drift thresholds.
    let config = AdaptConfig {
        drift: DriftConfig {
            warmup_checks: 2,
            min_frames: 250,
            ph_delta: 0.01,
            ph_lambda: 10.0,
            chi_threshold: 60.0,
        },
        stage: 0,
        mirror_stride: 4,
        mirror_capacity: 4096,
        shadow_min_samples: 64,
        shadow_max_drop_rate: 0.8,
        canary_shards: 2,
        min_canary_frames: 120,
        guardrail_max_drop_increase: 0.7,
        guardrail_max_p99_factor: None,
    };
    let mut engine = AdaptEngine::new(
        control.clone(),
        Arc::clone(&tel),
        retrainer(),
        shift_sc.clone(),
        config,
    );
    let initial = engine.install_initial(&r0).unwrap();
    assert_eq!(engine.active_version(), Some(initial.version));
    assert_eq!(engine.phase(), PhaseKind::Stable);

    let mut expected = 0u64;
    // Baseline regime: the monitor warms up, freezes its baseline, then
    // stays quiet on the stationary mix.
    for (i, chunk) in frames_of(&baseline_trace).chunks(CHUNK).enumerate() {
        replay_chunk(&gw, chunk, &mut expected);
        let outcome = engine.step(&gw).unwrap();
        assert_eq!(
            outcome,
            StepOutcome::Idle,
            "baseline chunk {i} must be quiet"
        );
    }
    assert!(engine.monitor().warmed_up(), "baseline froze during warmup");

    // Regime shift: keep stepping through the shifted traffic and record
    // the interesting transitions.
    let mut transitions = Vec::new();
    for chunk in frames_of(&shift_trace).chunks(CHUNK) {
        replay_chunk(&gw, chunk, &mut expected);
        let outcome = engine.step(&gw).unwrap();
        match &outcome {
            StepOutcome::Idle
            | StepOutcome::ShadowProgress { .. }
            | StepOutcome::CanaryProgress { .. } => {}
            other => transitions.push(other.clone()),
        }
        if matches!(outcome, StepOutcome::Promoted { .. }) {
            break;
        }
    }

    assert_eq!(transitions.len(), 3, "shift transitions: {transitions:?}");
    let StepOutcome::ShadowStarted { reason } = &transitions[0] else {
        panic!("expected ShadowStarted, got {:?}", transitions[0]);
    };
    assert!(reason.starts_with("drift:"), "drift-triggered: {reason}");
    let drift_metric = reason.strip_prefix("drift:").unwrap().to_string();
    let StepOutcome::CanaryStarted { version, shards } = &transitions[1] else {
        panic!("expected CanaryStarted, got {:?}", transitions[1]);
    };
    assert_eq!(shards, &vec![0, 1], "two canary shards, in shard order");
    assert_eq!(*version, initial.version + 1);
    let StepOutcome::Promoted { version: promoted } = &transitions[2] else {
        panic!("expected Promoted, got {:?}", transitions[2]);
    };
    assert_eq!(*promoted, initial.version + 1);

    // Fleet converged on the promoted version, and the engine's history
    // agrees.
    let snap = gw.snapshot();
    assert_eq!(snap.version, *promoted);
    assert!(snap.shard_versions.iter().all(|v| *v == *promoted));
    assert_eq!(engine.active_version(), Some(*promoted));
    assert_eq!(engine.phase(), PhaseKind::Stable);

    // The promoted ruleset actually learned the new regime.
    let active = engine.active_ruleset().unwrap();
    assert!(
        !active.diff(&r0).is_empty(),
        "promoted ruleset differs from the stale baseline"
    );
    assert!(
        attack_recall(active, &shift_trace) >= 0.7,
        "promoted ruleset catches the UDP flood"
    );

    // Counters: one drift, one retrain, one promoted rollout, no rejects.
    assert_eq!(
        counter_value(&tel, "adapt_drift_total", Some(("metric", &drift_metric))),
        1
    );
    assert_eq!(counter_value(&tel, "adapt_retrains_total", None), 1);
    assert_eq!(
        counter_value(&tel, "adapt_rollouts_total", Some(("outcome", "promoted"))),
        1
    );
    assert_eq!(
        counter_value(
            &tel,
            "adapt_rollouts_total",
            Some(("outcome", "rolled_back"))
        ),
        0
    );
    assert_eq!(
        counter_value(&tel, "adapt_candidate_rejects_total", None),
        0
    );
    assert!(counter_value(&tel, "adapt_shadow_samples_total", None) >= 64);

    // The whole story is visible over HTTP: adapt_* counters at /metrics,
    // the audit trail at /events.
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&tel)).unwrap();
    let addr = server.local_addr().to_string();
    let (code, metrics) = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(code, 200);
    for needle in [
        "adapt_drift_total",
        "adapt_retrains_total 1",
        "adapt_rollouts_total",
        "adapt_phase 0",
    ] {
        assert!(metrics.contains(needle), "/metrics missing {needle:?}");
    }
    let (code, events) = http_get(&addr, "/events", Duration::from_secs(5)).unwrap();
    assert_eq!(code, 200);
    for needle in ["Drift", "shadow_start", "canary_start", "promoted"] {
        assert!(events.contains(needle), "/events missing {needle:?}");
    }
}

/// A poisoned candidate (drops all TCP and UDP — ~85% of benign traffic)
/// passes the coarse shadow gate but trips the canary drop-rate guardrail
/// against the control shards; the engine rolls the fleet back to the
/// exact prior version, cells and switch tables both.
#[test]
fn poisoned_candidate_trips_guardrail_and_rolls_back() {
    let benign_sc = scenario(None, 32.0, 3);
    let benign_trace = benign_sc.generate().unwrap();
    let baseline_trace = scenario(Some(AttackFamily::SynFlood), 16.0, 7)
        .generate()
        .unwrap();

    let control = build_control();
    let tel = telemetry();
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig {
            shards: 4,
            queue_capacity: 8192,
            batch_size: 32,
        },
        Some(Arc::clone(&tel)),
    );

    let r0 = retrainer().retrain(&baseline_trace).unwrap();
    let config = AdaptConfig {
        drift: DriftConfig {
            warmup_checks: 2,
            min_frames: 250,
            ph_delta: 0.01,
            ph_lambda: 50.0,
            chi_threshold: 1e9, // propose path only; drift must stay quiet
        },
        stage: 0,
        mirror_stride: 4,
        mirror_capacity: 4096,
        shadow_min_samples: 64,
        shadow_max_drop_rate: 0.95,
        canary_shards: 1,
        min_canary_frames: 100,
        guardrail_max_drop_increase: 0.2,
        guardrail_max_p99_factor: None,
    };
    let mut engine = AdaptEngine::new(
        control.clone(),
        Arc::clone(&tel),
        retrainer(),
        benign_sc.clone(),
        config,
    );
    let initial = engine.install_initial(&r0).unwrap();

    // Poisoned candidate: drop every TCP and UDP frame.
    let mut poisoned = RuleSet::new(OFFSETS.len(), 0);
    for proto in [6u8, 17u8] {
        poisoned.push(TernaryEntry::new(
            vec![proto, 0, 0, 0, 0],
            vec![0xff, 0, 0, 0, 0],
            1,
            5,
        ));
    }

    let frames = frames_of(&benign_trace);
    let mut chunks = frames.chunks(CHUNK);
    let mut expected = 0u64;

    // Establish pre-canary counters, then propose.
    replay_chunk(&gw, chunks.next().unwrap(), &mut expected);
    let outcome = engine.propose(&gw, poisoned.clone(), "poisoned").unwrap();
    assert_eq!(
        outcome,
        StepOutcome::ShadowStarted {
            reason: "proposed:poisoned".to_string()
        }
    );

    // Drive the lifecycle to its terminal outcome.
    let mut rolled_back = None;
    let mut saw_canary_start = false;
    for chunk in chunks {
        replay_chunk(&gw, chunk, &mut expected);
        match engine.step(&gw).unwrap() {
            StepOutcome::CanaryStarted { version, .. } => {
                assert_eq!(version, initial.version + 1);
                saw_canary_start = true;
            }
            StepOutcome::RolledBack { from, to } => {
                rolled_back = Some((from, to));
                break;
            }
            StepOutcome::ShadowProgress { .. } | StepOutcome::CanaryProgress { .. } => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(saw_canary_start, "candidate reached the canary phase");
    let (from, to) = rolled_back.expect("guardrail tripped");
    assert_eq!(from, initial.version + 1);
    assert_eq!(to, initial.version);

    // Every shard's cell serves the exact baseline version again.
    let snap = gw.snapshot();
    assert_eq!(snap.version, initial.version);
    assert!(
        snap.shard_versions.iter().all(|v| *v == initial.version),
        "shard versions {:?} != baseline {}",
        snap.shard_versions,
        initial.version
    );
    assert_eq!(engine.active_version(), Some(initial.version));
    assert_eq!(engine.phase(), PhaseKind::Stable);
    assert!(
        engine.active_ruleset().unwrap().diff(&r0).is_empty(),
        "engine history still holds the exact baseline rules"
    );

    // The switch tables were restored too: a fresh publish compiles the
    // baseline entry set, not the poisoned one.
    let report = control.publish_audited(None, false);
    assert_eq!(report.entries, r0.len(), "tables hold the baseline rules");

    // Audit trail and counters tell the rollback story.
    assert_eq!(
        counter_value(
            &tel,
            "adapt_rollouts_total",
            Some(("outcome", "rolled_back"))
        ),
        1
    );
    assert_eq!(
        counter_value(&tel, "adapt_rollouts_total", Some(("outcome", "promoted"))),
        0
    );
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&tel)).unwrap();
    let (code, events) = http_get(
        &server.local_addr().to_string(),
        "/events",
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(code, 200);
    for needle in [
        "shadow_start",
        "canary_start",
        "rolled_back",
        "proposed:poisoned",
    ] {
        assert!(events.contains(needle), "/events missing {needle:?}");
    }
}

/// A drop-everything candidate is rejected by the shadow gate without
/// ever touching an enforcement path, and proposing while a shadow is in
/// flight is refused.
#[test]
fn shadow_gate_rejects_drop_everything_candidate() {
    let benign_sc = scenario(None, 16.0, 5);
    let benign_trace = benign_sc.generate().unwrap();

    let control = build_control();
    let tel = telemetry();
    let gw = Gateway::start_with_telemetry(
        &control,
        GatewayConfig {
            shards: 2,
            queue_capacity: 8192,
            batch_size: 32,
        },
        Some(Arc::clone(&tel)),
    );

    let baseline = RuleSet::new(OFFSETS.len(), 0); // empty: forward all
    let config = AdaptConfig {
        shadow_min_samples: 32,
        shadow_max_drop_rate: 0.5,
        ..AdaptConfig::default()
    };
    let mut engine = AdaptEngine::new(
        control.clone(),
        Arc::clone(&tel),
        retrainer(),
        benign_sc.clone(),
        config,
    );
    let initial = engine.install_initial(&baseline).unwrap();

    // Wildcard drop-all candidate.
    let mut drop_all = RuleSet::new(OFFSETS.len(), 0);
    drop_all.push(TernaryEntry::new(vec![0; 5], vec![0; 5], 1, 1));
    engine.propose(&gw, drop_all.clone(), "drop-all").unwrap();
    assert_eq!(engine.phase(), PhaseKind::Shadowing);

    // A second proposal mid-shadow is refused.
    let err = engine.propose(&gw, drop_all, "again").unwrap_err();
    assert!(matches!(err, AdaptError::NotStable("shadowing")), "{err}");

    let mut expected = 0u64;
    let mut rejected = None;
    for chunk in frames_of(&benign_trace).chunks(CHUNK) {
        replay_chunk(&gw, chunk, &mut expected);
        match engine.step(&gw).unwrap() {
            StepOutcome::ShadowProgress { .. } => {}
            StepOutcome::ShadowRejected { drop_rate } => {
                rejected = Some(drop_rate);
                break;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let drop_rate = rejected.expect("shadow gate fired");
    assert!(drop_rate > 0.9, "drop-all candidate drops ~everything");

    // Nothing was published: version unchanged, engine stable again, the
    // reject is counted and audited.
    let snap = gw.snapshot();
    assert_eq!(snap.version, initial.version);
    assert_eq!(engine.phase(), PhaseKind::Stable);
    assert_eq!(engine.active_version(), Some(initial.version));
    assert_eq!(
        counter_value(
            &tel,
            "adapt_candidate_rejects_total",
            Some(("gate", "shadow"))
        ),
        1
    );
    assert_eq!(counter_value(&tel, "adapt_rollouts_total", None), 0);
    let events = tel.recorder.events();
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, p4guard_telemetry::Event::Rollout { phase, .. } if phase == "shadow_reject")));
}
