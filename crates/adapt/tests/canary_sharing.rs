//! Structural-sharing guarantees of the canary rollout choreography.
//!
//! The adaptation engine's canary path is `clear_stage` + `install_ruleset`
//! on the learned ACL stage followed by `publish_to(canary shards)`, and
//! promotion is `republish(candidate_version)`. With incremental
//! compilation these steps must be cheap: only the touched ACL stage is
//! re-lowered, every other stage's `CompiledTable` is shared by `Arc`
//! across pipeline versions, and promotion serves the retained snapshot
//! without compiling anything. This suite probes the `PipelineCell`
//! subscribers directly and pins those identities.

use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};
use p4guard_rules::{RuleSet, TernaryEntry};
use std::sync::Arc;

/// A two-stage control plane shaped like the adapt deployments: stage 0
/// holds the learned ACL the engine rewrites, stage 1 a static allowlist
/// the engine never touches.
fn build_control() -> ControlPlane {
    let parser = ParserSpec::raw_window(16, 0);
    let mut sw = Switch::new("canary-sharing", parser, 1);
    sw.add_stage(Table::new(
        "acl",
        MatchKind::Ternary,
        KeyLayout::window(2),
        1024,
        Action::NoOp,
    ));
    sw.add_stage(Table::new(
        "allowlist",
        MatchKind::Ternary,
        KeyLayout::window(2),
        64,
        Action::NoOp,
    ));
    let control = ControlPlane::new(sw);
    control
        .with_switch_mut(|sw| {
            sw.stage_mut(1).insert(
                MatchSpec::Ternary {
                    value: vec![0xde, 0xad],
                    mask: vec![0xff, 0xff],
                },
                Action::Forward(1),
                5,
            )
        })
        .unwrap();
    control
}

fn ruleset(seed: u8) -> RuleSet {
    let mut rs = RuleSet::new(2, 0);
    for i in 0..8u8 {
        rs.push(TernaryEntry::new(vec![seed, i], vec![0xff, 0xff], 1, 1));
    }
    rs
}

#[test]
fn canary_publish_relowers_only_the_acl_stage() {
    let control = build_control();
    control
        .install_ruleset(0, &ruleset(0x10), Action::Drop)
        .unwrap();
    // Two subscriber cells model a two-shard gateway: shard 0 is the
    // canary, shard 1 the control group.
    let canary_cell = control.attach_cell();
    let control_cell = control.attach_cell();
    let first = control.publish();
    assert_eq!(first.subscribers, 2);
    let baseline = canary_cell.load();
    let control_baseline = control_cell.load();
    assert!(Arc::ptr_eq(&baseline, &control_baseline));

    // The canary step rewrites stage 0 only, then publishes to shard 0.
    control.clear_stage(0).unwrap();
    control
        .install_ruleset(0, &ruleset(0x20), Action::Drop)
        .unwrap();
    let report = control.publish_to(&[0]).unwrap();
    assert_eq!(
        (report.stages_recompiled, report.stages_shared),
        (1, 1),
        "only the rewritten ACL stage may be re-lowered"
    );

    let candidate = canary_cell.load();
    assert_eq!(candidate.version(), report.version);
    // Changed stage: fresh compile. Untouched stage: the same Arc the
    // baseline pipeline holds — shared bytes, zero re-lowering.
    assert!(!Arc::ptr_eq(&candidate.stages()[0], &baseline.stages()[0]));
    assert!(Arc::ptr_eq(&candidate.stages()[1], &baseline.stages()[1]));
    // The control shard still serves the baseline snapshot untouched.
    assert!(Arc::ptr_eq(&control_cell.load(), &baseline));
}

#[test]
fn promotion_republish_serves_retained_bytes_fleet_wide() {
    let control = build_control();
    control
        .install_ruleset(0, &ruleset(0x10), Action::Drop)
        .unwrap();
    let canary_cell = control.attach_cell();
    let control_cell = control.attach_cell();
    control.publish();

    control.clear_stage(0).unwrap();
    control
        .install_ruleset(0, &ruleset(0x20), Action::Drop)
        .unwrap();
    let canaried = control.publish_to(&[0]).unwrap();
    let candidate = canary_cell.load();

    // Promotion: the exact canaried snapshot goes fleet-wide. Nothing is
    // recompiled and every shard ends up holding the identical Arc.
    let promoted = control.republish(canaried.version).unwrap();
    assert_eq!(promoted.version, canaried.version);
    assert_eq!(promoted.stages_recompiled, 0);
    assert_eq!(promoted.stages_shared, candidate.stages().len());
    assert!(Arc::ptr_eq(&canary_cell.load(), &candidate));
    assert!(Arc::ptr_eq(&control_cell.load(), &candidate));
}

#[test]
fn rollback_restores_the_exact_baseline_snapshot() {
    let control = build_control();
    control
        .install_ruleset(0, &ruleset(0x10), Action::Drop)
        .unwrap();
    let canary_cell = control.attach_cell();
    let control_cell = control.attach_cell();
    let first = control.publish();
    let baseline = canary_cell.load();

    control.clear_stage(0).unwrap();
    control
        .install_ruleset(0, &ruleset(0x20), Action::Drop)
        .unwrap();
    control.publish_to(&[0]).unwrap();
    assert!(!Arc::ptr_eq(&canary_cell.load(), &baseline));

    // Guardrail trip: both shards return to the retained baseline — the
    // identical Arc, not a recompiled equivalent.
    control
        .rollback_to(first.version, "guardrail tripped")
        .unwrap();
    assert!(Arc::ptr_eq(&canary_cell.load(), &baseline));
    assert!(Arc::ptr_eq(&control_cell.load(), &baseline));
}
