//! Shadow evaluation: running a candidate pipeline on mirrored traffic.
//!
//! The gateway's [`MirrorTap`](p4guard_gateway::MirrorTap) clones a
//! deterministic 1-in-N sample of ingest frames into a bounded channel.
//! A [`ShadowScore`] drains that channel and runs each sample through
//! **both** the candidate and the live [`ReadPipeline`] — never
//! enforcing, never touching the hot path — and tallies verdict
//! disagreement and the candidate's absolute drop rate.
//!
//! The promotion gate is the candidate's own drop rate, not the
//! disagreement rate: after genuine drift a *good* candidate is expected
//! to disagree with the stale live ruleset (that is the point of
//! retraining). What shadow evaluation protects against is a candidate
//! that would drop an implausible share of everything it sees.

use bytes::Bytes;
use crossbeam::channel::Receiver;
use p4guard_dataplane::pipeline::ReadPipeline;
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_dataplane::Verdict;

/// Running tallies of a shadow comparison between a candidate pipeline
/// and the live one.
#[derive(Debug, Clone, Default)]
pub struct ShadowScore {
    /// Mirrored frames evaluated.
    pub samples: u64,
    /// Frames where the candidate and live verdicts differ.
    pub disagreements: u64,
    /// Frames the candidate dropped (policy or parser).
    pub candidate_drops: u64,
    /// Frames the live pipeline dropped (policy or parser).
    pub live_drops: u64,
}

impl ShadowScore {
    /// Fraction of samples the candidate would drop.
    pub fn candidate_drop_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.candidate_drops as f64 / self.samples as f64
        }
    }

    /// Fraction of samples where the two pipelines disagree.
    pub fn disagreement_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.disagreements as f64 / self.samples as f64
        }
    }

    /// Scores a single mirrored frame through both pipelines. Useful for
    /// a dedicated shadow thread that blocks on the mirror receiver
    /// instead of draining at checkpoints.
    pub fn observe(&mut self, frame: &[u8], candidate: &ReadPipeline, live: &ReadPipeline) {
        let mut scratch_candidate = vec![0u8; candidate.scratch_len()];
        let mut scratch_live = vec![0u8; live.scratch_len()];
        let mut counters = SwitchCounters::default();
        self.score(
            frame,
            candidate,
            live,
            &mut counters,
            &mut scratch_candidate,
            &mut scratch_live,
        );
    }

    /// Drains every queued mirror sample through both pipelines,
    /// returning how many samples this call consumed. Non-blocking: the
    /// caller re-invokes at its next checkpoint while traffic keeps the
    /// tap fed.
    pub fn drain(
        &mut self,
        rx: &Receiver<Bytes>,
        candidate: &ReadPipeline,
        live: &ReadPipeline,
    ) -> u64 {
        let mut scratch_candidate = vec![0u8; candidate.scratch_len()];
        let mut scratch_live = vec![0u8; live.scratch_len()];
        // Shadow counters are throwaway; the score keeps its own tallies.
        let mut counters = SwitchCounters::default();
        let mut drained = 0u64;
        while let Ok(frame) = rx.try_recv() {
            self.score(
                &frame,
                candidate,
                live,
                &mut counters,
                &mut scratch_candidate,
                &mut scratch_live,
            );
            drained += 1;
        }
        drained
    }

    fn score(
        &mut self,
        frame: &[u8],
        candidate: &ReadPipeline,
        live: &ReadPipeline,
        counters: &mut SwitchCounters,
        scratch_candidate: &mut Vec<u8>,
        scratch_live: &mut Vec<u8>,
    ) {
        let cand = candidate.process_into(frame, counters, scratch_candidate);
        let base = live.process_into(frame, counters, scratch_live);
        self.samples += 1;
        if dropped(cand) != dropped(base) {
            self.disagreements += 1;
        }
        if dropped(cand) {
            self.candidate_drops += 1;
        }
        if dropped(base) {
            self.live_drops += 1;
        }
    }
}

fn dropped(v: Verdict) -> bool {
    !matches!(v, Verdict::Forward(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use p4guard_dataplane::action::Action;
    use p4guard_dataplane::key::KeyLayout;
    use p4guard_dataplane::parser::ParserSpec;
    use p4guard_dataplane::switch::Switch;
    use p4guard_dataplane::table::{MatchKind, MatchSpec, Table};

    /// A one-stage pipeline keying on byte 0 that drops value `drop_value`.
    fn pipeline(drop_value: Option<u8>) -> ReadPipeline {
        let mut sw = Switch::new("shadow-test", ParserSpec::raw_window(8, 1), 1);
        let stage = sw.add_stage(Table::new(
            "acl",
            MatchKind::Ternary,
            KeyLayout::new(vec![0]),
            8,
            Action::NoOp,
        ));
        if let Some(v) = drop_value {
            sw.stage_mut(stage)
                .insert(
                    MatchSpec::Ternary {
                        value: vec![v],
                        mask: vec![0xff],
                    },
                    Action::Drop,
                    1,
                )
                .unwrap();
        }
        sw.read_pipeline(0)
    }

    #[test]
    fn drain_scores_disagreement_and_drop_rates() {
        let live = pipeline(None); // forwards everything
        let candidate = pipeline(Some(0xAA)); // drops frames starting 0xAA
        let (tx, rx) = bounded(16);
        for i in 0..8u8 {
            let first = if i % 2 == 0 { 0xAA } else { 0x01 };
            tx.send(Bytes::from(vec![first; 8])).unwrap();
        }
        let mut score = ShadowScore::default();
        assert_eq!(score.drain(&rx, &candidate, &live), 8);
        assert_eq!(score.samples, 8);
        assert_eq!(score.candidate_drops, 4);
        assert_eq!(score.live_drops, 0);
        assert_eq!(score.disagreements, 4);
        assert!((score.candidate_drop_rate() - 0.5).abs() < 1e-9);
        assert!((score.disagreement_rate() - 0.5).abs() < 1e-9);
        // A second drain on the empty queue is a no-op.
        assert_eq!(score.drain(&rx, &candidate, &live), 0);
        assert_eq!(score.samples, 8);
    }

    #[test]
    fn identical_pipelines_never_disagree() {
        let live = pipeline(Some(0x10));
        let candidate = pipeline(Some(0x10));
        let (tx, rx) = bounded(16);
        for i in 0..10u8 {
            tx.send(Bytes::from(vec![i, 0, 0, 0, 0, 0, 0, 0])).unwrap();
        }
        let mut score = ShadowScore::default();
        score.drain(&rx, &candidate, &live);
        assert_eq!(score.disagreements, 0);
        assert_eq!(score.candidate_drops, score.live_drops);
    }
}
