//! # p4guard-adapt
//!
//! Closed-loop adaptation for the p4guard data plane: the control-loop
//! subsystem that notices when the deployed ruleset has gone stale,
//! learns a replacement, proves it harmless, and rolls it out — or rolls
//! it back — without a human in the loop.
//!
//! The paper's pipeline trains once and deploys once; real IoT traffic
//! drifts (new devices, new attack families, firmware updates). This
//! crate closes the loop with four cooperating pieces:
//!
//! 1. **Drift detection** ([`drift`]): windowed baselines over the
//!    telemetry registry's verdict counters, tested at drained
//!    checkpoints with a chi-squared mix test and a two-sided
//!    Page–Hinkley test. Purely counter-delta driven — deterministic
//!    under replay.
//! 2. **Retraining** ([`retrain`]): on drift, assemble a labelled window
//!    (scenario replay cross-referenced against flight-recorder verdict
//!    digests) and rerun the stage-2 path — byte dataset → projection →
//!    decision tree → ternary compilation — to produce a candidate
//!    [`RuleSet`](p4guard_rules::RuleSet).
//! 3. **Shadow evaluation** ([`shadow`]): run the candidate on a
//!    deterministic 1-in-N mirror of live ingest next to the live
//!    pipeline, off the enforcement path, and gate on the candidate's
//!    absolute drop rate.
//! 4. **Canary rollout** ([`engine`]): publish the candidate to a shard
//!    subset with
//!    [`ControlPlane::publish_to`](p4guard_dataplane::control::ControlPlane::publish_to),
//!    watch drop-rate (and optionally latency) guardrails against the
//!    control shards, then promote fleet-wide with `republish` — or
//!    restore the prior version everywhere with `rollback_to` plus a
//!    switch-table reinstall from the engine's deployment history.
//!
//! Every phase transition is observable: `adapt_*` counters in the
//! shared registry and `drift` / `rollout` audit events in the flight
//! recorder, both served by the telemetry crate's `/metrics` and
//! `/events` endpoints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod engine;
pub mod retrain;
pub mod shadow;

pub use drift::{DriftConfig, DriftMonitor, DriftSignal};
pub use engine::{AdaptConfig, AdaptEngine, AdaptError, PhaseKind, StepOutcome};
pub use retrain::{LabelledWindow, RetrainError, Retrainer};
pub use shadow::ShadowScore;
