//! Candidate-ruleset retraining.
//!
//! When drift fires, the loop needs a labelled window of the *current*
//! traffic regime to learn from. [`Retrainer::assemble_window`] builds one
//! by replaying a [`Scenario`] (deterministic ground-truth labels for
//! free) and cross-referencing the flight recorder's sampled verdict
//! digests, so the window provably overlaps what the dataplane actually
//! saw. [`Retrainer::retrain`] then reruns the paper's stage-2 path on
//! that window — byte dataset → field projection → decision tree →
//! ternary compilation — producing a candidate [`RuleSet`] for shadow
//! evaluation.

use p4guard_features::ByteDataset;
use p4guard_packet::Trace;
use p4guard_rules::{
    compile_tree, CompileConfig, DecisionTree, RuleSet, TooManyEntries, TreeConfig,
};
use p4guard_telemetry::{frame_digest, Event, FlightRecorder};
use p4guard_traffic::{Scenario, ScenarioError};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Why a retraining attempt produced no candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrainError {
    /// The labelled window held no frames.
    EmptyWindow,
    /// The window held no attack frames, so there is nothing to compile
    /// (benign is the default action).
    NoAttacks,
    /// Tree compilation blew the ternary entry budget.
    TooManyEntries(TooManyEntries),
    /// The window scenario could not be generated.
    Scenario(ScenarioError),
}

impl fmt::Display for RetrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrainError::EmptyWindow => write!(f, "labelled window is empty"),
            RetrainError::NoAttacks => {
                write!(f, "labelled window has no attack frames to compile")
            }
            RetrainError::TooManyEntries(e) => write!(f, "{e}"),
            RetrainError::Scenario(e) => write!(f, "{e}"),
        }
    }
}

impl Error for RetrainError {}

impl From<TooManyEntries> for RetrainError {
    fn from(e: TooManyEntries) -> Self {
        RetrainError::TooManyEntries(e)
    }
}

impl From<ScenarioError> for RetrainError {
    fn from(e: ScenarioError) -> Self {
        RetrainError::Scenario(e)
    }
}

/// A labelled retraining window plus provenance about how much of it the
/// dataplane's flight recorder corroborates.
#[derive(Debug, Clone)]
pub struct LabelledWindow {
    /// The labelled frames to learn from.
    pub trace: Trace,
    /// Window frames whose digest also appears in a recorded verdict
    /// sample — evidence the window matches live traffic.
    pub recorder_matched: usize,
}

/// The stage-2 relearning path, parameterised the same way the offline
/// trainer is: byte window, selected field offsets, tree and compile
/// configs. The offsets must match the live ACL table's
/// [`KeyLayout`](p4guard_dataplane::key::KeyLayout), since the compiled
/// entries key on exactly those bytes.
#[derive(Debug, Clone)]
pub struct Retrainer {
    /// Leading frame bytes the dataset captures per sample.
    pub window: usize,
    /// Frame byte offsets the tree learns over (the ACL key layout).
    pub offsets: Vec<usize>,
    /// Decision-tree hyperparameters.
    pub tree: TreeConfig,
    /// Tree → ternary compilation options.
    pub compile: CompileConfig,
}

impl Retrainer {
    /// A retrainer over `offsets` with default tree/compile settings.
    pub fn new(window: usize, offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "retrainer needs at least one offset");
        Retrainer {
            window,
            offsets,
            tree: TreeConfig::default(),
            compile: CompileConfig::default(),
        }
    }

    /// Assembles a labelled window by generating `scenario`'s trace and
    /// counting how many of its frames the flight recorder sampled (by
    /// frame digest). Fully deterministic for a fixed scenario seed.
    ///
    /// # Errors
    ///
    /// Returns [`RetrainError::Scenario`] when the scenario cannot be
    /// generated (e.g. an attack needs a device kind the fleet lacks).
    pub fn assemble_window(
        &self,
        scenario: &Scenario,
        recorder: &FlightRecorder,
    ) -> Result<LabelledWindow, RetrainError> {
        let trace = scenario.generate()?;
        let sampled: HashSet<u64> = recorder
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                Event::Verdict { digest, .. } => Some(*digest),
                _ => None,
            })
            .collect();
        let recorder_matched = trace
            .iter()
            .filter(|r| sampled.contains(&frame_digest(&r.frame)))
            .count();
        Ok(LabelledWindow {
            trace,
            recorder_matched,
        })
    }

    /// Learns a candidate ruleset from a labelled window: projects the
    /// byte dataset onto the configured offsets, fits a decision tree on
    /// the ground-truth labels, and compiles the attack paths to ternary
    /// entries.
    ///
    /// # Errors
    ///
    /// [`RetrainError::EmptyWindow`] / [`RetrainError::NoAttacks`] when
    /// the window cannot support learning, and
    /// [`RetrainError::TooManyEntries`] when compilation exceeds the
    /// configured entry budget.
    pub fn retrain(&self, window: &Trace) -> Result<RuleSet, RetrainError> {
        if window.is_empty() {
            return Err(RetrainError::EmptyWindow);
        }
        if window.attack_count() == 0 {
            return Err(RetrainError::NoAttacks);
        }
        let dataset = ByteDataset::from_trace(window, self.window);
        let projected = dataset.project(&self.offsets);
        let mut flat = Vec::with_capacity(projected.len() * self.offsets.len());
        for i in 0..projected.len() {
            flat.extend_from_slice(projected.sample(i));
        }
        let tree = DecisionTree::fit(self.offsets.len(), &flat, projected.labels(), self.tree);
        let compiled = compile_tree(&tree, &self.compile)?;
        Ok(compiled.ternary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_packet::AttackFamily;
    use p4guard_telemetry::FlightRecorder;
    use p4guard_traffic::{AttackEvent, Fleet, Scenario};

    fn scenario(family: AttackFamily, seed: u64) -> Scenario {
        Scenario {
            fleet: Fleet::mixed(),
            duration_s: 10.0,
            seed,
            benign_intensity: 1.0,
            attacks: vec![AttackEvent::new(family, 1.0, 9.0)],
        }
    }

    fn retrainer() -> Retrainer {
        // IPv4 protocol byte plus source/destination port bytes.
        Retrainer::new(64, vec![23, 34, 35, 36, 37])
    }

    #[test]
    fn retrain_learns_a_discriminative_ruleset() {
        let trace = scenario(AttackFamily::SynFlood, 11).generate().unwrap();
        let rules = retrainer().retrain(&trace).unwrap();
        assert!(!rules.is_empty(), "candidate has entries");

        let projected = ByteDataset::from_trace(&trace, 64).project(&[23, 34, 35, 36, 37]);
        let mut hit = 0usize;
        let mut false_pos = 0usize;
        let mut attacks = 0usize;
        let mut benign = 0usize;
        for i in 0..projected.len() {
            let class = rules.classify(projected.sample(i));
            if projected.labels()[i] == 1 {
                attacks += 1;
                hit += usize::from(class == 1);
            } else {
                benign += 1;
                false_pos += usize::from(class == 1);
            }
        }
        assert!(attacks > 0 && benign > 0);
        assert!(hit * 10 >= attacks * 7, "recall {hit}/{attacks} below 0.7");
        assert!(
            false_pos * 10 <= benign * 2,
            "false positives {false_pos}/{benign} above 0.2"
        );
    }

    #[test]
    fn retrain_is_deterministic() {
        let trace = scenario(AttackFamily::UdpFlood, 5).generate().unwrap();
        let a = retrainer().retrain(&trace).unwrap();
        let b = retrainer().retrain(&trace).unwrap();
        assert!(a.diff(&b).is_empty(), "same window, same candidate");
    }

    #[test]
    fn empty_and_benign_windows_are_errors() {
        let r = retrainer();
        assert_eq!(r.retrain(&Trace::new()), Err(RetrainError::EmptyWindow));
        let benign = Scenario::benign_only(Fleet::mixed(), 5.0, 3)
            .generate()
            .unwrap();
        assert_eq!(r.retrain(&benign), Err(RetrainError::NoAttacks));
    }

    #[test]
    fn assemble_window_counts_recorder_overlap() {
        let sc = scenario(AttackFamily::MiraiScan, 21);
        let trace = sc.generate().unwrap();
        let recorder = FlightRecorder::new(64, 1, 0);
        // Record verdicts for a handful of real window frames plus one
        // frame that is not in the window.
        for r in trace.iter().take(5) {
            recorder.record(Event::Verdict {
                verdict: "forward".to_string(),
                digest: frame_digest(&r.frame),
                len: r.frame.len(),
                shard: 0,
                version: 1,
                matched_stage: None,
                matched_rank: None,
            });
        }
        recorder.record(Event::Verdict {
            verdict: "drop".to_string(),
            digest: 0xdead_beef,
            len: 60,
            shard: 0,
            version: 1,
            matched_stage: None,
            matched_rank: None,
        });
        let window = retrainer().assemble_window(&sc, &recorder).unwrap();
        assert_eq!(window.trace.len(), trace.len());
        assert!(
            window.recorder_matched >= 5,
            "recorded digests found in the window"
        );
    }
}
