//! The closed-loop rollout engine: drift → retrain → shadow → canary →
//! promote, with automatic rollback when a canary guardrail trips.
//!
//! [`AdaptEngine::step`] is called at *drained checkpoints* — moments
//! where every dispatched frame has been processed and the telemetry
//! registry is caught up (the shard workers flush under the stats lock,
//! so polling [`Gateway::snapshot`] for the expected `received` total is
//! enough). Because every input the engine looks at (counter deltas,
//! mirror samples, scenario traces) is deterministic at such checkpoints,
//! the whole loop is replayable: same seed, same decisions, same
//! published versions.
//!
//! Rollback restores **both** halves of the dataplane state: the shards'
//! pipeline cells (via
//! [`ControlPlane::rollback_to`], which republishes the retained baseline
//! snapshot) and the mutable switch tables (by reinstalling the baseline
//! [`RuleSet`] kept in the engine's deployment history), so a later
//! publish compiles the pre-canary rules again.

use crate::drift::{DriftConfig, DriftMonitor};
use crate::retrain::{RetrainError, Retrainer};
use crate::shadow::ShadowScore;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::{ControlPlane, PublishError, PublishReport};
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::pipeline::ReadPipeline;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, MatchSpec, Table, TableError};
use p4guard_gateway::{Gateway, GatewaySnapshot};
use p4guard_rules::RuleSet;
use p4guard_telemetry::{control_trace_id, Counter, Event, Gauge, SpanRecord, Telemetry};
use p4guard_traffic::Scenario;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Rulesets (with their published versions) the engine remembers for
/// rollback; matches the control plane's snapshot history depth.
const DEPLOY_HISTORY_CAP: usize = 16;

/// Tuning for the whole adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Drift-detector thresholds.
    pub drift: DriftConfig,
    /// Switch stage holding the learned ACL.
    pub stage: usize,
    /// Mirror-tap sampling stride while shadowing (1 in N frames).
    pub mirror_stride: u64,
    /// Mirror-tap channel capacity.
    pub mirror_capacity: usize,
    /// Mirrored samples required before the shadow gate decides.
    pub shadow_min_samples: u64,
    /// Reject the candidate when its shadow drop rate exceeds this.
    pub shadow_max_drop_rate: f64,
    /// Shards that receive the candidate during canary (clamped so at
    /// least one non-canary shard remains whenever the gateway has more
    /// than one).
    pub canary_shards: usize,
    /// Frames the canary (and control) shards must each process before
    /// the guardrails decide.
    pub min_canary_frames: u64,
    /// Roll back when the canary shards' drop rate exceeds the control
    /// shards' by more than this.
    pub guardrail_max_drop_increase: f64,
    /// Optional latency guardrail: roll back when the canary shards' p99
    /// exceeds the control shards' p99 by more than this factor.
    /// Histograms are cumulative since gateway start, so this is a
    /// coarse sanity bound, not a precise delta test.
    pub guardrail_max_p99_factor: Option<f64>,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            drift: DriftConfig::default(),
            stage: 0,
            mirror_stride: 4,
            mirror_capacity: 4096,
            shadow_min_samples: 64,
            shadow_max_drop_rate: 0.9,
            canary_shards: 1,
            min_canary_frames: 256,
            guardrail_max_drop_increase: 0.25,
            guardrail_max_p99_factor: None,
        }
    }
}

/// What one [`AdaptEngine::step`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Stable, no drift.
    Idle,
    /// Drift fired but retraining reproduced the active ruleset.
    CandidateUnchanged,
    /// A candidate entered shadow evaluation (`reason` says why).
    ShadowStarted {
        /// Drift signal or proposal reason that produced the candidate.
        reason: String,
    },
    /// Shadowing, below the sample quorum.
    ShadowProgress {
        /// Mirror samples scored so far.
        samples: u64,
    },
    /// The shadow gate rejected the candidate.
    ShadowRejected {
        /// The candidate's shadow drop rate.
        drop_rate: f64,
    },
    /// The candidate was published to the canary shards.
    CanaryStarted {
        /// The candidate's published version.
        version: u64,
        /// Canary shard indices.
        shards: Vec<usize>,
    },
    /// Canarying, below the frame quorum.
    CanaryProgress {
        /// Frames the canary shards processed since canary start.
        canary_frames: u64,
        /// Frames the control shards processed since canary start.
        control_frames: u64,
    },
    /// The candidate was promoted fleet-wide.
    Promoted {
        /// The promoted version.
        version: u64,
    },
    /// A guardrail tripped; the previous ruleset is back everywhere.
    RolledBack {
        /// The candidate version that was rolled back.
        from: u64,
        /// The restored baseline version.
        to: u64,
    },
}

/// Errors from engine operations.
#[derive(Debug)]
pub enum AdaptError {
    /// No baseline installed yet ([`AdaptEngine::install_initial`]).
    NoBaseline,
    /// The operation needs the engine to be in the stable phase.
    NotStable(&'static str),
    /// A proposed candidate's key width does not match the ACL layout.
    WidthMismatch {
        /// Offsets in the engine's key layout.
        expected: usize,
        /// The candidate's key width.
        got: usize,
    },
    /// A switch-table operation failed.
    Table(TableError),
    /// A publish/rollback failed.
    Publish(PublishError),
    /// Retraining failed.
    Retrain(RetrainError),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::NoBaseline => write!(f, "no baseline ruleset installed"),
            AdaptError::NotStable(phase) => {
                write!(f, "operation requires the stable phase (currently {phase})")
            }
            AdaptError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "candidate key width {got} != ACL layout width {expected}"
                )
            }
            AdaptError::Table(e) => write!(f, "table operation failed: {e}"),
            AdaptError::Publish(e) => write!(f, "publish failed: {e}"),
            AdaptError::Retrain(e) => write!(f, "retrain failed: {e}"),
        }
    }
}

impl Error for AdaptError {}

impl From<TableError> for AdaptError {
    fn from(e: TableError) -> Self {
        AdaptError::Table(e)
    }
}

impl From<PublishError> for AdaptError {
    fn from(e: PublishError) -> Self {
        AdaptError::Publish(e)
    }
}

impl From<RetrainError> for AdaptError {
    fn from(e: RetrainError) -> Self {
        AdaptError::Retrain(e)
    }
}

/// Which part of the loop the engine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Watching for drift.
    Stable,
    /// Scoring a candidate on mirrored traffic.
    Shadowing,
    /// Candidate live on a shard subset, guardrails watching.
    Canarying,
}

impl PhaseKind {
    fn name(self) -> &'static str {
        match self {
            PhaseKind::Stable => "stable",
            PhaseKind::Shadowing => "shadowing",
            PhaseKind::Canarying => "canarying",
        }
    }

    fn gauge_value(self) -> f64 {
        match self {
            PhaseKind::Stable => 0.0,
            PhaseKind::Shadowing => 1.0,
            PhaseKind::Canarying => 2.0,
        }
    }
}

enum Phase {
    Stable,
    Shadowing {
        candidate: RuleSet,
        pipeline: Arc<ReadPipeline>,
        live: Arc<ReadPipeline>,
        rx: Receiver<Bytes>,
        score: ShadowScore,
        baseline_version: u64,
        reason: String,
    },
    Canarying {
        candidate: RuleSet,
        candidate_version: u64,
        baseline_version: u64,
        shards: Vec<usize>,
        start: GatewaySnapshot,
        /// Pre-canary fleet drop rate, used as the guardrail reference
        /// when every shard is canaried (no live control group).
        fallback_reference: f64,
    },
}

impl Phase {
    fn kind(&self) -> PhaseKind {
        match self {
            Phase::Stable => PhaseKind::Stable,
            Phase::Shadowing { .. } => PhaseKind::Shadowing,
            Phase::Canarying { .. } => PhaseKind::Canarying,
        }
    }
}

/// Pre-registered `adapt_*` metric handles.
struct AdaptMetrics {
    retrains: Counter,
    shadow_samples: Counter,
    shadow_disagreements: Counter,
    shadow_rejects: Counter,
    promoted: Counter,
    rolled_back: Counter,
    phase: Gauge,
}

impl AdaptMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let r = &telemetry.registry;
        AdaptMetrics {
            retrains: r.counter(
                "adapt_retrains_total",
                "Candidate rulesets retrained after drift",
                &[],
            ),
            shadow_samples: r.counter(
                "adapt_shadow_samples_total",
                "Mirrored frames scored by shadow evaluation",
                &[],
            ),
            shadow_disagreements: r.counter(
                "adapt_shadow_disagreements_total",
                "Shadow samples where candidate and live verdicts differ",
                &[],
            ),
            shadow_rejects: r.counter(
                "adapt_candidate_rejects_total",
                "Candidates rejected, by gate",
                &[("gate", "shadow")],
            ),
            promoted: r.counter(
                "adapt_rollouts_total",
                "Completed rollouts, by outcome",
                &[("outcome", "promoted")],
            ),
            rolled_back: r.counter(
                "adapt_rollouts_total",
                "Completed rollouts, by outcome",
                &[("outcome", "rolled_back")],
            ),
            phase: r.gauge(
                "adapt_phase",
                "Adaptation loop phase (0=stable, 1=shadowing, 2=canarying)",
                &[],
            ),
        }
    }
}

/// The adaptation loop. One engine drives one [`ControlPlane`] /
/// [`Gateway`] pair; see the crate docs for the full lifecycle.
pub struct AdaptEngine {
    config: AdaptConfig,
    control: ControlPlane,
    telemetry: Arc<Telemetry>,
    retrainer: Retrainer,
    /// Deterministic source of labelled retraining windows (stands in
    /// for a live labelled capture).
    window_source: Scenario,
    monitor: DriftMonitor,
    phase: Phase,
    /// `(published version, ruleset)` of every baseline/promotion, newest
    /// last.
    deployed: Vec<(u64, RuleSet)>,
    metrics: AdaptMetrics,
    /// When the engine entered its current phase; transition spans cover
    /// the phase being left.
    phase_entered: Instant,
}

impl AdaptEngine {
    /// Builds an engine around an existing control plane and telemetry
    /// bundle. Call [`AdaptEngine::install_initial`] (after the gateway
    /// has started) to publish the first baseline.
    pub fn new(
        control: ControlPlane,
        telemetry: Arc<Telemetry>,
        retrainer: Retrainer,
        window_source: Scenario,
        config: AdaptConfig,
    ) -> Self {
        let metrics = AdaptMetrics::new(&telemetry);
        metrics.phase.set(PhaseKind::Stable.gauge_value());
        AdaptEngine {
            monitor: DriftMonitor::new(config.drift),
            config,
            control,
            telemetry,
            retrainer,
            window_source,
            phase: Phase::Stable,
            deployed: Vec::new(),
            metrics,
            phase_entered: Instant::now(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.config
    }

    /// Current loop phase.
    pub fn phase(&self) -> PhaseKind {
        self.phase.kind()
    }

    /// The drift monitor (for inspection in tests and experiments).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Version of the newest promoted (or initial) ruleset.
    pub fn active_version(&self) -> Option<u64> {
        self.deployed.last().map(|(v, _)| *v)
    }

    /// The newest promoted (or initial) ruleset.
    pub fn active_ruleset(&self) -> Option<&RuleSet> {
        self.deployed.last().map(|(_, r)| r)
    }

    /// Installs and publishes the first baseline ruleset fleet-wide,
    /// seeding the deployment history. Call once, after the gateway has
    /// subscribed its cells.
    ///
    /// # Errors
    ///
    /// Propagates table errors from installing into the ACL stage.
    pub fn install_initial(&mut self, ruleset: &RuleSet) -> Result<PublishReport, AdaptError> {
        self.check_width(ruleset)?;
        self.control.clear_stage(self.config.stage)?;
        self.control
            .install_ruleset(self.config.stage, ruleset, Action::Drop)?;
        let report = self.control.publish_audited(None, false);
        self.remember(report.version, ruleset.clone());
        Ok(report)
    }

    /// Proposes a candidate directly (operator override or an external
    /// trainer), bypassing drift detection and retraining but going
    /// through the same shadow → canary → promote/rollback lifecycle.
    ///
    /// # Errors
    ///
    /// [`AdaptError::NotStable`] unless the engine is stable;
    /// [`AdaptError::WidthMismatch`] for a candidate that does not fit
    /// the ACL key layout.
    pub fn propose(
        &mut self,
        gateway: &Gateway,
        candidate: RuleSet,
        reason: &str,
    ) -> Result<StepOutcome, AdaptError> {
        if !matches!(self.phase, Phase::Stable) {
            return Err(AdaptError::NotStable(self.phase.kind().name()));
        }
        self.check_width(&candidate)?;
        if self.deployed.is_empty() {
            return Err(AdaptError::NoBaseline);
        }
        self.enter_shadow(gateway, candidate, format!("proposed:{reason}"))
    }

    /// Advances the loop one checkpoint. Call only when the gateway is
    /// drained (all dispatched frames processed), so counter deltas and
    /// mirror samples are exact.
    ///
    /// # Errors
    ///
    /// [`AdaptError::NoBaseline`] before [`AdaptEngine::install_initial`];
    /// otherwise propagates table/publish/retrain failures.
    pub fn step(&mut self, gateway: &Gateway) -> Result<StepOutcome, AdaptError> {
        if self.deployed.is_empty() {
            return Err(AdaptError::NoBaseline);
        }
        match std::mem::replace(&mut self.phase, Phase::Stable) {
            Phase::Stable => self.step_stable(gateway),
            Phase::Shadowing {
                candidate,
                pipeline,
                live,
                rx,
                score,
                baseline_version,
                reason,
            } => self.step_shadowing(
                gateway,
                candidate,
                pipeline,
                live,
                rx,
                score,
                baseline_version,
                reason,
            ),
            Phase::Canarying {
                candidate,
                candidate_version,
                baseline_version,
                shards,
                start,
                fallback_reference,
            } => self.step_canarying(
                gateway,
                candidate,
                candidate_version,
                baseline_version,
                shards,
                start,
                fallback_reference,
            ),
        }
    }

    fn step_stable(&mut self, gateway: &Gateway) -> Result<StepOutcome, AdaptError> {
        let Some(signal) = self.monitor.observe(&self.telemetry.registry) else {
            return Ok(StepOutcome::Idle);
        };
        let at_version = self.active_version().unwrap_or(0);
        self.telemetry.recorder.record(Event::Drift {
            metric: signal.metric.clone(),
            statistic: signal.statistic,
            threshold: signal.threshold,
            at_version,
        });
        self.telemetry
            .registry
            .counter(
                "adapt_drift_total",
                "Drift detections, by statistic",
                &[("metric", &signal.metric)],
            )
            .inc();
        let window = self
            .retrainer
            .assemble_window(&self.window_source, &self.telemetry.recorder)?;
        let candidate = self.retrainer.retrain(&window.trace)?;
        self.metrics.retrains.inc();
        let unchanged = self
            .active_ruleset()
            .map(|active| candidate.diff(active).is_empty())
            .unwrap_or(false);
        if unchanged {
            return Ok(StepOutcome::CandidateUnchanged);
        }
        self.enter_shadow(gateway, candidate, format!("drift:{}", signal.metric))
    }

    fn enter_shadow(
        &mut self,
        gateway: &Gateway,
        candidate: RuleSet,
        reason: String,
    ) -> Result<StepOutcome, AdaptError> {
        let pipeline = Arc::new(self.build_candidate_pipeline(&candidate)?);
        let live = gateway.cells()[0].load();
        let rx = gateway
            .mirror()
            .open(self.config.mirror_stride, self.config.mirror_capacity);
        let baseline_version = self.active_version().unwrap_or(0);
        self.telemetry.recorder.record(Event::Rollout {
            phase: "shadow_start".to_string(),
            version: 0,
            baseline: baseline_version,
            shards: Vec::new(),
            reason: reason.clone(),
            trace_id: self.rollout_trace_id(0, baseline_version),
        });
        self.set_phase(Phase::Shadowing {
            candidate,
            pipeline,
            live,
            rx,
            score: ShadowScore::default(),
            baseline_version,
            reason: reason.clone(),
        });
        Ok(StepOutcome::ShadowStarted { reason })
    }

    #[allow(clippy::too_many_arguments)]
    fn step_shadowing(
        &mut self,
        gateway: &Gateway,
        candidate: RuleSet,
        pipeline: Arc<ReadPipeline>,
        live: Arc<ReadPipeline>,
        rx: Receiver<Bytes>,
        mut score: ShadowScore,
        baseline_version: u64,
        reason: String,
    ) -> Result<StepOutcome, AdaptError> {
        let before_disagreements = score.disagreements;
        let drained = score.drain(&rx, &pipeline, &live);
        self.metrics.shadow_samples.add(drained);
        self.metrics
            .shadow_disagreements
            .add(score.disagreements - before_disagreements);
        if score.samples < self.config.shadow_min_samples {
            let samples = score.samples;
            self.set_phase(Phase::Shadowing {
                candidate,
                pipeline,
                live,
                rx,
                score,
                baseline_version,
                reason,
            });
            return Ok(StepOutcome::ShadowProgress { samples });
        }
        gateway.mirror().close();
        let drop_rate = score.candidate_drop_rate();
        if drop_rate > self.config.shadow_max_drop_rate {
            self.telemetry.recorder.record(Event::Rollout {
                phase: "shadow_reject".to_string(),
                version: 0,
                baseline: baseline_version,
                shards: Vec::new(),
                reason: format!(
                    "shadow drop rate {:.3} over {} samples exceeds {:.3}",
                    drop_rate, score.samples, self.config.shadow_max_drop_rate
                ),
                trace_id: self.rollout_trace_id(0, baseline_version),
            });
            self.metrics.shadow_rejects.inc();
            self.set_phase(Phase::Stable);
            self.monitor.reset();
            return Ok(StepOutcome::ShadowRejected { drop_rate });
        }
        self.enter_canary(gateway, candidate, baseline_version, reason)
    }

    fn enter_canary(
        &mut self,
        gateway: &Gateway,
        candidate: RuleSet,
        baseline_version: u64,
        reason: String,
    ) -> Result<StepOutcome, AdaptError> {
        let total_shards = gateway.config().shards;
        let canary_count = if total_shards > 1 {
            self.config.canary_shards.clamp(1, total_shards - 1)
        } else {
            1
        };
        let shards: Vec<usize> = (0..canary_count).collect();
        self.control.clear_stage(self.config.stage)?;
        self.control
            .install_ruleset(self.config.stage, &candidate, Action::Drop)?;
        let report = self.control.publish_to(&shards)?;
        let start = gateway.snapshot();
        let fallback_reference = if start.totals.received > 0 {
            start.totals.dropped as f64 / start.totals.received as f64
        } else {
            0.0
        };
        self.telemetry.recorder.record(Event::Rollout {
            phase: "canary_start".to_string(),
            version: report.version,
            baseline: baseline_version,
            shards: shards.clone(),
            reason,
            trace_id: self.rollout_trace_id(report.version, baseline_version),
        });
        self.set_phase(Phase::Canarying {
            candidate,
            candidate_version: report.version,
            baseline_version,
            shards: shards.clone(),
            start,
            fallback_reference,
        });
        Ok(StepOutcome::CanaryStarted {
            version: report.version,
            shards,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn step_canarying(
        &mut self,
        gateway: &Gateway,
        candidate: RuleSet,
        candidate_version: u64,
        baseline_version: u64,
        shards: Vec<usize>,
        start: GatewaySnapshot,
        fallback_reference: f64,
    ) -> Result<StepOutcome, AdaptError> {
        let now = gateway.snapshot();
        let mut canary = (0u64, 0u64); // (received, dropped) deltas
        let mut control = (0u64, 0u64);
        let mut canary_p99 = std::time::Duration::ZERO;
        let mut control_p99 = std::time::Duration::ZERO;
        for s in 0..now.shards.len() {
            let recv = now.shards[s].counters.received - start.shards[s].counters.received;
            let drop = now.shards[s].counters.dropped - start.shards[s].counters.dropped;
            let p99 = now.shards[s].latency.quantile(0.99);
            if shards.contains(&s) {
                canary.0 += recv;
                canary.1 += drop;
                canary_p99 = canary_p99.max(p99);
            } else {
                control.0 += recv;
                control.1 += drop;
                control_p99 = control_p99.max(p99);
            }
        }
        let has_control = now.shards.len() > shards.len();
        let quorum = canary.0 >= self.config.min_canary_frames
            && (!has_control || control.0 >= self.config.min_canary_frames);
        if !quorum {
            self.set_phase(Phase::Canarying {
                candidate,
                candidate_version,
                baseline_version,
                shards,
                start,
                fallback_reference,
            });
            return Ok(StepOutcome::CanaryProgress {
                canary_frames: canary.0,
                control_frames: control.0,
            });
        }

        let canary_rate = canary.1 as f64 / canary.0 as f64;
        let reference_rate = if has_control && control.0 > 0 {
            control.1 as f64 / control.0 as f64
        } else {
            fallback_reference
        };
        let mut tripped: Option<String> = None;
        if canary_rate > reference_rate + self.config.guardrail_max_drop_increase {
            tripped = Some(format!(
                "canary drop rate {canary_rate:.3} exceeds reference {reference_rate:.3} by more than {:.3}",
                self.config.guardrail_max_drop_increase
            ));
        } else if let Some(factor) = self.config.guardrail_max_p99_factor {
            if has_control
                && control_p99 > std::time::Duration::ZERO
                && canary_p99.as_secs_f64() > control_p99.as_secs_f64() * factor
            {
                tripped = Some(format!(
                    "canary p99 {canary_p99:?} exceeds control p99 {control_p99:?} by more than {factor:.1}x"
                ));
            }
        }

        if let Some(reason) = tripped {
            // Restore the shards' cells to the retained baseline snapshot
            // (records the `rolled_back` audit event) ...
            self.control.rollback_to(baseline_version, &reason)?;
            // ... and the mutable switch tables to the baseline rules, so
            // the next publish compiles the pre-canary state.
            let baseline = self
                .deployed
                .iter()
                .rev()
                .find(|(v, _)| *v == baseline_version)
                .map(|(_, r)| r.clone())
                .ok_or(AdaptError::NoBaseline)?;
            self.control.clear_stage(self.config.stage)?;
            self.control
                .install_ruleset(self.config.stage, &baseline, Action::Drop)?;
            self.metrics.rolled_back.inc();
            self.set_phase(Phase::Stable);
            self.monitor.reset();
            return Ok(StepOutcome::RolledBack {
                from: candidate_version,
                to: baseline_version,
            });
        }

        self.control.republish(candidate_version)?;
        self.telemetry.recorder.record(Event::Rollout {
            phase: "promoted".to_string(),
            version: candidate_version,
            baseline: baseline_version,
            shards: Vec::new(),
            reason: format!(
                "canary healthy: drop rate {canary_rate:.3} vs reference {reference_rate:.3}"
            ),
            trace_id: self.rollout_trace_id(candidate_version, baseline_version),
        });
        self.remember(candidate_version, candidate);
        self.metrics.promoted.inc();
        self.set_phase(Phase::Stable);
        self.monitor.reset();
        Ok(StepOutcome::Promoted {
            version: candidate_version,
        })
    }

    /// Builds an unpublished (version 0) pipeline with the candidate
    /// installed, shaped like the live ACL: same parser window, same key
    /// layout, one ternary stage.
    fn build_candidate_pipeline(&self, candidate: &RuleSet) -> Result<ReadPipeline, AdaptError> {
        let parser = ParserSpec::raw_window(self.retrainer.window, 14);
        let mut sw = Switch::new("adapt-candidate", parser, 1);
        let stage = sw.add_stage(Table::new(
            "acl",
            MatchKind::Ternary,
            KeyLayout::new(self.retrainer.offsets.clone()),
            candidate.len().max(1),
            Action::NoOp,
        ));
        for entry in candidate.entries() {
            sw.stage_mut(stage).insert(
                MatchSpec::Ternary {
                    value: entry.value.clone(),
                    mask: entry.mask.clone(),
                },
                Action::Drop,
                entry.priority,
            )?;
        }
        Ok(sw.read_pipeline(0))
    }

    fn check_width(&self, ruleset: &RuleSet) -> Result<(), AdaptError> {
        if ruleset.key_width() != self.retrainer.offsets.len() {
            return Err(AdaptError::WidthMismatch {
                expected: self.retrainer.offsets.len(),
                got: ruleset.key_width(),
            });
        }
        Ok(())
    }

    fn remember(&mut self, version: u64, ruleset: RuleSet) {
        self.deployed.push((version, ruleset));
        if self.deployed.len() > DEPLOY_HISTORY_CAP {
            self.deployed.remove(0);
        }
    }

    fn set_phase(&mut self, phase: Phase) {
        let now = Instant::now();
        if self.telemetry.traces.enabled() && phase.kind() != self.phase.kind() {
            // One span per transition, covering the phase being left, so a
            // rollout's trace reads as the sequence of adaptation states
            // the candidate moved through.
            let traces = &self.telemetry.traces;
            let duration_ns = u64::try_from(now.duration_since(self.phase_entered).as_nanos())
                .unwrap_or(u64::MAX);
            let end = traces.now_ns();
            traces.record(SpanRecord {
                trace_id: control_trace_id(self.active_version().unwrap_or(0)),
                span_id: traces.next_span_id(),
                parent_id: None,
                name: format!("adapt:{}", self.phase.kind().name()),
                start_ns: end.saturating_sub(duration_ns),
                duration_ns,
                meta: vec![("to".to_string(), phase.kind().name().to_string())],
            });
        }
        self.phase_entered = now;
        self.metrics.phase.set(phase.kind().gauge_value());
        self.phase = phase;
    }

    /// Control-plane trace id carried by a rollout audit event: derived
    /// from the candidate `version` when it is published, else from the
    /// `baseline` it is judged against. `None` when tracing is off.
    fn rollout_trace_id(&self, version: u64, baseline: u64) -> Option<u64> {
        self.telemetry
            .traces
            .enabled()
            .then(|| control_trace_id(if version != 0 { version } else { baseline }))
    }
}
