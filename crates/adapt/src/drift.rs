//! Drift detection over telemetry counters.
//!
//! A [`DriftMonitor`] is fed the shared metrics [`Registry`] at
//! checkpoints (typically after the gateway has drained a traffic chunk).
//! Each observation turns the cumulative counters into a **delta** since
//! the previous checkpoint and runs two deterministic tests on it:
//!
//! - a **chi-squared** goodness-of-fit test of the verdict-category mix
//!   (forwarded + per-reason drops) against a baseline mix captured during
//!   a warmup period, and
//! - a two-sided **Page–Hinkley** test on the scalar drop-rate series.
//!
//! Both statistics are pure functions of the counter deltas, so replaying
//! the same trace through the same ruleset produces the same firing
//! decision every run — no clocks, no randomness.

use p4guard_telemetry::Registry;
use std::collections::BTreeMap;

/// Thresholds and warmup sizing for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Checkpoints whose deltas build the baseline mix before any test
    /// runs.
    pub warmup_checks: u32,
    /// Minimum frames a checkpoint delta needs before it is evaluated;
    /// smaller deltas accumulate into the next checkpoint.
    pub min_frames: u64,
    /// Page–Hinkley drift allowance `δ` (tolerated per-step rate change).
    pub ph_delta: f64,
    /// Page–Hinkley firing threshold `λ` on the cumulative deviation.
    pub ph_lambda: f64,
    /// Chi-squared firing threshold (compare against the critical value
    /// for `categories - 1` degrees of freedom).
    pub chi_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            warmup_checks: 2,
            min_frames: 200,
            ph_delta: 0.01,
            ph_lambda: 0.5,
            chi_threshold: 30.0,
        }
    }
}

/// A fired drift decision: which statistic crossed which threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSignal {
    /// `"chi_squared"` or `"page_hinkley"`.
    pub metric: String,
    /// The statistic's value at the firing checkpoint.
    pub statistic: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
}

/// Cumulative verdict-category counts extracted from the registry.
#[derive(Debug, Clone, Default, PartialEq)]
struct CategoryCounts(BTreeMap<String, u64>);

impl CategoryCounts {
    /// Reads the current totals. Categories are `forward` plus one
    /// `drop:<reason>` per drop reason, summed across shards.
    /// Backpressure drops are excluded: they happen before a frame
    /// reaches any pipeline, so they say nothing about the ruleset.
    fn read(registry: &Registry) -> CategoryCounts {
        let mut counts = BTreeMap::new();
        counts.insert(
            "forward".to_string(),
            registry.family_sum("p4guard_frames_forwarded_total"),
        );
        for (name, labels, value) in registry.counter_snapshot() {
            if name != "p4guard_drops_total" {
                continue;
            }
            let Some(reason) = labels
                .iter()
                .find(|(k, _)| k == "reason")
                .map(|(_, v)| v.clone())
            else {
                continue;
            };
            if reason == "backpressure" {
                continue;
            }
            *counts.entry(format!("drop:{reason}")).or_insert(0) += value;
        }
        CategoryCounts(counts)
    }

    /// Per-category saturating difference `self - earlier`.
    fn delta(&self, earlier: &CategoryCounts) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (k, &v) in &self.0 {
            let before = earlier.0.get(k).copied().unwrap_or(0);
            let d = v.saturating_sub(before);
            if d > 0 {
                out.insert(k.clone(), d);
            }
        }
        out
    }
}

/// Two-sided Page–Hinkley state over a scalar series.
#[derive(Debug, Clone, Default)]
struct PageHinkley {
    n: u64,
    mean: f64,
    /// Cumulative positive deviation and its running minimum (detects
    /// upward shifts).
    m_up: f64,
    min_up: f64,
    /// Cumulative negative deviation and its running minimum (detects
    /// downward shifts).
    m_down: f64,
    min_down: f64,
}

impl PageHinkley {
    /// Feeds one sample; returns the larger of the two one-sided
    /// statistics.
    fn observe(&mut self, x: f64, delta: f64) -> f64 {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.m_up += x - self.mean - delta;
        self.min_up = self.min_up.min(self.m_up);
        self.m_down += self.mean - x - delta;
        self.min_down = self.min_down.min(self.m_down);
        (self.m_up - self.min_up).max(self.m_down - self.min_down)
    }
}

/// Windowed drift detector over the registry's verdict counters. Feed it
/// with [`DriftMonitor::observe`] at drained checkpoints; it answers with
/// a [`DriftSignal`] when either test fires.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    last: CategoryCounts,
    warmup_seen: u32,
    baseline_counts: BTreeMap<String, u64>,
    /// Baseline category proportions, frozen after warmup.
    baseline: Option<BTreeMap<String, f64>>,
    ph: PageHinkley,
}

impl DriftMonitor {
    /// A monitor with no baseline yet; the first `warmup_checks`
    /// qualifying checkpoints build it.
    pub fn new(config: DriftConfig) -> Self {
        DriftMonitor {
            config,
            last: CategoryCounts::default(),
            warmup_seen: 0,
            baseline_counts: BTreeMap::new(),
            baseline: None,
            ph: PageHinkley::default(),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Whether the warmup baseline is frozen and tests are active.
    pub fn warmed_up(&self) -> bool {
        self.baseline.is_some()
    }

    /// Checkpoints observed so far (including warmup).
    pub fn checks(&self) -> u32 {
        self.warmup_seen
    }

    /// Drops the baseline and test state while keeping the cumulative
    /// counter position, so the next checkpoints re-learn the mix of the
    /// new regime. Call after a promote or rollback changed the ruleset.
    pub fn reset(&mut self) {
        self.warmup_seen = 0;
        self.baseline_counts.clear();
        self.baseline = None;
        self.ph = PageHinkley::default();
    }

    /// Observes one checkpoint. Returns `Some` when a test fired;
    /// checkpoints with fewer than [`DriftConfig::min_frames`] new frames
    /// are deferred (their delta folds into the next call).
    pub fn observe(&mut self, registry: &Registry) -> Option<DriftSignal> {
        let now = CategoryCounts::read(registry);
        let delta = now.delta(&self.last);
        let total: u64 = delta.values().sum();
        if total < self.config.min_frames {
            return None;
        }
        self.last = now;
        self.warmup_seen += 1;

        let Some(baseline) = &self.baseline else {
            for (k, v) in &delta {
                *self.baseline_counts.entry(k.clone()).or_insert(0) += v;
            }
            if self.warmup_seen >= self.config.warmup_checks {
                let base_total: u64 = self.baseline_counts.values().sum();
                if base_total > 0 {
                    self.baseline = Some(
                        self.baseline_counts
                            .iter()
                            .map(|(k, &v)| (k.clone(), v as f64 / base_total as f64))
                            .collect(),
                    );
                }
            }
            return None;
        };

        // Chi-squared over the union of baseline and observed categories.
        // A category absent from the baseline gets a floor expectation, so
        // brand-new verdict mixes (e.g. drops appearing where none were)
        // register as maximally surprising instead of dividing by zero.
        let mut chi = 0.0f64;
        let mut keys: Vec<&String> = baseline.keys().collect();
        for k in delta.keys() {
            if !baseline.contains_key(k) {
                keys.push(k);
            }
        }
        for k in keys {
            let expected = (baseline.get(k).copied().unwrap_or(0.0) * total as f64).max(0.5);
            let observed = delta.get(k).copied().unwrap_or(0) as f64;
            chi += (observed - expected).powi(2) / expected;
        }
        if chi > self.config.chi_threshold {
            return Some(DriftSignal {
                metric: "chi_squared".to_string(),
                statistic: chi,
                threshold: self.config.chi_threshold,
            });
        }

        // Page–Hinkley on the drop-rate series.
        let drops: u64 = delta
            .iter()
            .filter(|(k, _)| k.starts_with("drop:"))
            .map(|(_, &v)| v)
            .sum();
        let rate = drops as f64 / total as f64;
        let ph = self.ph.observe(rate, self.config.ph_delta);
        if ph > self.config.ph_lambda {
            return Some(DriftSignal {
                metric: "page_hinkley".to_string(),
                statistic: ph,
                threshold: self.config.ph_lambda,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_telemetry::Registry;

    /// Drives the registry like a shard sink would: bulk-add forwarded /
    /// dropped counts, then run one checkpoint.
    fn feed(registry: &Registry, forwarded: u64, rule_drops: u64) {
        registry
            .counter("p4guard_frames_forwarded_total", "t", &[("shard", "0")])
            .add(forwarded);
        registry
            .counter(
                "p4guard_drops_total",
                "t",
                &[("shard", "0"), ("reason", "rule_drop")],
            )
            .add(rule_drops);
    }

    fn monitor(chi: f64, lambda: f64) -> DriftMonitor {
        DriftMonitor::new(DriftConfig {
            warmup_checks: 2,
            min_frames: 100,
            ph_delta: 0.01,
            ph_lambda: lambda,
            chi_threshold: chi,
        })
    }

    #[test]
    fn stationary_mix_never_fires() {
        let registry = Registry::new();
        let mut m = monitor(30.0, 0.5);
        for _ in 0..10 {
            feed(&registry, 800, 200);
            assert_eq!(m.observe(&registry), None);
        }
        assert!(m.warmed_up());
    }

    #[test]
    fn mix_flip_fires_chi_squared() {
        let registry = Registry::new();
        let mut m = monitor(30.0, 1e9);
        feed(&registry, 800, 200);
        assert_eq!(m.observe(&registry), None);
        feed(&registry, 800, 200);
        assert_eq!(m.observe(&registry), None); // warmup complete
                                                // The drop mix collapses: the attack the rules caught went away
                                                // and a new (uncaught) one replaced it.
        feed(&registry, 1000, 0);
        let signal = m.observe(&registry).expect("chi-squared fires");
        assert_eq!(signal.metric, "chi_squared");
        assert!(signal.statistic > signal.threshold);
    }

    #[test]
    fn sustained_rate_shift_fires_page_hinkley() {
        let registry = Registry::new();
        // Chi threshold sky-high so only Page–Hinkley can fire.
        let mut m = monitor(1e12, 0.3);
        for _ in 0..4 {
            feed(&registry, 900, 100);
            assert_eq!(m.observe(&registry), None);
        }
        let mut fired = None;
        for _ in 0..20 {
            feed(&registry, 500, 500);
            if let Some(s) = m.observe(&registry) {
                fired = Some(s);
                break;
            }
        }
        let signal = fired.expect("page-hinkley fires on a sustained shift");
        assert_eq!(signal.metric, "page_hinkley");
    }

    #[test]
    fn small_deltas_accumulate_until_min_frames() {
        let registry = Registry::new();
        let mut m = monitor(30.0, 0.5);
        feed(&registry, 60, 0);
        assert_eq!(m.observe(&registry), None);
        assert_eq!(m.checks(), 0, "below min_frames: checkpoint deferred");
        feed(&registry, 60, 0);
        assert_eq!(m.observe(&registry), None);
        assert_eq!(m.checks(), 1, "accumulated delta crossed min_frames");
    }

    #[test]
    fn reset_relearns_the_baseline() {
        let registry = Registry::new();
        let mut m = monitor(30.0, 1e9);
        feed(&registry, 800, 200);
        m.observe(&registry);
        feed(&registry, 800, 200);
        m.observe(&registry);
        assert!(m.warmed_up());
        m.reset();
        assert!(!m.warmed_up());
        // The new regime (all-forward) becomes the baseline instead of
        // firing against the old one.
        feed(&registry, 1000, 0);
        assert_eq!(m.observe(&registry), None);
        feed(&registry, 1000, 0);
        assert_eq!(m.observe(&registry), None);
        assert!(m.warmed_up());
        feed(&registry, 1000, 0);
        assert_eq!(m.observe(&registry), None, "stationary after reset");
    }
}
