//! Attack traffic generators, one per [`AttackFamily`].
//!
//! Each generator reproduces the byte-level signature structure of its
//! real-world counterpart (the properties public IoT attack traces expose),
//! so the learning pipeline faces the same separation problem the paper's
//! datasets pose: a handful of header bytes carry the signal, and the
//! informative bytes differ per family and protocol.

use crate::benign::{push, TcpSession};
use crate::device::Device;
use crate::util::{ephemeral_port, flow_id, hex_string, jittered, zwire_flow_id};
use p4guard_packet::coap::{CoapCode, CoapMessage, CoapType};
use p4guard_packet::dns::{DnsMessage, QTYPE_TXT};
use p4guard_packet::modbus::{ModbusAdu, ModbusFunction};
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::trace::{AttackFamily, Label, Trace};
use p4guard_packet::zwire::{ZWireFrame, ZWireType};
use p4guard_packet::{coap, dns, modbus, mqtt, MacAddr, PacketBuilder};
use rand::Rng;
use std::net::Ipv4Addr;

fn random_public_ip(rng: &mut impl Rng) -> Ipv4Addr {
    // Avoid the simulated LAN (192.168.1.0/24) and multicast/reserved tops.
    loop {
        let ip = Ipv4Addr::new(
            rng.gen_range(11..=203),
            rng.gen(),
            rng.gen(),
            rng.gen_range(1..=254),
        );
        if !(ip.octets()[0] == 192 && ip.octets()[1] == 168) {
            return ip;
        }
    }
}

/// Mirai-style scanning: the infected device SYN-probes telnet across the
/// address space. Reproduces the canonical Mirai fingerprint: destination
/// port 23 (with some 2323), and the TCP sequence number set to the
/// destination address.
#[derive(Debug, Clone, Copy)]
pub struct MiraiScan {
    /// Probe rate, packets per second.
    pub rate_pps: f64,
}

impl Default for MiraiScan {
    fn default() -> Self {
        MiraiScan { rate_pps: 40.0 }
    }
}

impl MiraiScan {
    /// Emits the scan from `infected` over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        infected: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::MiraiScan);
        let mut builder = PacketBuilder::new(infected.mac, MacAddr::BROADCAST);
        let mut t = start_s;
        while t < end_s {
            let target = random_public_ip(rng);
            let dst_port = if rng.gen::<f64>() < 0.9 { 23 } else { 2323 };
            let sport = ephemeral_port(rng);
            let mut hdr = TcpHeader::new(
                sport,
                dst_port,
                u32::from(target), // the Mirai signature
                0,
                TcpFlags::SYN,
            );
            hdr.window = 0x0010;
            builder.ttl(rng.gen_range(32..=64)).ip_id(rng.gen());
            push(
                trace,
                t,
                builder.tcp(infected.ip, target, hdr, &[]),
                label,
                flow_id(infected.ip, target, 6, sport, dst_port),
            );
            t += jittered(1.0 / self.rate_pps, 0.3, rng);
        }
    }
}

/// Telnet credential brute forcing against one victim.
#[derive(Debug, Clone, Copy)]
pub struct BruteForce {
    /// Connection attempts per second.
    pub attempts_per_s: f64,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce {
            attempts_per_s: 4.0,
        }
    }
}

impl BruteForce {
    /// Emits attempts from `attacker` against `victim` port 23.
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        victim: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        const CREDENTIALS: &[&str] = &[
            "root:xc3511",
            "root:vizxv",
            "admin:admin",
            "root:888888",
            "support:support",
            "root:default",
            "admin:password",
            "user:user",
        ];
        let label = Label::Attack(AttackFamily::BruteForce);
        let mut t = start_s;
        while t < end_s {
            let mut session = TcpSession::new(attacker, victim, 23, rng);
            let ct = session.handshake(trace, t, label);
            let cred = CREDENTIALS[rng.gen_range(0..CREDENTIALS.len())];
            session.client_send(trace, ct, cred.as_bytes(), label);
            // Victim rejects and resets.
            let rst = TcpHeader::new(
                23,
                session.client_port,
                session.server_seq,
                session.client_seq,
                TcpFlags::RST | TcpFlags::ACK,
            );
            let v2a = PacketBuilder::new(victim.mac, attacker.mac);
            push(
                trace,
                ct + 0.004,
                v2a.tcp(victim.ip, attacker.ip, rst, &[]),
                label,
                session.flow_s2c,
            );
            t += jittered(1.0 / self.attempts_per_s, 0.3, rng);
        }
    }
}

/// TCP SYN flood with spoofed sources against one victim service.
#[derive(Debug, Clone, Copy)]
pub struct SynFlood {
    /// Flood rate, packets per second.
    pub rate_pps: f64,
    /// Victim service port.
    pub dst_port: u16,
}

impl Default for SynFlood {
    fn default() -> Self {
        SynFlood {
            rate_pps: 120.0,
            dst_port: 1883,
        }
    }
}

impl SynFlood {
    /// Emits the flood through `attacker`'s NIC toward `victim`.
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        victim: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::SynFlood);
        let mut builder = PacketBuilder::new(attacker.mac, victim.mac);
        let mut t = start_s;
        while t < end_s {
            let spoofed = random_public_ip(rng);
            let sport = rng.gen_range(1024..=65535);
            let mut hdr = TcpHeader::new(sport, self.dst_port, rng.gen(), 0, TcpFlags::SYN);
            hdr.window = 512;
            builder.ttl(rng.gen_range(40..=255)).ip_id(rng.gen());
            push(
                trace,
                t,
                builder.tcp(spoofed, victim.ip, hdr, &[]),
                label,
                flow_id(spoofed, victim.ip, 6, sport, self.dst_port),
            );
            t += jittered(1.0 / self.rate_pps, 0.5, rng);
        }
    }
}

/// UDP flood with spoofed sources and constant filler payloads.
#[derive(Debug, Clone, Copy)]
pub struct UdpFlood {
    /// Flood rate, packets per second.
    pub rate_pps: f64,
    /// Payload bytes per packet.
    pub payload_len: usize,
}

impl Default for UdpFlood {
    fn default() -> Self {
        UdpFlood {
            rate_pps: 120.0,
            payload_len: 512,
        }
    }
}

impl UdpFlood {
    /// Emits the flood through `attacker`'s NIC toward `victim`.
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        victim: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::UdpFlood);
        let mut builder = PacketBuilder::new(attacker.mac, victim.mac);
        let payload = vec![0xaa; self.payload_len];
        let mut t = start_s;
        while t < end_s {
            let spoofed = random_public_ip(rng);
            let sport = rng.gen_range(1024..=65535);
            let dport = rng.gen_range(1024..=65535);
            builder.ttl(rng.gen_range(40..=255)).ip_id(rng.gen());
            push(
                trace,
                t,
                builder.udp(spoofed, victim.ip, sport, dport, &payload),
                label,
                flow_id(spoofed, victim.ip, 17, sport, dport),
            );
            t += jittered(1.0 / self.rate_pps, 0.5, rng);
        }
    }
}

/// MQTT CONNECT flood: rapid broker connections with random client ids and
/// zero keep-alive, exhausting broker session state.
#[derive(Debug, Clone, Copy)]
pub struct MqttFlood {
    /// Connections per second.
    pub rate_cps: f64,
}

impl Default for MqttFlood {
    fn default() -> Self {
        MqttFlood { rate_cps: 30.0 }
    }
}

impl MqttFlood {
    /// Emits the flood from `attacker` against the broker.
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        broker: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::MqttFlood);
        let builder = PacketBuilder::new(attacker.mac, broker.mac);
        let mut t = start_s;
        while t < end_s {
            let sport = ephemeral_port(rng);
            let syn = TcpHeader::new(sport, mqtt::PORT, rng.gen(), 0, TcpFlags::SYN);
            let flow = flow_id(attacker.ip, broker.ip, 6, sport, mqtt::PORT);
            push(
                trace,
                t,
                builder.tcp(attacker.ip, broker.ip, syn, &[]),
                label,
                flow,
            );
            let connect = MqttPacket::Connect {
                keep_alive: 0,
                client_id: hex_string(16, rng),
                connect_flags: 0x00,
            };
            let data = TcpHeader::new(
                sport,
                mqtt::PORT,
                syn.seq.wrapping_add(1),
                1,
                TcpFlags::PSH | TcpFlags::ACK,
            );
            push(
                trace,
                t + 0.0005,
                builder.tcp(attacker.ip, broker.ip, data, &connect.encode()),
                label,
                flow,
            );
            t += jittered(1.0 / self.rate_cps, 0.3, rng);
        }
    }
}

/// CoAP amplification: tiny requests with the source spoofed to the victim,
/// answered by large discovery responses aimed at the victim.
#[derive(Debug, Clone, Copy)]
pub struct CoapAmplification {
    /// Request rate, packets per second.
    pub rate_pps: f64,
    /// Bytes of the amplified response payload.
    pub response_len: usize,
}

impl Default for CoapAmplification {
    fn default() -> Self {
        CoapAmplification {
            rate_pps: 25.0,
            response_len: 400,
        }
    }
}

impl CoapAmplification {
    /// Emits request/response pairs: `attacker` spoofs `victim` toward
    /// `reflector` (a CoAP sensor).
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        reflector: &Device,
        victim: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::CoapAmplification);
        let a2r = PacketBuilder::new(attacker.mac, reflector.mac);
        let r2v = PacketBuilder::new(reflector.mac, victim.mac);
        let mut t = start_s;
        let mut message_id: u16 = rng.gen();
        while t < end_s {
            let req = CoapMessage {
                msg_type: CoapType::NonConfirmable,
                code: CoapCode::GET,
                message_id,
                token: vec![rng.gen()],
                uri_path: vec![".well-known".into(), "core".into()],
                payload: vec![],
            };
            push(
                trace,
                t,
                a2r.udp(
                    victim.ip,
                    reflector.ip,
                    coap::PORT,
                    coap::PORT,
                    &req.encode(),
                ),
                label,
                flow_id(victim.ip, reflector.ip, 17, coap::PORT, coap::PORT),
            );
            let mut body = Vec::with_capacity(self.response_len);
            while body.len() < self.response_len {
                body.extend_from_slice(b"</sensors/reading>;rt=\"obs\";ct=0,");
            }
            body.truncate(self.response_len);
            let resp = CoapMessage {
                msg_type: CoapType::NonConfirmable,
                code: CoapCode::CONTENT,
                message_id,
                token: req.token.clone(),
                uri_path: vec![],
                payload: body,
            };
            push(
                trace,
                t + 0.002,
                r2v.udp(
                    reflector.ip,
                    victim.ip,
                    coap::PORT,
                    coap::PORT,
                    &resp.encode(),
                ),
                label,
                flow_id(reflector.ip, victim.ip, 17, coap::PORT, coap::PORT),
            );
            message_id = message_id.wrapping_add(1);
            t += jittered(1.0 / self.rate_pps, 0.3, rng);
        }
    }
}

/// DNS tunnelling: exfiltration encoded into long random TXT query labels
/// under an attacker-controlled domain.
#[derive(Debug, Clone, Copy)]
pub struct DnsTunnel {
    /// Query rate, packets per second.
    pub rate_pps: f64,
    /// Length of the random data label.
    pub label_len: usize,
}

impl Default for DnsTunnel {
    fn default() -> Self {
        DnsTunnel {
            rate_pps: 10.0,
            label_len: 44,
        }
    }
}

impl DnsTunnel {
    /// Emits tunnel queries from `infected` through the resolver.
    pub fn emit(
        &self,
        trace: &mut Trace,
        infected: &Device,
        resolver: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::DnsTunnel);
        let d2s = PacketBuilder::new(infected.mac, resolver.mac);
        let s2d = PacketBuilder::new(resolver.mac, infected.mac);
        let mut t = start_s;
        while t < end_s {
            let sport = ephemeral_port(rng);
            let id: u16 = rng.gen();
            let name = format!("{}.t.evil-example.com", hex_string(self.label_len, rng));
            let mut query = DnsMessage::query(id, &name);
            query.qtype = QTYPE_TXT;
            push(
                trace,
                t,
                d2s.udp(infected.ip, resolver.ip, sport, dns::PORT, &query.encode()),
                label,
                flow_id(infected.ip, resolver.ip, 17, sport, dns::PORT),
            );
            // Command-and-control response: TXT bytes.
            let mut resp = query.clone();
            resp.flags = DnsMessage::FLAGS_RESPONSE;
            resp.ancount = 1;
            let mut answer = vec![0xc0, 0x0c, 0x00, 0x10, 0x00, 0x01, 0x00, 0x00, 0x00, 0x05];
            let txt = hex_string(24, rng);
            answer.extend_from_slice(&((txt.len() + 1) as u16).to_be_bytes());
            answer.push(txt.len() as u8);
            answer.extend_from_slice(txt.as_bytes());
            resp.answer_bytes = answer;
            push(
                trace,
                t + 0.008,
                s2d.udp(resolver.ip, infected.ip, dns::PORT, sport, &resp.encode()),
                label,
                flow_id(resolver.ip, infected.ip, 17, dns::PORT, sport),
            );
            t += jittered(1.0 / self.rate_pps, 0.4, rng);
        }
    }
}

/// Malicious Modbus writes: a compromised host sprays state-changing
/// function codes across unit ids.
#[derive(Debug, Clone, Copy)]
pub struct ModbusAbuse {
    /// Write operations per second.
    pub rate_pps: f64,
}

impl Default for ModbusAbuse {
    fn default() -> Self {
        ModbusAbuse { rate_pps: 8.0 }
    }
}

impl ModbusAbuse {
    /// Emits abusive writes from `attacker` to `plc`. The attack tool
    /// reconnects for every unit-id scan pass, as real Modbus abuse
    /// utilities do, so each burst spans several short TCP sessions.
    pub fn emit(
        &self,
        trace: &mut Trace,
        attacker: &Device,
        plc: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::ModbusAbuse);
        let mut session = TcpSession::new(attacker, plc, modbus::PORT, rng);
        let mut t = session.handshake(trace, start_s, label);
        let mut transaction: u16 = rng.gen();
        let mut writes_this_session = 0usize;
        let mut session_budget = rng.gen_range(20..=40);
        while t < end_s {
            if writes_this_session >= session_budget {
                session.close(trace, t, label);
                session = TcpSession::new(attacker, plc, modbus::PORT, rng);
                t = session.handshake(trace, t + 0.05, label);
                writes_this_session = 0;
                session_budget = rng.gen_range(20..=40);
            }
            let unit_id = rng.gen_range(1..=32);
            let adu = match rng.gen_range(0..3) {
                0 => ModbusAdu::write_single_coil(transaction, unit_id, rng.gen(), rng.gen()),
                1 => ModbusAdu {
                    transaction_id: transaction,
                    unit_id,
                    function: ModbusFunction::WriteSingleRegister,
                    data: vec![rng.gen(), rng.gen(), rng.gen(), rng.gen()],
                },
                _ => {
                    // Write Multiple Registers with a burst of values.
                    let count = rng.gen_range(4..=16u16);
                    let mut data = Vec::new();
                    data.extend_from_slice(&rng.gen::<u16>().to_be_bytes());
                    data.extend_from_slice(&count.to_be_bytes());
                    data.push((count * 2) as u8);
                    for _ in 0..count * 2 {
                        data.push(rng.gen());
                    }
                    ModbusAdu {
                        transaction_id: transaction,
                        unit_id,
                        function: ModbusFunction::WriteMultipleRegisters,
                        data,
                    }
                }
            };
            session.client_send(trace, t, &adu.encode(), label);
            writes_this_session += 1;
            transaction = transaction.wrapping_add(1);
            t += jittered(1.0 / self.rate_pps, 0.3, rng);
        }
        session.close(trace, end_s, label);
    }
}

/// ZWire hijack: an unpaired rogue node injects actuator commands and bulk
/// exfiltration frames with a foreign home id.
#[derive(Debug, Clone, Copy)]
pub struct ZWireHijack {
    /// Injection rate, frames per second.
    pub rate_pps: f64,
    /// Rogue node id stamped on injected frames.
    pub rogue_node: u8,
}

impl Default for ZWireHijack {
    fn default() -> Self {
        ZWireHijack {
            rate_pps: 12.0,
            rogue_node: 0xee,
        }
    }
}

impl ZWireHijack {
    /// Emits injected frames from `rogue` (any LAN NIC) into the mesh whose
    /// legitimate home id is `home_id`; targets `target` devices.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        trace: &mut Trace,
        rogue: &Device,
        target: &Device,
        home_id: u32,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Attack(AttackFamily::ZWireHijack);
        let rogue_home = home_id ^ 0xdead_0000;
        let r2t = PacketBuilder::new(rogue.mac, target.mac);
        let target_node = target.zwire_node.unwrap_or(ZWireFrame::BROADCAST_NODE);
        let mut seq = 0u8;
        let mut t = start_s;
        while t < end_s {
            let frame = if rng.gen::<f64>() < 0.6 {
                // Actuator command injection.
                ZWireFrame::new(
                    ZWireType::Command,
                    rogue_home,
                    self.rogue_node,
                    target_node,
                    seq,
                    vec![0x20, 0xff, rng.gen()],
                )
            } else {
                // Bulk exfiltration disguised as data reports.
                let mut payload = vec![0u8; 180];
                rng.fill(payload.as_mut_slice());
                ZWireFrame::new(
                    ZWireType::Data,
                    rogue_home,
                    self.rogue_node,
                    ZWireFrame::BROADCAST_NODE,
                    seq,
                    payload,
                )
            };
            push(
                trace,
                t,
                r2t.zwire(&frame),
                label,
                zwire_flow_id(rogue_home, self.rogue_node, target_node),
            );
            seq = seq.wrapping_add(1);
            t += jittered(1.0 / self.rate_pps, 0.3, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, Fleet};
    use p4guard_packet::packet::{parse, Application, ProtocolTag};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet() -> Fleet {
        Fleet::mixed()
    }

    #[test]
    fn mirai_scan_has_the_signature() {
        let f = fleet();
        let infected = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(1);
        MiraiScan::default().emit(&mut trace, infected, 0.0, 2.0, &mut rng);
        assert!(trace.len() > 40);
        for r in trace.iter() {
            assert_eq!(r.label, Label::Attack(AttackFamily::MiraiScan));
            let p = parse(&r.frame).unwrap();
            let tcp = p.tcp().unwrap();
            assert!(tcp.dst_port == 23 || tcp.dst_port == 2323);
            assert!(tcp.flags.contains(TcpFlags::SYN));
            assert_eq!(tcp.seq, u32::from(p.ipv4.unwrap().dst));
        }
    }

    #[test]
    fn syn_flood_spoofs_sources() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::SmartPlug)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(2);
        SynFlood::default().emit(&mut trace, attacker, f.broker(), 0.0, 1.0, &mut rng);
        let mut sources = std::collections::HashSet::new();
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            let ip = p.ipv4.unwrap();
            assert_ne!(ip.src.octets()[..2], [192, 168]);
            assert_eq!(ip.dst, f.broker().ip);
            sources.insert(ip.src);
        }
        assert!(sources.len() > 50);
    }

    #[test]
    fn udp_flood_has_filler_payload() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::SmartPlug)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(3);
        UdpFlood::default().emit(&mut trace, attacker, f.broker(), 0.0, 0.5, &mut rng);
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            assert_eq!(p.protocol(), ProtocolTag::Udp);
            assert_eq!(p.payload_len, 512);
        }
    }

    #[test]
    fn mqtt_flood_connects_with_zero_keepalive() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::Thermostat)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(4);
        MqttFlood::default().emit(&mut trace, attacker, f.broker(), 0.0, 1.0, &mut rng);
        let mut connects = 0;
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            if let Some(Application::Mqtt(MqttPacket::Connect {
                keep_alive,
                client_id,
                ..
            })) = &p.app
            {
                assert_eq!(*keep_alive, 0);
                assert_eq!(client_id.len(), 16);
                connects += 1;
            }
        }
        assert!(connects > 10);
    }

    #[test]
    fn coap_amplification_amplifies() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::SmartPlug)[0];
        let reflector = f.of_kind(DeviceKind::CoapSensor)[0];
        let victim = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(5);
        CoapAmplification::default()
            .emit(&mut trace, attacker, reflector, victim, 0.0, 1.0, &mut rng);
        let mut req_len = 0usize;
        let mut resp_len = 0usize;
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            let ip = p.ipv4.unwrap();
            if ip.dst == victim.ip {
                resp_len += r.frame.len();
                // Reflected traffic goes to the victim.
                assert_eq!(ip.src, reflector.ip);
            } else {
                req_len += r.frame.len();
                // Requests carry the spoofed victim source.
                assert_eq!(ip.src, victim.ip);
            }
        }
        assert!(resp_len > 5 * req_len, "amplification {resp_len}/{req_len}");
    }

    #[test]
    fn dns_tunnel_uses_long_txt_labels() {
        let f = fleet();
        let infected = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(6);
        DnsTunnel::default().emit(&mut trace, infected, f.dns_server(), 0.0, 2.0, &mut rng);
        let mut queries = 0;
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            if let Some(Application::Dns(m)) = &p.app {
                if !m.is_response() {
                    assert_eq!(m.qtype, QTYPE_TXT);
                    let first = m.qname.split('.').next().unwrap();
                    assert_eq!(first.len(), 44);
                    queries += 1;
                }
            }
        }
        assert!(queries > 10);
    }

    #[test]
    fn modbus_abuse_only_writes() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::Camera)[0];
        let plc = f.of_kind(DeviceKind::ModbusPlc)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(7);
        ModbusAbuse::default().emit(&mut trace, attacker, plc, 0.0, 3.0, &mut rng);
        let mut writes = 0;
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            if let Some(Application::Modbus(adu)) = &p.app {
                assert!(adu.function.is_write(), "function {}", adu.function);
                writes += 1;
            }
        }
        assert!(writes > 10);
    }

    #[test]
    fn zwire_hijack_uses_foreign_home_id() {
        let f = fleet();
        let rogue = f.of_kind(DeviceKind::Camera)[0];
        let target = f.of_kind(DeviceKind::ZWireSensor)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(8);
        ZWireHijack::default().emit(
            &mut trace,
            rogue,
            target,
            f.zwire_home_id,
            0.0,
            2.0,
            &mut rng,
        );
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            let z = p.zwire.as_ref().unwrap();
            assert_ne!(z.home_id, f.zwire_home_id);
            assert_eq!(z.src_node, 0xee);
        }
        assert!(trace.len() > 15);
    }

    #[test]
    fn brute_force_carries_credentials() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::SmartPlug)[0];
        let victim = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(9);
        BruteForce::default().emit(&mut trace, attacker, victim, 0.0, 3.0, &mut rng);
        let mut cred_packets = 0;
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            if p.payload_len > 0 {
                assert_eq!(p.tcp().unwrap().dst_port, 23);
                cred_packets += 1;
            }
        }
        assert!(cred_packets >= 10);
    }

    #[test]
    fn attack_generation_is_deterministic() {
        let f = fleet();
        let attacker = f.of_kind(DeviceKind::SmartPlug)[0];
        let mut a = Trace::new();
        let mut b = Trace::new();
        SynFlood::default().emit(
            &mut a,
            attacker,
            f.broker(),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(11),
        );
        SynFlood::default().emit(
            &mut b,
            attacker,
            f.broker(),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(a, b);
    }
}
