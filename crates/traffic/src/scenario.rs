//! Scenario orchestration: composes benign behaviour per device kind with
//! timed attack events into one labelled, time-ordered [`Trace`].

use crate::attacks::{
    BruteForce, CoapAmplification, DnsTunnel, MiraiScan, ModbusAbuse, MqttFlood, SynFlood,
    UdpFlood, ZWireHijack,
};
use crate::benign::{
    ArpChatter, BulkUpload, CoapPolling, DnsLookups, ModbusPolling, MqttTelemetry, NtpSync,
    PingSweep, ZWireChatter,
};
use crate::device::{DeviceKind, Fleet};
use p4guard_packet::trace::{AttackFamily, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A timed attack injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackEvent {
    /// Which attack to run.
    pub family: AttackFamily,
    /// Start time, seconds into the scenario.
    pub start_s: f64,
    /// End time, seconds into the scenario.
    pub end_s: f64,
    /// Rate multiplier on the family's default intensity.
    pub intensity: f64,
}

impl AttackEvent {
    /// Creates an event at default intensity.
    pub fn new(family: AttackFamily, start_s: f64, end_s: f64) -> Self {
        AttackEvent {
            family,
            start_s,
            end_s,
            intensity: 1.0,
        }
    }
}

/// Error returned when a scenario cannot be generated from its fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// An attack event needs a device kind the fleet lacks.
    MissingDeviceKind {
        /// The attack that needs it.
        family: AttackFamily,
        /// The missing kind.
        kind: DeviceKind,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::MissingDeviceKind { family, kind } => {
                write!(f, "attack {family} requires a {kind} device, none in fleet")
            }
        }
    }
}

impl Error for ScenarioError {}

/// A complete scenario: a fleet, a benign baseline, and attack events.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The simulated LAN.
    pub fleet: Fleet,
    /// Scenario length in seconds.
    pub duration_s: f64,
    /// Master RNG seed; everything downstream derives from it.
    pub seed: u64,
    /// Multiplier on benign traffic rates (1.0 = defaults).
    pub benign_intensity: f64,
    /// Attack injections.
    pub attacks: Vec<AttackEvent>,
}

impl Scenario {
    /// Creates a scenario with no attacks.
    pub fn benign_only(fleet: Fleet, duration_s: f64, seed: u64) -> Self {
        Scenario {
            fleet,
            duration_s,
            seed,
            benign_intensity: 1.0,
            attacks: Vec::new(),
        }
    }

    /// The headline mixed-protocol scenario: every protocol active, every
    /// attack family injected as **two bursts** — one before and one after
    /// the canonical 60% train/test boundary — so temporal splits see each
    /// family on both sides (the detector is trained on past instances and
    /// tested on future ones).
    pub fn mixed_default(seed: u64) -> Self {
        let mut attacks = Vec::new();
        let mut recurring = |family: AttackFamily, a: (f64, f64), b: (f64, f64), k: f64| {
            attacks.push(AttackEvent {
                family,
                start_s: a.0,
                end_s: a.1,
                intensity: k,
            });
            attacks.push(AttackEvent {
                family,
                start_s: b.0,
                end_s: b.1,
                intensity: k,
            });
        };
        // The 180 s scenario splits at 108 s under the standard 60/40 cut.
        recurring(AttackFamily::MiraiScan, (20.0, 40.0), (120.0, 140.0), 0.12);
        recurring(AttackFamily::BruteForce, (30.0, 60.0), (112.0, 142.0), 0.3);
        recurring(AttackFamily::SynFlood, (60.0, 72.0), (150.0, 162.0), 0.1);
        recurring(AttackFamily::UdpFlood, (80.0, 95.0), (160.0, 175.0), 0.1);
        recurring(AttackFamily::MqttFlood, (40.0, 60.0), (115.0, 135.0), 0.18);
        recurring(
            AttackFamily::CoapAmplification,
            (55.0, 75.0),
            (130.0, 150.0),
            0.25,
        );
        recurring(AttackFamily::DnsTunnel, (60.0, 100.0), (110.0, 150.0), 0.18);
        recurring(
            AttackFamily::ModbusAbuse,
            (70.0, 100.0),
            (140.0, 170.0),
            0.45,
        );
        recurring(
            AttackFamily::ZWireHijack,
            (50.0, 100.0),
            (110.0, 160.0),
            0.18,
        );
        Scenario {
            fleet: Fleet::mixed(),
            duration_s: 180.0,
            seed,
            benign_intensity: 2.5,
            attacks,
        }
    }

    /// A smart-home scenario (no Modbus): a Mirai infection story with
    /// recurring bursts on both sides of the 60% boundary (90 s of 150 s).
    pub fn smart_home_default(seed: u64) -> Self {
        let mut attacks = Vec::new();
        let mut recurring = |family: AttackFamily, a: (f64, f64), b: (f64, f64), k: f64| {
            attacks.push(AttackEvent {
                family,
                start_s: a.0,
                end_s: a.1,
                intensity: k,
            });
            attacks.push(AttackEvent {
                family,
                start_s: b.0,
                end_s: b.1,
                intensity: k,
            });
        };
        recurring(AttackFamily::MiraiScan, (30.0, 60.0), (100.0, 130.0), 0.2);
        recurring(AttackFamily::BruteForce, (45.0, 85.0), (95.0, 135.0), 0.5);
        recurring(AttackFamily::MqttFlood, (50.0, 80.0), (100.0, 130.0), 0.3);
        recurring(AttackFamily::ZWireHijack, (60.0, 88.0), (95.0, 140.0), 0.3);
        Scenario {
            fleet: Fleet::smart_home(),
            duration_s: 150.0,
            seed,
            benign_intensity: 2.0,
            attacks,
        }
    }

    /// An industrial scenario: Modbus abuse plus volumetric floods, with
    /// recurring bursts on both sides of the 60% boundary.
    pub fn industrial_default(seed: u64) -> Self {
        let mut attacks = Vec::new();
        let mut recurring = |family: AttackFamily, a: (f64, f64), b: (f64, f64), k: f64| {
            attacks.push(AttackEvent {
                family,
                start_s: a.0,
                end_s: a.1,
                intensity: k,
            });
            attacks.push(AttackEvent {
                family,
                start_s: b.0,
                end_s: b.1,
                intensity: k,
            });
        };
        recurring(AttackFamily::ModbusAbuse, (25.0, 85.0), (95.0, 140.0), 0.6);
        recurring(AttackFamily::SynFlood, (60.0, 80.0), (100.0, 120.0), 0.15);
        recurring(
            AttackFamily::CoapAmplification,
            (40.0, 70.0),
            (110.0, 140.0),
            0.35,
        );
        recurring(AttackFamily::DnsTunnel, (30.0, 85.0), (95.0, 145.0), 0.4);
        Scenario {
            fleet: Fleet::industrial(),
            duration_s: 150.0,
            seed,
            benign_intensity: 2.0,
            attacks,
        }
    }

    /// A scenario containing a single attack family over the mixed fleet,
    /// used by per-family experiments (F9).
    pub fn single_attack(family: AttackFamily, seed: u64) -> Self {
        Scenario {
            fleet: Fleet::mixed(),
            duration_s: 120.0,
            seed,
            benign_intensity: 1.5,
            attacks: vec![
                AttackEvent {
                    family,
                    start_s: 25.0,
                    end_s: 65.0,
                    intensity: 0.45,
                },
                AttackEvent {
                    family,
                    start_s: 80.0,
                    end_s: 110.0,
                    intensity: 0.45,
                },
            ],
        }
    }

    /// Generates the labelled trace, time-sorted.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingDeviceKind`] when an attack event
    /// needs a device the fleet does not contain.
    pub fn generate(&self) -> Result<Trace, ScenarioError> {
        let mut trace = Trace::new();
        self.emit_benign(&mut trace);
        self.emit_attacks(&mut trace)?;
        trace.sort_by_time();
        Ok(trace)
    }

    fn emit_benign(&self, trace: &mut Trace) {
        let fleet = &self.fleet;
        let end = self.duration_s;
        let speed = self.benign_intensity.max(1e-6);
        // Derive one RNG per generator role so adding devices does not
        // perturb unrelated streams.
        let mut stream = 0u64;
        let mut next_rng = || {
            stream += 1;
            StdRng::seed_from_u64(self.seed ^ (stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        };
        for device in fleet.endpoints() {
            match device.kind {
                DeviceKind::Camera => {
                    let mqtt = MqttTelemetry {
                        publish_interval_s: 4.0 / speed,
                        ..MqttTelemetry::default()
                    };
                    mqtt.emit(trace, device, fleet.broker(), 0.0, end, &mut next_rng());
                    let bulk = BulkUpload {
                        burst_interval_s: 20.0 / speed,
                        ..BulkUpload::default()
                    };
                    bulk.emit(trace, device, fleet.broker(), 0.0, end, &mut next_rng());
                    DnsLookups::default().emit(
                        trace,
                        device,
                        fleet.dns_server(),
                        0.0,
                        end,
                        &mut next_rng(),
                    );
                    NtpSync::default().emit(
                        trace,
                        device,
                        fleet.gateway(),
                        0.0,
                        end,
                        &mut next_rng(),
                    );
                }
                DeviceKind::Thermostat => {
                    let mqtt = MqttTelemetry {
                        publish_interval_s: 6.0 / speed,
                        ..MqttTelemetry::default()
                    };
                    mqtt.emit(trace, device, fleet.broker(), 0.0, end, &mut next_rng());
                    DnsLookups::default().emit(
                        trace,
                        device,
                        fleet.dns_server(),
                        0.0,
                        end,
                        &mut next_rng(),
                    );
                }
                DeviceKind::SmartPlug => {
                    let mqtt = MqttTelemetry {
                        publish_interval_s: 10.0 / speed,
                        qos1_fraction: 0.5,
                        ..MqttTelemetry::default()
                    };
                    mqtt.emit(trace, device, fleet.broker(), 0.0, end, &mut next_rng());
                    NtpSync::default().emit(
                        trace,
                        device,
                        fleet.gateway(),
                        0.0,
                        end,
                        &mut next_rng(),
                    );
                }
                DeviceKind::CoapSensor => {
                    let coap = CoapPolling {
                        poll_interval_s: 8.0 / speed,
                    };
                    coap.emit(trace, fleet.gateway(), device, 0.0, end, &mut next_rng());
                }
                DeviceKind::ModbusPlc => {
                    let modbus = ModbusPolling {
                        poll_interval_s: 2.5 / speed,
                    };
                    modbus.emit(trace, fleet.gateway(), device, 0.0, end, &mut next_rng());
                }
                DeviceKind::ZWireSensor => {
                    let z = ZWireChatter {
                        report_interval_s: 7.0 / speed,
                        ..ZWireChatter::default()
                    };
                    z.emit(
                        trace,
                        device,
                        fleet.gateway(),
                        fleet.zwire_home_id,
                        0.0,
                        end,
                        &mut next_rng(),
                    );
                }
                DeviceKind::Gateway | DeviceKind::Broker | DeviceKind::DnsServer => {}
            }
            ArpChatter::default().emit(trace, device, fleet.gateway(), 0.0, end, &mut next_rng());
            PingSweep::default().emit(trace, fleet.gateway(), device, 0.0, end, &mut next_rng());
        }
    }

    fn emit_attacks(&self, trace: &mut Trace) -> Result<(), ScenarioError> {
        let fleet = &self.fleet;
        let require = |family: AttackFamily, kind: DeviceKind| {
            fleet
                .of_kind(kind)
                .first()
                .copied()
                .cloned()
                .ok_or(ScenarioError::MissingDeviceKind { family, kind })
        };
        // Any endpoint can play the compromised host. The pick is keyed on
        // the attack family, not the event index, so recurring bursts of
        // the same family come from the same infected device — the
        // realistic persistence story, and what keeps temporal splits fair.
        let endpoints = fleet.endpoints();
        let pick = |salt: usize| endpoints[salt % endpoints.len()].clone();
        for (i, event) in self.attacks.iter().enumerate() {
            let who = usize::from(event.family.code());
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ attack_salt(i as u64) ^ u64::from(event.family.code()),
            );
            let (start, end, k) = (
                event.start_s,
                event.end_s.min(self.duration_s),
                event.intensity,
            );
            match event.family {
                AttackFamily::MiraiScan => {
                    let g = MiraiScan {
                        rate_pps: MiraiScan::default().rate_pps * k,
                    };
                    g.emit(trace, &pick(who), start, end, &mut rng);
                }
                AttackFamily::BruteForce => {
                    let victim = require(event.family, DeviceKind::Camera)
                        .or_else(|_| require(event.family, DeviceKind::CoapSensor))?;
                    let g = BruteForce {
                        attempts_per_s: BruteForce::default().attempts_per_s * k,
                    };
                    g.emit(trace, &pick(who + 1), &victim, start, end, &mut rng);
                }
                AttackFamily::SynFlood => {
                    let g = SynFlood {
                        rate_pps: SynFlood::default().rate_pps * k,
                        ..SynFlood::default()
                    };
                    g.emit(trace, &pick(who), fleet.broker(), start, end, &mut rng);
                }
                AttackFamily::UdpFlood => {
                    let g = UdpFlood {
                        rate_pps: UdpFlood::default().rate_pps * k,
                        ..UdpFlood::default()
                    };
                    g.emit(trace, &pick(who), fleet.broker(), start, end, &mut rng);
                }
                AttackFamily::MqttFlood => {
                    let g = MqttFlood {
                        rate_cps: MqttFlood::default().rate_cps * k,
                    };
                    g.emit(trace, &pick(who), fleet.broker(), start, end, &mut rng);
                }
                AttackFamily::CoapAmplification => {
                    let reflector = require(event.family, DeviceKind::CoapSensor)?;
                    let victim = pick(who + 2);
                    let g = CoapAmplification {
                        rate_pps: CoapAmplification::default().rate_pps * k,
                        ..CoapAmplification::default()
                    };
                    g.emit(trace, &pick(who), &reflector, &victim, start, end, &mut rng);
                }
                AttackFamily::DnsTunnel => {
                    let g = DnsTunnel {
                        rate_pps: DnsTunnel::default().rate_pps * k,
                        ..DnsTunnel::default()
                    };
                    g.emit(trace, &pick(who), fleet.dns_server(), start, end, &mut rng);
                }
                AttackFamily::ModbusAbuse => {
                    let plc = require(event.family, DeviceKind::ModbusPlc)?;
                    let g = ModbusAbuse {
                        rate_pps: ModbusAbuse::default().rate_pps * k,
                    };
                    g.emit(trace, &pick(who), &plc, start, end, &mut rng);
                }
                AttackFamily::ZWireHijack => {
                    let target = require(event.family, DeviceKind::ZWireSensor)?;
                    let g = ZWireHijack {
                        rate_pps: ZWireHijack::default().rate_pps * k,
                        ..ZWireHijack::default()
                    };
                    g.emit(
                        trace,
                        &pick(who),
                        &target,
                        fleet.zwire_home_id,
                        start,
                        end,
                        &mut rng,
                    );
                }
            }
        }
        Ok(())
    }
}

/// Mixes a per-event salt into attack RNG seeds.
fn attack_salt(i: u64) -> u64 {
    (i + 1).wrapping_mul(0xd6e8_feb8_6659_fd93)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_packet::packet::parse;

    #[test]
    fn mixed_scenario_generates_labelled_time_sorted_trace() {
        let trace = Scenario::mixed_default(7).generate().unwrap();
        assert!(trace.len() > 3000, "len = {}", trace.len());
        let attacks = trace.attack_count();
        let frac = attacks as f64 / trace.len() as f64;
        assert!((0.15..0.75).contains(&frac), "attack fraction {frac}");
        let mut prev = 0u64;
        for r in trace.iter() {
            assert!(r.timestamp_us >= prev);
            prev = r.timestamp_us;
        }
    }

    #[test]
    fn every_family_appears_in_mixed_default() {
        let trace = Scenario::mixed_default(7).generate().unwrap();
        for family in AttackFamily::ALL {
            assert!(
                trace.iter().any(|r| r.label.family() == Some(family)),
                "missing {family}"
            );
        }
    }

    #[test]
    fn every_generated_frame_parses() {
        let trace = Scenario::mixed_default(3).generate().unwrap();
        for r in trace.iter() {
            parse(&r.frame).expect("generated frame parses");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::mixed_default(42).generate().unwrap();
        let b = Scenario::mixed_default(42).generate().unwrap();
        assert_eq!(a, b);
        let c = Scenario::mixed_default(43).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn benign_only_has_no_attacks() {
        let s = Scenario::benign_only(Fleet::smart_home(), 60.0, 1);
        let trace = s.generate().unwrap();
        assert!(trace.len() > 200);
        assert_eq!(trace.attack_count(), 0);
    }

    #[test]
    fn missing_device_kind_is_reported() {
        let mut s = Scenario::benign_only(Fleet::smart_home(), 60.0, 1);
        s.attacks
            .push(AttackEvent::new(AttackFamily::ModbusAbuse, 10.0, 20.0));
        let err = s.generate().unwrap_err();
        assert_eq!(
            err,
            ScenarioError::MissingDeviceKind {
                family: AttackFamily::ModbusAbuse,
                kind: DeviceKind::ModbusPlc
            }
        );
        assert!(err.to_string().contains("modbus"));
    }

    #[test]
    fn single_attack_scenario_contains_only_that_family() {
        let trace = Scenario::single_attack(AttackFamily::DnsTunnel, 5)
            .generate()
            .unwrap();
        for r in trace.iter() {
            if let Some(f) = r.label.family() {
                assert_eq!(f, AttackFamily::DnsTunnel);
            }
        }
        assert!(trace.attack_count() > 100);
    }

    #[test]
    fn presets_generate() {
        assert!(Scenario::smart_home_default(1).generate().unwrap().len() > 1000);
        assert!(Scenario::industrial_default(1).generate().unwrap().len() > 1000);
    }
}
