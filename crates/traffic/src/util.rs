//! Shared generator utilities: flow ids, timestamp jitter, payload helpers.

use rand::Rng;
use std::net::Ipv4Addr;

/// Computes a stable flow id from the 5-tuple using FNV-1a. Records of the
/// same logical flow carry the same id in the generated trace.
pub fn flow_id(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, src_port: u16, dst_port: u16) -> u64 {
    let mut bytes = [0u8; 13];
    bytes[..4].copy_from_slice(&src.octets());
    bytes[4..8].copy_from_slice(&dst.octets());
    bytes[8] = protocol;
    bytes[9..11].copy_from_slice(&src_port.to_be_bytes());
    bytes[11..13].copy_from_slice(&dst_port.to_be_bytes());
    fnv1a(&bytes)
}

/// Flow id for non-IP (ZWire) traffic keyed on home id and node pair.
pub fn zwire_flow_id(home_id: u32, src_node: u8, dst_node: u8) -> u64 {
    let mut bytes = [0u8; 7];
    bytes[..4].copy_from_slice(&home_id.to_be_bytes());
    bytes[4] = src_node;
    bytes[5] = dst_node;
    bytes[6] = 0x5a;
    fnv1a(&bytes)
}

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Converts seconds to the microsecond timestamps traces use.
pub fn secs(t: f64) -> u64 {
    (t * 1e6) as u64
}

/// Adds ±`jitter_fraction` multiplicative jitter to an interval.
pub fn jittered(interval: f64, jitter_fraction: f64, rng: &mut impl Rng) -> f64 {
    let j = 1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * jitter_fraction;
    (interval * j).max(1e-6)
}

/// A random ephemeral (49152..=65535) source port.
pub fn ephemeral_port(rng: &mut impl Rng) -> u16 {
    rng.gen_range(49152..=65535)
}

/// A random ASCII-hex string of the given length, for DNS-tunnel labels and
/// client ids.
pub fn hex_string(len: usize, rng: &mut impl Rng) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    (0..len)
        .map(|_| HEX[rng.gen_range(0..16)] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flow_id_is_stable_and_direction_sensitive() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        assert_eq!(flow_id(a, b, 6, 1000, 80), flow_id(a, b, 6, 1000, 80));
        assert_ne!(flow_id(a, b, 6, 1000, 80), flow_id(b, a, 6, 80, 1000));
        assert_ne!(flow_id(a, b, 6, 1000, 80), flow_id(a, b, 17, 1000, 80));
    }

    #[test]
    fn zwire_flow_id_distinguishes_nodes() {
        assert_ne!(zwire_flow_id(1, 2, 3), zwire_flow_id(1, 3, 2));
        assert_ne!(zwire_flow_id(1, 2, 3), zwire_flow_id(2, 2, 3));
    }

    #[test]
    fn secs_converts_to_micros() {
        assert_eq!(secs(1.5), 1_500_000);
        assert_eq!(secs(0.0), 0);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = jittered(10.0, 0.2, &mut rng);
            assert!((8.0..=12.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn ephemeral_ports_are_high() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(ephemeral_port(&mut rng) >= 49152);
        }
    }

    #[test]
    fn hex_string_is_hex() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = hex_string(32, &mut rng);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
