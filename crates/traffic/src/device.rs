//! Simulated IoT devices and the network fleet they form.

use p4guard_packet::addr::MacAddr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The kinds of devices the simulator models, spanning the protocol mix of
/// the evaluation (MQTT, CoAP, DNS, Modbus/TCP, ZWire, and plain TCP/UDP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// IP camera: MQTT telemetry plus bulk TCP uploads.
    Camera,
    /// Thermostat: MQTT telemetry.
    Thermostat,
    /// Smart plug: MQTT telemetry, sparse.
    SmartPlug,
    /// Battery sensor polled over CoAP.
    CoapSensor,
    /// Industrial PLC speaking Modbus/TCP.
    ModbusPlc,
    /// Low-power mesh sensor speaking ZWire.
    ZWireSensor,
    /// The LAN gateway / firewall host (also the CoAP and Modbus poller).
    Gateway,
    /// The MQTT broker host.
    Broker,
    /// The LAN DNS resolver.
    DnsServer,
}

impl DeviceKind {
    /// All kinds, in display order.
    pub const ALL: [DeviceKind; 9] = [
        DeviceKind::Camera,
        DeviceKind::Thermostat,
        DeviceKind::SmartPlug,
        DeviceKind::CoapSensor,
        DeviceKind::ModbusPlc,
        DeviceKind::ZWireSensor,
        DeviceKind::Gateway,
        DeviceKind::Broker,
        DeviceKind::DnsServer,
    ];

    /// Returns `true` for infrastructure roles that exist once per fleet.
    pub fn is_infrastructure(&self) -> bool {
        matches!(
            self,
            DeviceKind::Gateway | DeviceKind::Broker | DeviceKind::DnsServer
        )
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Camera => "camera",
            DeviceKind::Thermostat => "thermostat",
            DeviceKind::SmartPlug => "smart-plug",
            DeviceKind::CoapSensor => "coap-sensor",
            DeviceKind::ModbusPlc => "modbus-plc",
            DeviceKind::ZWireSensor => "zwire-sensor",
            DeviceKind::Gateway => "gateway",
            DeviceKind::Broker => "broker",
            DeviceKind::DnsServer => "dns-server",
        };
        write!(f, "{s}")
    }
}

/// A simulated device on the LAN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Fleet-unique id.
    pub id: u32,
    /// Device kind.
    pub kind: DeviceKind,
    /// MAC address (deterministic from id).
    pub mac: MacAddr,
    /// LAN IPv4 address.
    pub ip: Ipv4Addr,
    /// ZWire mesh node id, for ZWire devices and the gateway.
    pub zwire_node: Option<u8>,
}

/// The simulated LAN: infrastructure plus IoT endpoints.
///
/// The address plan is `192.168.1.0/24`: `.1` gateway, `.2` broker, `.3`
/// DNS, endpoints from `.10` up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fleet {
    devices: Vec<Device>,
    /// The ZWire mesh home id shared by paired devices.
    pub zwire_home_id: u32,
}

/// Index of the gateway in every fleet.
const GATEWAY_IDX: usize = 0;
/// Index of the broker in every fleet.
const BROKER_IDX: usize = 1;
/// Index of the DNS server in every fleet.
const DNS_IDX: usize = 2;

impl Fleet {
    /// Builds a fleet with the given number of endpoints per kind.
    /// Infrastructure (gateway, broker, DNS) is always present.
    pub fn new(counts: &[(DeviceKind, usize)]) -> Self {
        let mut devices = Vec::new();
        let mut next_id = 0u32;
        let mut next_host = 10u8;
        let mut next_zwire_node = 2u8;
        let push = |kind: DeviceKind,
                    host: u8,
                    zwire_node: Option<u8>,
                    devices: &mut Vec<Device>,
                    next_id: &mut u32| {
            devices.push(Device {
                id: *next_id,
                kind,
                mac: MacAddr::from_id(u64::from(*next_id) + 1),
                ip: Ipv4Addr::new(192, 168, 1, host),
                zwire_node,
            });
            *next_id += 1;
        };
        push(DeviceKind::Gateway, 1, Some(1), &mut devices, &mut next_id);
        push(DeviceKind::Broker, 2, None, &mut devices, &mut next_id);
        push(DeviceKind::DnsServer, 3, None, &mut devices, &mut next_id);
        for &(kind, count) in counts {
            if kind.is_infrastructure() {
                continue;
            }
            for _ in 0..count {
                let zwire_node = if kind == DeviceKind::ZWireSensor {
                    let n = next_zwire_node;
                    next_zwire_node += 1;
                    Some(n)
                } else {
                    None
                };
                push(kind, next_host, zwire_node, &mut devices, &mut next_id);
                next_host = next_host.wrapping_add(1);
            }
        }
        Fleet {
            devices,
            zwire_home_id: 0xcafe_0042,
        }
    }

    /// A typical smart-home fleet used by the evaluation scenarios.
    pub fn smart_home() -> Self {
        Fleet::new(&[
            (DeviceKind::Camera, 2),
            (DeviceKind::Thermostat, 2),
            (DeviceKind::SmartPlug, 3),
            (DeviceKind::CoapSensor, 3),
            (DeviceKind::ZWireSensor, 3),
        ])
    }

    /// An industrial fleet: PLCs plus sensors.
    pub fn industrial() -> Self {
        Fleet::new(&[
            (DeviceKind::ModbusPlc, 4),
            (DeviceKind::CoapSensor, 4),
            (DeviceKind::Camera, 1),
        ])
    }

    /// A mixed fleet exercising every protocol, the default for the
    /// headline experiments.
    pub fn mixed() -> Self {
        Fleet::new(&[
            (DeviceKind::Camera, 2),
            (DeviceKind::Thermostat, 2),
            (DeviceKind::SmartPlug, 2),
            (DeviceKind::CoapSensor, 3),
            (DeviceKind::ModbusPlc, 2),
            (DeviceKind::ZWireSensor, 3),
        ])
    }

    /// All devices, infrastructure first.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The gateway device.
    pub fn gateway(&self) -> &Device {
        &self.devices[GATEWAY_IDX]
    }

    /// The MQTT broker device.
    pub fn broker(&self) -> &Device {
        &self.devices[BROKER_IDX]
    }

    /// The DNS server device.
    pub fn dns_server(&self) -> &Device {
        &self.devices[DNS_IDX]
    }

    /// Devices of a given kind.
    pub fn of_kind(&self, kind: DeviceKind) -> Vec<&Device> {
        self.devices.iter().filter(|d| d.kind == kind).collect()
    }

    /// Endpoints (everything that is not infrastructure).
    pub fn endpoints(&self) -> Vec<&Device> {
        self.devices
            .iter()
            .filter(|d| !d.kind.is_infrastructure())
            .collect()
    }

    /// Looks a device up by id.
    pub fn device(&self, id: u32) -> Option<&Device> {
        self.devices.iter().find(|d| d.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_infrastructure() {
        let f = Fleet::smart_home();
        assert_eq!(f.gateway().kind, DeviceKind::Gateway);
        assert_eq!(f.broker().kind, DeviceKind::Broker);
        assert_eq!(f.dns_server().kind, DeviceKind::DnsServer);
        assert_eq!(f.gateway().ip, Ipv4Addr::new(192, 168, 1, 1));
    }

    #[test]
    fn addresses_and_ids_are_unique() {
        let f = Fleet::mixed();
        let mut ips: Vec<_> = f.devices().iter().map(|d| d.ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), f.devices().len());
        let mut macs: Vec<_> = f.devices().iter().map(|d| d.mac).collect();
        macs.sort();
        macs.dedup();
        assert_eq!(macs.len(), f.devices().len());
    }

    #[test]
    fn zwire_nodes_are_assigned() {
        let f = Fleet::smart_home();
        let sensors = f.of_kind(DeviceKind::ZWireSensor);
        assert_eq!(sensors.len(), 3);
        let mut nodes: Vec<u8> = sensors.iter().map(|d| d.zwire_node.unwrap()).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 3);
        assert_eq!(f.gateway().zwire_node, Some(1));
    }

    #[test]
    fn of_kind_and_endpoints() {
        let f = Fleet::mixed();
        assert_eq!(f.of_kind(DeviceKind::Camera).len(), 2);
        assert!(f.endpoints().iter().all(|d| !d.kind.is_infrastructure()));
        assert_eq!(f.endpoints().len(), 14);
    }

    #[test]
    fn infrastructure_counts_are_ignored_in_spec() {
        let f = Fleet::new(&[(DeviceKind::Gateway, 5), (DeviceKind::Camera, 1)]);
        assert_eq!(f.of_kind(DeviceKind::Gateway).len(), 1);
        assert_eq!(f.of_kind(DeviceKind::Camera).len(), 1);
    }

    #[test]
    fn device_lookup() {
        let f = Fleet::smart_home();
        assert!(f.device(0).is_some());
        assert!(f.device(9999).is_none());
    }
}
