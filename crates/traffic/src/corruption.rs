//! Failure injection: corrupt a fraction of trace frames with random bit
//! flips and truncations, for robustness experiments (F12) and parser
//! hardening tests.

use bytes::Bytes;
use p4guard_packet::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corruption parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corruption {
    /// Fraction of records to corrupt.
    pub fraction: f64,
    /// Bit flips applied to each corrupted frame.
    pub bit_flips: usize,
    /// Probability that a corrupted frame is also truncated to a random
    /// length.
    pub truncate_prob: f64,
}

impl Default for Corruption {
    fn default() -> Self {
        Corruption {
            fraction: 0.1,
            bit_flips: 4,
            truncate_prob: 0.1,
        }
    }
}

impl Corruption {
    /// Returns a copy of `trace` with corruption applied. Labels and
    /// timestamps are preserved — corruption models channel noise and
    /// capture loss, not label noise.
    pub fn apply(&self, trace: &Trace, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        trace
            .iter()
            .map(|record| {
                let mut record = record.clone();
                if rng.gen::<f64>() < self.fraction && !record.frame.is_empty() {
                    let mut frame = record.frame.to_vec();
                    for _ in 0..self.bit_flips {
                        let byte = rng.gen_range(0..frame.len());
                        let bit = rng.gen_range(0..8u8);
                        frame[byte] ^= 1 << bit;
                    }
                    if rng.gen::<f64>() < self.truncate_prob && frame.len() > 15 {
                        let keep = rng.gen_range(14..frame.len());
                        frame.truncate(keep);
                    }
                    record.frame = Bytes::from(frame);
                }
                record
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn corruption_is_bounded_and_label_preserving() {
        let trace = Scenario::smart_home_default(1).generate().unwrap();
        let corrupted = Corruption {
            fraction: 0.3,
            bit_flips: 2,
            truncate_prob: 0.0,
        }
        .apply(&trace, 7);
        assert_eq!(corrupted.len(), trace.len());
        let mut changed = 0usize;
        for (a, b) in trace.iter().zip(corrupted.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.timestamp_us, b.timestamp_us);
            if a.frame != b.frame {
                changed += 1;
                assert_eq!(a.frame.len(), b.frame.len());
            }
        }
        let frac = changed as f64 / trace.len() as f64;
        assert!((0.2..0.4).contains(&frac), "changed fraction {frac}");
    }

    #[test]
    fn zero_fraction_is_identity() {
        let trace = Scenario::smart_home_default(2).generate().unwrap();
        let same = Corruption {
            fraction: 0.0,
            ..Corruption::default()
        }
        .apply(&trace, 7);
        assert_eq!(same, trace);
    }

    #[test]
    fn corruption_is_deterministic() {
        let trace = Scenario::smart_home_default(3).generate().unwrap();
        let a = Corruption::default().apply(&trace, 9);
        let b = Corruption::default().apply(&trace, 9);
        assert_eq!(a, b);
        let c = Corruption::default().apply(&trace, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn truncation_keeps_frames_parseable_or_rejected_cleanly() {
        let trace = Scenario::smart_home_default(4).generate().unwrap();
        let corrupted = Corruption {
            fraction: 1.0,
            bit_flips: 8,
            truncate_prob: 0.5,
        }
        .apply(&trace, 11);
        // Parsing may fail, but must never panic.
        for r in corrupted.iter() {
            let _ = p4guard_packet::parse(&r.frame);
        }
    }
}
