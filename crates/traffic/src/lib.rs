//! # p4guard-traffic
//!
//! A deterministic IoT traffic simulator that stands in for the paper's
//! network traces: per-device benign behaviour models across seven
//! protocols (MQTT, CoAP, DNS, Modbus/TCP, NTP/UDP, bulk TCP, and the
//! non-IP ZWire mesh) plus nine attack-family generators, composed by
//! [`scenario::Scenario`] into labelled, time-ordered
//! [`p4guard_packet::Trace`]s.
//!
//! Everything is seeded: the same [`scenario::Scenario`] always generates
//! the byte-identical trace, which makes every experiment in the workspace
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use p4guard_traffic::scenario::Scenario;
//! use p4guard_traffic::stats::TraceStats;
//!
//! let trace = Scenario::smart_home_default(42).generate()?;
//! let stats = TraceStats::compute(&trace);
//! assert!(stats.attack_fraction() > 0.0);
//! println!("{stats}");
//! # Ok::<(), p4guard_traffic::scenario::ScenarioError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacks;
pub mod benign;
pub mod corruption;
pub mod device;
pub mod scenario;
pub mod split;
pub mod stats;
pub mod util;

pub use corruption::Corruption;
pub use device::{Device, DeviceKind, Fleet};
pub use scenario::{AttackEvent, Scenario, ScenarioError};
pub use split::{split_random, split_temporal};
pub use stats::TraceStats;
