//! Benign traffic generators: the normal behaviour of each device kind.
//!
//! Every generator emits wire-correct frames (built with
//! [`PacketBuilder`]) labelled [`Label::Benign`] into a [`Trace`], covering
//! the full protocol mix: MQTT telemetry sessions, CoAP polling, DNS
//! lookups, NTP, bulk TCP uploads, Modbus polling, ZWire mesh chatter, ARP
//! and ICMP.

use crate::device::Device;
use crate::util::{ephemeral_port, flow_id, jittered, secs, zwire_flow_id};
use bytes::Bytes;
use p4guard_packet::arp::ArpHeader;
use p4guard_packet::coap::CoapMessage;
use p4guard_packet::dns::DnsMessage;
use p4guard_packet::icmp::IcmpHeader;
use p4guard_packet::modbus::ModbusAdu;
use p4guard_packet::mqtt::MqttPacket;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::trace::{Label, Record, Trace};
use p4guard_packet::zwire::{ZWireFrame, ZWireType};
use p4guard_packet::{mqtt, PacketBuilder};
use rand::Rng;

/// Pushes one benign record.
pub(crate) fn push(trace: &mut Trace, t: f64, frame: Bytes, label: Label, flow: u64) {
    trace.push(Record {
        timestamp_us: secs(t),
        frame,
        label,
        flow_id: flow,
    });
}

fn builder(src: &Device, dst: &Device) -> PacketBuilder {
    PacketBuilder::new(src.mac, dst.mac)
}

/// Sequence-number bookkeeping for one simulated TCP session.
pub(crate) struct TcpSession<'a> {
    pub client: &'a Device,
    pub server: &'a Device,
    pub client_port: u16,
    pub server_port: u16,
    pub client_seq: u32,
    pub server_seq: u32,
    pub flow_c2s: u64,
    pub flow_s2c: u64,
    c2s: PacketBuilder,
    s2c: PacketBuilder,
}

impl<'a> TcpSession<'a> {
    /// Opens bookkeeping for a client→server session on `server_port`.
    pub fn new(
        client: &'a Device,
        server: &'a Device,
        server_port: u16,
        rng: &mut impl Rng,
    ) -> Self {
        let client_port = ephemeral_port(rng);
        TcpSession {
            client,
            server,
            client_port,
            server_port,
            client_seq: rng.gen(),
            server_seq: rng.gen(),
            flow_c2s: flow_id(client.ip, server.ip, 6, client_port, server_port),
            flow_s2c: flow_id(server.ip, client.ip, 6, server_port, client_port),
            c2s: builder(client, server),
            s2c: builder(server, client),
        }
    }

    /// Emits the three-way handshake, returning the time after it.
    pub fn handshake(&mut self, trace: &mut Trace, t: f64, label: Label) -> f64 {
        let syn = TcpHeader::new(
            self.client_port,
            self.server_port,
            self.client_seq,
            0,
            TcpFlags::SYN,
        );
        push(
            trace,
            t,
            self.c2s.tcp(self.client.ip, self.server.ip, syn, &[]),
            label,
            self.flow_c2s,
        );
        self.client_seq = self.client_seq.wrapping_add(1);
        let synack = TcpHeader::new(
            self.server_port,
            self.client_port,
            self.server_seq,
            self.client_seq,
            TcpFlags::SYN | TcpFlags::ACK,
        );
        push(
            trace,
            t + 0.0004,
            self.s2c.tcp(self.server.ip, self.client.ip, synack, &[]),
            label,
            self.flow_s2c,
        );
        self.server_seq = self.server_seq.wrapping_add(1);
        let ack = TcpHeader::new(
            self.client_port,
            self.server_port,
            self.client_seq,
            self.server_seq,
            TcpFlags::ACK,
        );
        push(
            trace,
            t + 0.0008,
            self.c2s.tcp(self.client.ip, self.server.ip, ack, &[]),
            label,
            self.flow_c2s,
        );
        t + 0.001
    }

    /// Emits a client→server data segment (PSH|ACK).
    pub fn client_send(&mut self, trace: &mut Trace, t: f64, payload: &[u8], label: Label) {
        let hdr = TcpHeader::new(
            self.client_port,
            self.server_port,
            self.client_seq,
            self.server_seq,
            TcpFlags::PSH | TcpFlags::ACK,
        );
        push(
            trace,
            t,
            self.c2s.tcp(self.client.ip, self.server.ip, hdr, payload),
            label,
            self.flow_c2s,
        );
        self.client_seq = self.client_seq.wrapping_add(payload.len() as u32);
    }

    /// Emits a server→client data segment (PSH|ACK).
    pub fn server_send(&mut self, trace: &mut Trace, t: f64, payload: &[u8], label: Label) {
        let hdr = TcpHeader::new(
            self.server_port,
            self.client_port,
            self.server_seq,
            self.client_seq,
            TcpFlags::PSH | TcpFlags::ACK,
        );
        push(
            trace,
            t,
            self.s2c.tcp(self.server.ip, self.client.ip, hdr, payload),
            label,
            self.flow_s2c,
        );
        self.server_seq = self.server_seq.wrapping_add(payload.len() as u32);
    }

    /// Emits the FIN/ACK teardown.
    pub fn close(&mut self, trace: &mut Trace, t: f64, label: Label) {
        let fin = TcpHeader::new(
            self.client_port,
            self.server_port,
            self.client_seq,
            self.server_seq,
            TcpFlags::FIN | TcpFlags::ACK,
        );
        push(
            trace,
            t,
            self.c2s.tcp(self.client.ip, self.server.ip, fin, &[]),
            label,
            self.flow_c2s,
        );
        let finack = TcpHeader::new(
            self.server_port,
            self.client_port,
            self.server_seq,
            self.client_seq.wrapping_add(1),
            TcpFlags::FIN | TcpFlags::ACK,
        );
        push(
            trace,
            t + 0.0004,
            self.s2c.tcp(self.server.ip, self.client.ip, finack, &[]),
            label,
            self.flow_s2c,
        );
    }
}

/// Parameters of an MQTT telemetry session.
#[derive(Debug, Clone, Copy)]
pub struct MqttTelemetry {
    /// Seconds between PUBLISH messages.
    pub publish_interval_s: f64,
    /// MQTT keep-alive (PINGREQ cadence), seconds.
    pub keep_alive_s: f64,
    /// Fraction of publishes at QoS 1 (acknowledged).
    pub qos1_fraction: f64,
}

impl Default for MqttTelemetry {
    fn default() -> Self {
        MqttTelemetry {
            publish_interval_s: 5.0,
            keep_alive_s: 60.0,
            qos1_fraction: 0.25,
        }
    }
}

impl MqttTelemetry {
    /// Emits one device's telemetry session against the broker over
    /// `[start_s, end_s)`.
    pub fn emit(
        &self,
        trace: &mut Trace,
        device: &Device,
        broker: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let mut session = TcpSession::new(device, broker, mqtt::PORT, rng);
        let mut t = session.handshake(trace, start_s, label);
        let connect = MqttPacket::Connect {
            keep_alive: self.keep_alive_s as u16,
            client_id: format!("sensor-{:04}", device.id),
            connect_flags: 0x02, // clean session
        };
        session.client_send(trace, t, &connect.encode(), label);
        let connack = MqttPacket::ConnAck {
            session_present: false,
            return_code: 0,
        };
        session.server_send(trace, t + 0.002, &connack.encode(), label);
        t += 0.01;
        let mut next_ping = t + self.keep_alive_s;
        let mut packet_id = 1u16;
        let topic = format!("home/{}/{}", device.kind, device.id);
        while t < end_s {
            let qos = u8::from(rng.gen::<f64>() < self.qos1_fraction);
            let reading = format!("{{\"v\":{:.2}}}", rng.gen::<f64>() * 40.0);
            let publish = MqttPacket::Publish {
                topic: topic.clone(),
                packet_id: (qos > 0).then_some(packet_id),
                qos,
                retain: false,
                payload: reading.into_bytes(),
            };
            session.client_send(trace, t, &publish.encode(), label);
            if qos > 0 {
                let puback = MqttPacket::PubAck { packet_id };
                session.server_send(trace, t + 0.003, &puback.encode(), label);
                packet_id = packet_id.wrapping_add(1).max(1);
            }
            if t >= next_ping {
                session.client_send(trace, t + 0.05, &MqttPacket::PingReq.encode(), label);
                session.server_send(trace, t + 0.053, &MqttPacket::PingResp.encode(), label);
                next_ping = t + self.keep_alive_s;
            }
            t += jittered(self.publish_interval_s, 0.2, rng);
        }
        session.client_send(trace, end_s, &MqttPacket::Disconnect.encode(), label);
        session.close(trace, end_s + 0.001, label);
    }
}

/// Parameters of gateway→sensor CoAP polling.
#[derive(Debug, Clone, Copy)]
pub struct CoapPolling {
    /// Seconds between polls.
    pub poll_interval_s: f64,
}

impl Default for CoapPolling {
    fn default() -> Self {
        CoapPolling {
            poll_interval_s: 10.0,
        }
    }
}

impl CoapPolling {
    /// Emits gateway→sensor polls (GET + 2.05 response) over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        gateway: &Device,
        sensor: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let client_port = ephemeral_port(rng);
        let g2s = builder(gateway, sensor);
        let s2g = builder(sensor, gateway);
        let flow_req = flow_id(
            gateway.ip,
            sensor.ip,
            17,
            client_port,
            p4guard_packet::coap::PORT,
        );
        let flow_resp = flow_id(
            sensor.ip,
            gateway.ip,
            17,
            p4guard_packet::coap::PORT,
            client_port,
        );
        let mut t = start_s + rng.gen::<f64>() * self.poll_interval_s;
        let mut message_id: u16 = rng.gen();
        while t < end_s {
            let token = vec![rng.gen::<u8>(), rng.gen::<u8>()];
            let req = CoapMessage::get(message_id, token.clone(), &["sensors", "reading"]);
            push(
                trace,
                t,
                g2s.udp(
                    gateway.ip,
                    sensor.ip,
                    client_port,
                    p4guard_packet::coap::PORT,
                    &req.encode(),
                ),
                label,
                flow_req,
            );
            let body = format!("{{\"r\":{:.3}}}", rng.gen::<f64>());
            let resp = CoapMessage::content_response(message_id, token, body.into_bytes());
            push(
                trace,
                t + 0.004,
                s2g.udp(
                    sensor.ip,
                    gateway.ip,
                    p4guard_packet::coap::PORT,
                    client_port,
                    &resp.encode(),
                ),
                label,
                flow_resp,
            );
            message_id = message_id.wrapping_add(1);
            t += jittered(self.poll_interval_s, 0.15, rng);
        }
    }
}

/// Parameters of periodic DNS lookups.
#[derive(Debug, Clone, Copy)]
pub struct DnsLookups {
    /// Seconds between lookups.
    pub lookup_interval_s: f64,
}

impl Default for DnsLookups {
    fn default() -> Self {
        DnsLookups {
            lookup_interval_s: 30.0,
        }
    }
}

impl DnsLookups {
    /// Emits device→resolver lookups (query + response) over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        device: &Device,
        dns: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let names = [
            "telemetry.vendor.example.com",
            "time.vendor.example.com",
            "update.vendor.example.com",
            "api.cloud.example.net",
        ];
        let d2s = builder(device, dns);
        let s2d = builder(dns, device);
        let mut t = start_s + rng.gen::<f64>() * self.lookup_interval_s;
        while t < end_s {
            let sport = ephemeral_port(rng);
            let id: u16 = rng.gen();
            let name = names[rng.gen_range(0..names.len())];
            let query = DnsMessage::query(id, name);
            push(
                trace,
                t,
                d2s.udp(
                    device.ip,
                    dns.ip,
                    sport,
                    p4guard_packet::dns::PORT,
                    &query.encode(),
                ),
                label,
                flow_id(device.ip, dns.ip, 17, sport, p4guard_packet::dns::PORT),
            );
            let mut resp = query.clone();
            resp.flags = DnsMessage::FLAGS_RESPONSE;
            resp.ancount = 1;
            // Minimal A-record answer with a name pointer.
            resp.answer_bytes = vec![
                0xc0,
                0x0c,
                0x00,
                0x01,
                0x00,
                0x01,
                0x00,
                0x00,
                0x00,
                0x3c,
                0x00,
                0x04,
                203,
                0,
                113,
                rng.gen(),
            ];
            push(
                trace,
                t + 0.006,
                s2d.udp(
                    dns.ip,
                    device.ip,
                    p4guard_packet::dns::PORT,
                    sport,
                    &resp.encode(),
                ),
                label,
                flow_id(dns.ip, device.ip, 17, p4guard_packet::dns::PORT, sport),
            );
            t += jittered(self.lookup_interval_s, 0.3, rng);
        }
    }
}

/// NTP-style time sync over UDP port 123.
#[derive(Debug, Clone, Copy)]
pub struct NtpSync {
    /// Seconds between syncs.
    pub sync_interval_s: f64,
}

impl Default for NtpSync {
    fn default() -> Self {
        NtpSync {
            sync_interval_s: 64.0,
        }
    }
}

impl NtpSync {
    /// Emits device→gateway NTP request/response pairs over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        device: &Device,
        server: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let d2s = builder(device, server);
        let s2d = builder(server, device);
        let mut t = start_s + rng.gen::<f64>() * self.sync_interval_s;
        while t < end_s {
            let sport = ephemeral_port(rng);
            let mut req = [0u8; 48];
            req[0] = 0x23; // LI=0, VN=4, mode=3 (client)
            rng.fill(&mut req[40..48]);
            push(
                trace,
                t,
                d2s.udp(device.ip, server.ip, sport, 123, &req),
                label,
                flow_id(device.ip, server.ip, 17, sport, 123),
            );
            let mut resp = [0u8; 48];
            resp[0] = 0x24; // mode=4 (server)
            rng.fill(&mut resp[16..48]);
            push(
                trace,
                t + 0.002,
                s2d.udp(server.ip, device.ip, 123, sport, &resp),
                label,
                flow_id(server.ip, device.ip, 17, 123, sport),
            );
            t += jittered(self.sync_interval_s, 0.1, rng);
        }
    }
}

/// Bulk TCP upload (camera video segments to the broker host's storage
/// service on port 8080).
#[derive(Debug, Clone, Copy)]
pub struct BulkUpload {
    /// Seconds between upload bursts.
    pub burst_interval_s: f64,
    /// Segments per burst.
    pub segments_per_burst: usize,
    /// Bytes per segment.
    pub segment_len: usize,
}

impl Default for BulkUpload {
    fn default() -> Self {
        BulkUpload {
            burst_interval_s: 20.0,
            segments_per_burst: 6,
            segment_len: 700,
        }
    }
}

impl BulkUpload {
    /// Emits periodic upload bursts over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        device: &Device,
        server: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let mut t = start_s + rng.gen::<f64>() * self.burst_interval_s;
        while t < end_s {
            let mut session = TcpSession::new(device, server, 8080, rng);
            let mut bt = session.handshake(trace, t, label);
            for _ in 0..self.segments_per_burst {
                let mut payload = vec![0u8; self.segment_len];
                rng.fill(payload.as_mut_slice());
                session.client_send(trace, bt, &payload, label);
                // Server ACK.
                session.server_send(trace, bt + 0.0008, &[], label);
                bt += 0.002;
            }
            session.close(trace, bt, label);
            t += jittered(self.burst_interval_s, 0.25, rng);
        }
    }
}

/// Gateway→PLC Modbus polling.
#[derive(Debug, Clone, Copy)]
pub struct ModbusPolling {
    /// Seconds between polls.
    pub poll_interval_s: f64,
}

impl Default for ModbusPolling {
    fn default() -> Self {
        ModbusPolling {
            poll_interval_s: 2.0,
        }
    }
}

impl ModbusPolling {
    /// Emits a long-lived Modbus polling session over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        gateway: &Device,
        plc: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let mut session = TcpSession::new(gateway, plc, p4guard_packet::modbus::PORT, rng);
        let mut t = session.handshake(trace, start_s, label);
        let mut transaction: u16 = 1;
        while t < end_s {
            let req = ModbusAdu::read_holding_registers(transaction, 1, 0x0000, 8);
            session.client_send(trace, t, &req.encode(), label);
            // Response: function 3, byte count 16, register values.
            let mut data = vec![16u8];
            for _ in 0..16 {
                data.push(rng.gen());
            }
            let resp = ModbusAdu {
                transaction_id: transaction,
                unit_id: 1,
                function: p4guard_packet::modbus::ModbusFunction::ReadHoldingRegisters,
                data,
            };
            session.server_send(trace, t + 0.004, &resp.encode(), label);
            transaction = transaction.wrapping_add(1);
            t += jittered(self.poll_interval_s, 0.1, rng);
        }
        session.close(trace, end_s, label);
    }
}

/// ZWire mesh chatter: beacons, sensor reports to the gateway, and
/// occasional gateway commands.
#[derive(Debug, Clone, Copy)]
pub struct ZWireChatter {
    /// Seconds between data reports.
    pub report_interval_s: f64,
    /// Seconds between broadcast beacons.
    pub beacon_interval_s: f64,
}

impl Default for ZWireChatter {
    fn default() -> Self {
        ZWireChatter {
            report_interval_s: 8.0,
            beacon_interval_s: 30.0,
        }
    }
}

impl ZWireChatter {
    /// Emits one sensor's mesh traffic over the window.
    ///
    /// # Panics
    ///
    /// Panics if either device lacks a ZWire node id.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        trace: &mut Trace,
        sensor: &Device,
        gateway: &Device,
        home_id: u32,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let s_node = sensor.zwire_node.expect("sensor has a zwire node");
        let g_node = gateway.zwire_node.expect("gateway has a zwire node");
        let s2g = builder(sensor, gateway);
        let g2s = builder(gateway, sensor);
        let s2all = PacketBuilder::new(sensor.mac, p4guard_packet::MacAddr::BROADCAST);
        let mut seq = 0u8;
        let mut t = start_s + rng.gen::<f64>() * self.report_interval_s;
        let mut next_beacon = start_s + rng.gen::<f64>() * self.beacon_interval_s;
        while t < end_s {
            if next_beacon <= t {
                let beacon = ZWireFrame::new(
                    ZWireType::Beacon,
                    home_id,
                    s_node,
                    ZWireFrame::BROADCAST_NODE,
                    seq,
                    vec![0x01, s_node],
                );
                push(
                    trace,
                    next_beacon,
                    s2all.zwire(&beacon),
                    label,
                    zwire_flow_id(home_id, s_node, ZWireFrame::BROADCAST_NODE),
                );
                seq = seq.wrapping_add(1);
                next_beacon += self.beacon_interval_s;
            }
            let report = ZWireFrame::new(
                ZWireType::Data,
                home_id,
                s_node,
                g_node,
                seq,
                vec![0x10, rng.gen(), rng.gen()],
            );
            push(
                trace,
                t,
                s2g.zwire(&report),
                label,
                zwire_flow_id(home_id, s_node, g_node),
            );
            let ack = ZWireFrame::new(ZWireType::Ack, home_id, g_node, s_node, seq, vec![]);
            push(
                trace,
                t + 0.003,
                g2s.zwire(&ack),
                label,
                zwire_flow_id(home_id, g_node, s_node),
            );
            seq = seq.wrapping_add(1);
            // Occasional command from the gateway.
            if rng.gen::<f64>() < 0.1 {
                let cmd = ZWireFrame::new(
                    ZWireType::Command,
                    home_id,
                    g_node,
                    s_node,
                    seq,
                    vec![0x20, rng.gen_range(0..4)],
                );
                push(
                    trace,
                    t + 0.5,
                    g2s.zwire(&cmd),
                    label,
                    zwire_flow_id(home_id, g_node, s_node),
                );
                let cack = ZWireFrame::new(ZWireType::Ack, home_id, s_node, g_node, seq, vec![]);
                push(
                    trace,
                    t + 0.503,
                    s2g.zwire(&cack),
                    label,
                    zwire_flow_id(home_id, s_node, g_node),
                );
                seq = seq.wrapping_add(1);
            }
            t += jittered(self.report_interval_s, 0.2, rng);
        }
    }
}

/// Occasional ARP resolution chatter.
#[derive(Debug, Clone, Copy)]
pub struct ArpChatter {
    /// Seconds between resolutions.
    pub interval_s: f64,
}

impl Default for ArpChatter {
    fn default() -> Self {
        ArpChatter { interval_s: 45.0 }
    }
}

impl ArpChatter {
    /// Emits request/reply pairs between `a` and `b` over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        a: &Device,
        b: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let a2all = PacketBuilder::new(a.mac, p4guard_packet::MacAddr::BROADCAST);
        let b2a = builder(b, a);
        let flow = zwire_flow_id(0, a.id as u8, b.id as u8) ^ 0xa0a0;
        let mut t = start_s + rng.gen::<f64>() * self.interval_s;
        while t < end_s {
            let req = ArpHeader::request(a.mac, a.ip, b.ip);
            push(trace, t, a2all.arp(&req), label, flow);
            let reply = ArpHeader {
                operation: p4guard_packet::arp::ArpOperation::Reply,
                sender_mac: b.mac,
                sender_ip: b.ip,
                target_mac: a.mac,
                target_ip: a.ip,
            };
            push(trace, t + 0.001, b2a.arp(&reply), label, flow);
            t += jittered(self.interval_s, 0.4, rng);
        }
    }
}

/// Gateway liveness pings.
#[derive(Debug, Clone, Copy)]
pub struct PingSweep {
    /// Seconds between echo pairs per device.
    pub interval_s: f64,
}

impl Default for PingSweep {
    fn default() -> Self {
        PingSweep { interval_s: 60.0 }
    }
}

impl PingSweep {
    /// Emits gateway→device echo request/reply pairs over the window.
    pub fn emit(
        &self,
        trace: &mut Trace,
        gateway: &Device,
        device: &Device,
        start_s: f64,
        end_s: f64,
        rng: &mut impl Rng,
    ) {
        let label = Label::Benign;
        let g2d = builder(gateway, device);
        let d2g = builder(device, gateway);
        let flow = flow_id(gateway.ip, device.ip, 1, 0, 0);
        let mut t = start_s + rng.gen::<f64>() * self.interval_s;
        let mut seqno = 1u16;
        while t < end_s {
            let req = IcmpHeader::echo_request(0x4242, seqno);
            push(
                trace,
                t,
                g2d.icmp(gateway.ip, device.ip, req, b"p4guard-ping"),
                label,
                flow,
            );
            let reply = IcmpHeader {
                icmp_type: p4guard_packet::icmp::TYPE_ECHO_REPLY,
                code: 0,
                rest: req.rest,
            };
            push(
                trace,
                t + 0.001,
                d2g.icmp(device.ip, gateway.ip, reply, b"p4guard-ping"),
                label,
                flow_id(device.ip, gateway.ip, 1, 0, 0),
            );
            seqno = seqno.wrapping_add(1);
            t += jittered(self.interval_s, 0.2, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, Fleet};
    use p4guard_packet::packet::{parse, ProtocolTag};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet() -> Fleet {
        Fleet::mixed()
    }

    fn protocols(trace: &Trace) -> Vec<ProtocolTag> {
        trace
            .iter()
            .map(|r| parse(&r.frame).expect("generated frames parse").protocol())
            .collect()
    }

    #[test]
    fn mqtt_telemetry_emits_parseable_mqtt() {
        let f = fleet();
        let dev = f.of_kind(DeviceKind::Thermostat)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(1);
        MqttTelemetry::default().emit(&mut trace, dev, f.broker(), 0.0, 60.0, &mut rng);
        let tags = protocols(&trace);
        assert!(tags.contains(&ProtocolTag::Mqtt));
        assert!(trace.iter().all(|r| !r.label.is_attack()));
        assert!(trace.len() > 15);
    }

    #[test]
    fn coap_polling_round_trips() {
        let f = fleet();
        let sensor = f.of_kind(DeviceKind::CoapSensor)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(2);
        CoapPolling::default().emit(&mut trace, f.gateway(), sensor, 0.0, 100.0, &mut rng);
        let tags = protocols(&trace);
        assert!(tags.iter().all(|t| *t == ProtocolTag::Coap));
        assert!(trace.len() >= 16, "len = {}", trace.len());
    }

    #[test]
    fn dns_lookups_parse() {
        let f = fleet();
        let dev = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(3);
        DnsLookups::default().emit(&mut trace, dev, f.dns_server(), 0.0, 300.0, &mut rng);
        assert!(protocols(&trace).iter().all(|t| *t == ProtocolTag::Dns));
    }

    #[test]
    fn modbus_polling_parses() {
        let f = fleet();
        let plc = f.of_kind(DeviceKind::ModbusPlc)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(4);
        ModbusPolling::default().emit(&mut trace, f.gateway(), plc, 0.0, 30.0, &mut rng);
        let tags = protocols(&trace);
        assert!(tags.contains(&ProtocolTag::Modbus));
    }

    #[test]
    fn zwire_chatter_parses_and_uses_home_id() {
        let f = fleet();
        let sensor = f.of_kind(DeviceKind::ZWireSensor)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(5);
        ZWireChatter::default().emit(
            &mut trace,
            sensor,
            f.gateway(),
            f.zwire_home_id,
            0.0,
            120.0,
            &mut rng,
        );
        for r in trace.iter() {
            let p = parse(&r.frame).unwrap();
            assert_eq!(p.protocol(), ProtocolTag::ZWire);
            assert_eq!(p.zwire.as_ref().unwrap().home_id, f.zwire_home_id);
        }
    }

    #[test]
    fn ntp_bulk_arp_ping_parse() {
        let f = fleet();
        let cam = f.of_kind(DeviceKind::Camera)[0];
        let mut trace = Trace::new();
        let mut rng = StdRng::seed_from_u64(6);
        NtpSync::default().emit(&mut trace, cam, f.gateway(), 0.0, 200.0, &mut rng);
        BulkUpload::default().emit(&mut trace, cam, f.broker(), 0.0, 60.0, &mut rng);
        ArpChatter::default().emit(&mut trace, cam, f.gateway(), 0.0, 200.0, &mut rng);
        PingSweep::default().emit(&mut trace, f.gateway(), cam, 0.0, 200.0, &mut rng);
        let tags = protocols(&trace);
        assert!(tags.contains(&ProtocolTag::Udp)); // ntp
        assert!(tags.contains(&ProtocolTag::Tcp)); // bulk
        assert!(tags.contains(&ProtocolTag::Arp));
        assert!(tags.contains(&ProtocolTag::Icmp));
    }

    #[test]
    fn generation_is_deterministic() {
        let f = fleet();
        let dev = f.of_kind(DeviceKind::SmartPlug)[0];
        let mut a = Trace::new();
        let mut b = Trace::new();
        MqttTelemetry::default().emit(
            &mut a,
            dev,
            f.broker(),
            0.0,
            30.0,
            &mut StdRng::seed_from_u64(9),
        );
        MqttTelemetry::default().emit(
            &mut b,
            dev,
            f.broker(),
            0.0,
            30.0,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn tcp_session_sequences_progress() {
        let f = fleet();
        let cam = f.of_kind(DeviceKind::Camera)[0];
        let mut rng = StdRng::seed_from_u64(10);
        let mut trace = Trace::new();
        let mut s = TcpSession::new(cam, f.broker(), 8080, &mut rng);
        let seq0 = s.client_seq;
        let t = s.handshake(&mut trace, 0.0, Label::Benign);
        assert_eq!(s.client_seq, seq0.wrapping_add(1));
        s.client_send(&mut trace, t, b"hello", Label::Benign);
        assert_eq!(s.client_seq, seq0.wrapping_add(6));
        assert_eq!(trace.len(), 4);
    }
}
