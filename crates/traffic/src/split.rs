//! Train/test splitting of labelled traces.

use p4guard_packet::trace::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits a trace temporally: the first `train_fraction` of records (by
/// time order) become the training set. This is the evaluation-faithful
/// split — the detector is trained on the past and tested on the future.
pub fn split_temporal(trace: &Trace, train_fraction: f64) -> (Trace, Trace) {
    let mut sorted = trace.clone();
    sorted.sort_by_time();
    sorted.split_at_fraction(train_fraction)
}

/// Splits a trace uniformly at random (stratification-free), for ablations
/// that need i.i.d. train/test sets.
pub fn split_random(trace: &Trace, train_fraction: f64, seed: u64) -> (Trace, Trace) {
    let mut indices: Vec<usize> = (0..trace.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let cut =
        ((trace.len() as f64 * train_fraction.clamp(0.0, 1.0)).round() as usize).min(trace.len());
    let records = trace.records();
    let train: Trace = indices[..cut].iter().map(|&i| records[i].clone()).collect();
    let test: Trace = indices[cut..].iter().map(|&i| records[i].clone()).collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use p4guard_packet::trace::Trace;

    fn trace() -> Trace {
        Scenario::smart_home_default(3).generate().unwrap()
    }

    #[test]
    fn temporal_split_is_ordered() {
        let t = trace();
        let (train, test) = split_temporal(&t, 0.6);
        assert_eq!(train.len() + test.len(), t.len());
        let train_max = train.iter().map(|r| r.timestamp_us).max().unwrap();
        let test_min = test.iter().map(|r| r.timestamp_us).min().unwrap();
        assert!(train_max <= test_min);
    }

    #[test]
    fn random_split_is_deterministic_and_complete() {
        let t = trace();
        let (a1, b1) = split_random(&t, 0.7, 9);
        let (a2, _b2) = split_random(&t, 0.7, 9);
        assert_eq!(a1, a2);
        assert_eq!(a1.len() + b1.len(), t.len());
        let (a3, _) = split_random(&t, 0.7, 10);
        assert_ne!(a1, a3);
    }

    #[test]
    fn extreme_fractions() {
        let t = trace();
        let (train, test) = split_temporal(&t, 1.0);
        assert_eq!(train.len(), t.len());
        assert!(test.is_empty());
        let (train, test) = split_random(&t, 0.0, 1);
        assert!(train.is_empty());
        assert_eq!(test.len(), t.len());
    }
}
