//! Trace statistics: the data behind the dataset-summary table (T1).

use p4guard_packet::packet::{parse, ProtocolTag};
use p4guard_packet::trace::{AttackFamily, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Summary statistics of a labelled trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total record count.
    pub total: usize,
    /// Benign record count.
    pub benign: usize,
    /// Attack record count per family.
    pub attacks: BTreeMap<String, usize>,
    /// Record count per protocol.
    pub protocols: BTreeMap<String, usize>,
    /// Attack record count per protocol.
    pub attack_by_protocol: BTreeMap<String, usize>,
    /// Number of distinct flow ids.
    pub flows: usize,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Total bytes on the wire.
    pub bytes: usize,
}

impl TraceStats {
    /// Computes statistics over `trace`. Frames that fail to parse are
    /// counted under the protocol `"unparsed"`.
    pub fn compute(trace: &Trace) -> Self {
        let mut attacks: BTreeMap<String, usize> = BTreeMap::new();
        for family in AttackFamily::ALL {
            attacks.insert(family.to_string(), 0);
        }
        let mut protocols: BTreeMap<String, usize> = BTreeMap::new();
        let mut attack_by_protocol: BTreeMap<String, usize> = BTreeMap::new();
        let mut flows = HashSet::new();
        let mut benign = 0usize;
        let mut bytes = 0usize;
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        for r in trace.iter() {
            bytes += r.frame.len();
            flows.insert(r.flow_id);
            min_ts = min_ts.min(r.timestamp_us);
            max_ts = max_ts.max(r.timestamp_us);
            let proto = match parse(&r.frame) {
                Ok(p) => p.protocol().to_string(),
                Err(_) => "unparsed".to_owned(),
            };
            *protocols.entry(proto.clone()).or_insert(0) += 1;
            match r.label.family() {
                Some(f) => {
                    *attacks.entry(f.to_string()).or_insert(0) += 1;
                    *attack_by_protocol.entry(proto).or_insert(0) += 1;
                }
                None => benign += 1,
            }
        }
        let duration_s = if trace.is_empty() {
            0.0
        } else {
            (max_ts - min_ts) as f64 / 1e6
        };
        TraceStats {
            total: trace.len(),
            benign,
            attacks,
            protocols,
            attack_by_protocol,
            flows: flows.len(),
            duration_s,
            bytes,
        }
    }

    /// Attack fraction of the trace.
    pub fn attack_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.total - self.benign) as f64 / self.total as f64
        }
    }

    /// Protocols present (count > 0), in display order.
    pub fn protocols_present(&self) -> Vec<ProtocolTag> {
        ProtocolTag::ALL
            .into_iter()
            .filter(|t| self.protocols.get(&t.to_string()).copied().unwrap_or(0) > 0)
            .collect()
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} packets, {} flows, {:.1} s, {} bytes, {:.1}% attack",
            self.total,
            self.flows,
            self.duration_s,
            self.bytes,
            self.attack_fraction() * 100.0
        )?;
        writeln!(f, "  per protocol:")?;
        for (proto, count) in &self.protocols {
            let attacks = self.attack_by_protocol.get(proto).copied().unwrap_or(0);
            writeln!(f, "    {proto:<12} {count:>7}  ({attacks} attack)")?;
        }
        writeln!(f, "  per attack family:")?;
        for (family, count) in &self.attacks {
            if *count > 0 {
                writeln!(f, "    {family:<20} {count:>7}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn stats_add_up() {
        let trace = Scenario::mixed_default(11).generate().unwrap();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.total, trace.len());
        let attack_sum: usize = stats.attacks.values().sum();
        assert_eq!(stats.benign + attack_sum, stats.total);
        let proto_sum: usize = stats.protocols.values().sum();
        assert_eq!(proto_sum, stats.total);
        assert!(stats.flows > 50);
        assert!(stats.duration_s > 100.0);
        assert!(stats.bytes > stats.total * 20);
        assert!(!stats.protocols.contains_key("unparsed"));
    }

    #[test]
    fn protocols_present_covers_the_mix() {
        let trace = Scenario::mixed_default(11).generate().unwrap();
        let stats = TraceStats::compute(&trace);
        let present = stats.protocols_present();
        for tag in [
            ProtocolTag::Mqtt,
            ProtocolTag::Coap,
            ProtocolTag::Dns,
            ProtocolTag::Modbus,
            ProtocolTag::ZWire,
            ProtocolTag::Tcp,
            ProtocolTag::Udp,
        ] {
            assert!(present.contains(&tag), "missing {tag}");
        }
    }

    #[test]
    fn empty_trace_stats() {
        let stats = TraceStats::compute(&Trace::new());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.attack_fraction(), 0.0);
        assert_eq!(stats.duration_s, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let trace = Scenario::smart_home_default(2).generate().unwrap();
        let s = TraceStats::compute(&trace).to_string();
        assert!(s.contains("per protocol"));
        assert!(s.contains("mqtt"));
        assert!(s.contains("attack"));
    }
}
