//! Tenants: device classes with independent rulesets on shared hardware.
//!
//! Each tenant owns a [`ControlPlane`] over its own one-stage ACL switch,
//! so per-tenant publishes, canaries and rollbacks compose with every
//! existing control-plane primitive. What tenants *share* is the physical
//! table space — every publish is admitted against the
//! [`TableBudgeter`] before any table is
//! touched — and the shard workers, which resolve the owning tenant per
//! frame through a [`TenantClassifier`].

use crate::budget::{BudgetError, TableBudgeter, TenantShare};
use p4guard_dataplane::action::Action;
use p4guard_dataplane::control::ControlPlane;
use p4guard_dataplane::key::KeyLayout;
use p4guard_dataplane::parser::ParserSpec;
use p4guard_dataplane::resources::MemoryKind;
use p4guard_dataplane::switch::Switch;
use p4guard_dataplane::table::{MatchKind, Table};
use p4guard_rules::RuleSet;
use p4guard_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// First octet of the fleet address plan: tenants live under `10/8`.
pub const FLEET_NET: u8 = 10;

/// Second-octet span each tenant claims by default (16 octets ≍ 16 × 65536
/// addressable devices per tenant).
pub const DEFAULT_PREFIX_SPAN: u8 = 16;

/// The IPv4 address of device `device` in tenant `tenant` under the fleet
/// address plan: `10.(tenant·span + d₁₆).(d₈).(d₀)`.
///
/// # Panics
///
/// Panics if the device id overflows the tenant's prefix span.
pub fn device_ip(tenant: usize, device: u32, span: u8) -> Ipv4Addr {
    let hi = device >> 16;
    assert!(
        hi < u32::from(span) && tenant * usize::from(span) + (hi as usize) < 256,
        "device {device} overflows tenant {tenant} prefix span {span}"
    );
    Ipv4Addr::new(
        FLEET_NET,
        (tenant * usize::from(span)) as u8 + hi as u8,
        (device >> 8) as u8,
        device as u8,
    )
}

/// Source-prefix (VLAN-style) tenant resolution: an O(1) lookup of the
/// IPv4 source address's second octet in a 256-entry table. Frames outside
/// the fleet plan (non-IPv4, or not in `10/8`) fall back to the default
/// tenant, if one is configured.
#[derive(Debug, Clone)]
pub struct TenantClassifier {
    by_octet: [u16; 256],
    default: Option<usize>,
}

impl TenantClassifier {
    /// Builds the classifier for `tenants` tenants, each owning `span`
    /// consecutive second octets starting at `tenant · span`.
    ///
    /// # Panics
    ///
    /// Panics if the tenants do not fit in the 256-octet space.
    pub fn prefix_per_tenant(tenants: usize, span: u8) -> Self {
        assert!(span > 0, "prefix span must be nonzero");
        assert!(
            tenants * usize::from(span) <= 256,
            "{tenants} tenants × span {span} overflow the second octet"
        );
        let mut by_octet = [0u16; 256];
        for tenant in 0..tenants {
            for o in 0..usize::from(span) {
                by_octet[tenant * usize::from(span) + o] = tenant as u16 + 1;
            }
        }
        TenantClassifier {
            by_octet,
            default: None,
        }
    }

    /// Routes unclassifiable frames to `tenant` instead of dropping them.
    pub fn with_default(mut self, tenant: usize) -> Self {
        self.default = Some(tenant);
        self
    }

    /// The tenant owning `frame`, by source prefix.
    #[inline]
    pub fn resolve(&self, frame: &[u8]) -> Option<usize> {
        // Ethernet + IPv4 fixed header: EtherType at 12..14, source
        // address at 26..30.
        if frame.len() >= 30 && frame[12] == 0x08 && frame[13] == 0x00 && frame[26] == FLEET_NET {
            let t = self.by_octet[usize::from(frame[27])];
            if t != 0 {
                return Some(usize::from(t) - 1);
            }
        }
        self.default
    }
}

/// Declaration of one tenant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Human-readable tenant name (used as the `tenant` metric label).
    pub name: String,
    /// The tenant's claim on the shared table budget.
    pub share: TenantShare,
}

/// How the registry treats a publish that exceeds the tenant's allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Refuse the publish, leaving every table and cell untouched.
    Reject,
    /// Cut the lowest-priority entries until the ruleset fits.
    Trim,
}

/// Per-tenant table occupancy against the budgeter's allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantOccupancy {
    /// Tenant index.
    pub tenant: usize,
    /// TCAM bits the tenant's tables occupy.
    pub tcam_bits: usize,
    /// SRAM bits the tenant's tables occupy.
    pub sram_bits: usize,
    /// TCAM bits the budgeter allocated.
    pub allocated_tcam_bits: usize,
    /// SRAM bits the budgeter allocated.
    pub allocated_sram_bits: usize,
    /// Installed TCAM entries.
    pub tcam_entries: usize,
    /// TCAM bits the lowered (minimized) form occupies; `<= tcam_bits`.
    #[serde(default)]
    pub tcam_bits_minimized: usize,
    /// TCAM entries after minimization.
    #[serde(default)]
    pub tcam_entries_minimized: usize,
}

impl TenantOccupancy {
    /// Whether the tenant is inside its allocation on both memories.
    ///
    /// TCAM fit is judged on the **minimized** occupancy — the rows the
    /// lowered engines actually hold — matching how
    /// [`TableBudgeter::admit`] admits publishes.
    pub fn within_budget(&self) -> bool {
        self.tcam_bits_minimized <= self.allocated_tcam_bits
            && self.sram_bits <= self.allocated_sram_bits
    }
}

/// Result of a successful tenant publish.
#[derive(Debug, Clone)]
pub struct TenantPublish {
    /// Tenant index.
    pub tenant: usize,
    /// Published pipeline version (per-tenant version space).
    pub version: u64,
    /// Entries installed.
    pub installed: usize,
    /// Entries cut by [`AdmitPolicy::Trim`] (0 under `Reject`).
    pub trimmed: usize,
    /// Entry-level changes applied when the publish went through the
    /// delta path: `(removed, added)` against the previously active
    /// ruleset. `None` for a from-scratch install (first publish).
    pub delta: Option<(usize, usize)>,
    /// Occupancy after the publish.
    pub occupancy: TenantOccupancy,
}

/// Errors from [`TenantRegistry`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The budgeter refused the operation.
    Budget(BudgetError),
    /// The ruleset's key width does not match the fleet ACL layout.
    WidthMismatch {
        /// Width the registry's ACL stage keys on.
        expected: usize,
        /// Width the ruleset was compiled for.
        got: usize,
    },
    /// A table operation failed.
    Table(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Budget(e) => write!(f, "budget: {e}"),
            FleetError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "ruleset key width {got} does not match ACL width {expected}"
                )
            }
            FleetError::Table(e) => write!(f, "table: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<BudgetError> for FleetError {
    fn from(e: BudgetError) -> Self {
        FleetError::Budget(e)
    }
}

/// Layout of every tenant's ACL stage: which frame bytes form the match
/// key, and how many entries the stage can hold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclLayout {
    /// Parser window in bytes.
    pub window: usize,
    /// Byte offsets forming the match key (the learned feature set).
    pub offsets: Vec<usize>,
    /// Per-tenant table capacity in entries.
    pub capacity: usize,
}

impl Default for AclLayout {
    fn default() -> Self {
        // IPv4 protocol byte plus the four TCP/UDP port bytes — the
        // feature set the headline experiments learn over.
        AclLayout {
            window: 64,
            offsets: vec![23, 34, 35, 36, 37],
            capacity: 4096,
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    control: ControlPlane,
    active: Option<RuleSet>,
    rejected: u64,
    rejected_counter: Option<Counter>,
}

/// The fleet's tenant table: name → budgeted, independently-published
/// ruleset, all sharing one ACL key layout so a single scratch buffer and
/// classifier serve every tenant on the shard hot path.
pub struct TenantRegistry {
    tenants: Vec<TenantState>,
    budgeter: TableBudgeter,
    layout: AclLayout,
    telemetry: Option<Arc<Telemetry>>,
}

impl TenantRegistry {
    /// Builds a registry with one switch + control plane per tenant and
    /// the given shared budget.
    ///
    /// # Errors
    ///
    /// [`BudgetError::InfeasibleMinimums`] when the tenant guarantees
    /// exceed the global budget.
    pub fn new(
        specs: Vec<TenantSpec>,
        budget: crate::budget::BudgetConfig,
        layout: AclLayout,
    ) -> Result<Self, BudgetError> {
        let shares = specs.iter().map(|s| s.share).collect();
        let budgeter = TableBudgeter::new(budget, shares)?;
        let tenants = specs
            .into_iter()
            .map(|spec| {
                let parser = ParserSpec::raw_window(layout.window, 14);
                let mut switch = Switch::new(format!("tenant-{}", spec.name), parser, 1);
                switch.add_stage(Table::new(
                    "acl",
                    MatchKind::Ternary,
                    KeyLayout::new(layout.offsets.clone()),
                    layout.capacity,
                    Action::NoOp,
                ));
                TenantState {
                    spec,
                    control: ControlPlane::new(switch),
                    active: None,
                    rejected: 0,
                    rejected_counter: None,
                }
            })
            .collect();
        Ok(TenantRegistry {
            tenants,
            budgeter,
            layout,
            telemetry: None,
        })
    }

    /// Registers per-tenant budget gauges and rejection counters with
    /// `telemetry`; subsequent publishes keep them current.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        for (t, state) in self.tenants.iter_mut().enumerate() {
            let alloc = self.budgeter.allocation(t).expect("tenant in budgeter");
            for (memory, bits) in [
                (MemoryKind::Tcam, alloc.tcam_bits),
                (MemoryKind::Sram, alloc.sram_bits),
            ] {
                telemetry
                    .registry
                    .gauge(
                        "p4guard_tenant_budget_bits",
                        "Table bits allocated to a tenant",
                        &[
                            ("tenant", &state.spec.name),
                            ("memory", &memory.to_string()),
                        ],
                    )
                    .set(bits as f64);
            }
            state.rejected_counter = Some(telemetry.registry.counter(
                "p4guard_tenant_publish_rejected_total",
                "Tenant publishes refused by the table budgeter",
                &[("tenant", &state.spec.name)],
            ));
        }
        self.telemetry = Some(telemetry);
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The shared ACL key layout.
    pub fn layout(&self) -> &AclLayout {
        &self.layout
    }

    /// The budgeter policing this registry.
    pub fn budgeter(&self) -> &TableBudgeter {
        &self.budgeter
    }

    /// A tenant's declaration.
    pub fn spec(&self, tenant: usize) -> Option<&TenantSpec> {
        self.tenants.get(tenant).map(|t| &t.spec)
    }

    /// A tenant's control plane, for subscriptions, canaries, rollbacks.
    pub fn control(&self, tenant: usize) -> Option<&ControlPlane> {
        self.tenants.get(tenant).map(|t| &t.control)
    }

    /// The ruleset a tenant currently serves, if any was published.
    pub fn active_ruleset(&self, tenant: usize) -> Option<&RuleSet> {
        self.tenants.get(tenant).and_then(|t| t.active.as_ref())
    }

    /// Publishes rejected by the budgeter for `tenant` so far.
    pub fn rejected_publishes(&self, tenant: usize) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.rejected)
    }

    /// Builds a classifier matching this registry's tenant count under the
    /// default address plan.
    pub fn classifier(&self) -> TenantClassifier {
        TenantClassifier::prefix_per_tenant(self.tenants.len(), DEFAULT_PREFIX_SPAN).with_default(0)
    }

    /// Admits `ruleset` against the tenant's allocation and, if it fits
    /// (or `policy` is [`AdmitPolicy::Trim`]), swaps it in through the
    /// tenant's control plane.
    ///
    /// Admission happens strictly before any table mutation: a rejected
    /// publish returns with the tenant's tables, pipeline cells and every
    /// other tenant's state untouched.
    ///
    /// # Errors
    ///
    /// [`FleetError::Budget`] on rejection, [`FleetError::WidthMismatch`]
    /// for a ruleset compiled against a different key layout,
    /// [`FleetError::Table`] if installation fails.
    pub fn publish(
        &mut self,
        tenant: usize,
        ruleset: &RuleSet,
        policy: AdmitPolicy,
    ) -> Result<TenantPublish, FleetError> {
        let expected = self.layout.offsets.len();
        if ruleset.key_width() != expected {
            return Err(FleetError::WidthMismatch {
                expected,
                got: ruleset.key_width(),
            });
        }
        self.budgeter
            .allocation(tenant)
            .map_err(FleetError::Budget)?;
        let (admitted, trimmed) = match policy {
            AdmitPolicy::Reject => match self.budgeter.admit(tenant, ruleset) {
                Ok(()) => (ruleset.clone(), 0),
                Err(e) => {
                    let state = &mut self.tenants[tenant];
                    state.rejected += 1;
                    if let Some(c) = &state.rejected_counter {
                        c.inc();
                    }
                    return Err(e.into());
                }
            },
            AdmitPolicy::Trim => self.budgeter.trim(tenant, ruleset)?,
        };
        let state = &mut self.tenants[tenant];
        // Republish of an active tenant applies only the entry-level diff
        // (all entries carry the same on-match action, so equal-priority
        // insertion-order differences against a from-scratch install are
        // verdict-neutral); the first publish installs from scratch.
        let delta = match &state.active {
            Some(active) => {
                let diff = active.diff(&admitted);
                let applied = state
                    .control
                    .apply_ruleset_diff(0, &diff, Action::Drop)
                    .map_err(|e| FleetError::Table(e.to_string()))?;
                Some(applied)
            }
            None => {
                state
                    .control
                    .clear_stage(0)
                    .map_err(|e| FleetError::Table(e.to_string()))?;
                state
                    .control
                    .install_ruleset(0, &admitted, Action::Drop)
                    .map_err(|e| FleetError::Table(e.to_string()))?;
                None
            }
        };
        let installed = admitted.len();
        let publish = state.control.publish();
        state.active = Some(admitted);
        let occupancy = self.occupancy(tenant)?;
        self.export_occupancy(tenant, &occupancy);
        Ok(TenantPublish {
            tenant,
            version: publish.version,
            installed,
            trimmed,
            delta,
            occupancy,
        })
    }

    /// Measures a tenant's live table occupancy against its allocation.
    ///
    /// # Errors
    ///
    /// [`FleetError::Budget`] with
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    pub fn occupancy(&self, tenant: usize) -> Result<TenantOccupancy, FleetError> {
        let alloc = self.budgeter.allocation(tenant)?;
        let state = self.tenants.get(tenant).ok_or(BudgetError::NoSuchTenant {
            tenant,
            tenants: self.tenants.len(),
        })?;
        let resources = state.control.with_switch(|sw| sw.resources());
        Ok(TenantOccupancy {
            tenant,
            tcam_bits: resources.tcam_bits,
            sram_bits: resources.sram_bits,
            allocated_tcam_bits: alloc.tcam_bits,
            allocated_sram_bits: alloc.sram_bits,
            tcam_entries: resources.tcam_entries,
            tcam_bits_minimized: resources.tcam_bits_minimized,
            tcam_entries_minimized: resources.tcam_entries_minimized,
        })
    }

    /// Every tenant's occupancy, indexed by tenant.
    pub fn occupancies(&self) -> Vec<TenantOccupancy> {
        (0..self.tenants.len())
            .map(|t| self.occupancy(t).expect("tenant in range"))
            .collect()
    }

    fn export_occupancy(&self, tenant: usize, occ: &TenantOccupancy) {
        if let Some(telemetry) = &self.telemetry {
            let name = &self.tenants[tenant].spec.name;
            for (memory, bits) in [
                (MemoryKind::Tcam, occ.tcam_bits),
                (MemoryKind::Sram, occ.sram_bits),
            ] {
                telemetry
                    .registry
                    .gauge(
                        "p4guard_tenant_occupancy_bits",
                        "Table bits a tenant currently occupies",
                        &[("tenant", name), ("memory", &memory.to_string())],
                    )
                    .set(bits as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetConfig;
    use p4guard_rules::TernaryEntry;

    fn specs(n: usize) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec {
                name: format!("t{i}"),
                share: TenantShare::flat(),
            })
            .collect()
    }

    fn ruleset_with(entries: usize, width: usize) -> RuleSet {
        let mut rs = RuleSet::new(width, 0);
        for i in 0..entries {
            rs.push(TernaryEntry::new(
                vec![i as u8; width],
                vec![0xff; width],
                1,
                i as i32,
            ));
        }
        rs
    }

    #[test]
    fn classifier_resolves_by_source_prefix() {
        let c = TenantClassifier::prefix_per_tenant(4, 16);
        let mut frame = vec![0u8; 40];
        frame[12] = 0x08;
        let ip = device_ip(2, 0x0001_0203, 16);
        frame[26..30].copy_from_slice(&ip.octets());
        assert_eq!(c.resolve(&frame), Some(2));
        // Outside the plan: no default → None, with default → Some.
        frame[26] = 192;
        assert_eq!(c.resolve(&frame), None);
        assert_eq!(c.with_default(1).resolve(&frame), Some(1));
    }

    #[test]
    fn publish_respects_budget_and_reports_occupancy() {
        let layout = AclLayout::default();
        let width = layout.offsets.len();
        let bits_per_entry = width * 8 * 2;
        let mut reg = TenantRegistry::new(
            specs(2),
            BudgetConfig {
                tcam_bits: bits_per_entry * 20, // ten entries per tenant
                sram_bits: 0,
            },
            layout,
        )
        .unwrap();
        let ok = reg
            .publish(0, &ruleset_with(10, width), AdmitPolicy::Reject)
            .unwrap();
        assert_eq!(ok.installed, 10);
        assert!(ok.occupancy.within_budget());
        assert_eq!(ok.occupancy.tcam_bits, 10 * bits_per_entry);

        let cell = reg.control(1).unwrap().attach_cell();
        let before = cell.version();
        let err = reg
            .publish(1, &ruleset_with(11, width), AdmitPolicy::Reject)
            .unwrap_err();
        assert!(matches!(err, FleetError::Budget(_)));
        assert_eq!(reg.rejected_publishes(1), 1);
        // Rejection left tenant 1's published pipeline untouched.
        assert_eq!(cell.version(), before);
        assert_eq!(reg.occupancy(1).unwrap().tcam_entries, 0);

        let trimmed = reg
            .publish(1, &ruleset_with(11, width), AdmitPolicy::Trim)
            .unwrap();
        assert_eq!(trimmed.trimmed, 1);
        assert_eq!(trimmed.installed, 10);
        assert!(trimmed.occupancy.within_budget());
    }

    #[test]
    fn republish_applies_only_the_diff() {
        let layout = AclLayout::default();
        let width = layout.offsets.len();
        let mut reg =
            TenantRegistry::new(specs(1), BudgetConfig::default(), layout.clone()).unwrap();
        let first = reg
            .publish(0, &ruleset_with(10, width), AdmitPolicy::Reject)
            .unwrap();
        assert_eq!(first.delta, None, "first publish installs from scratch");

        // Change one entry: drop rule 9, add a new rule 10.
        let dropped = ruleset_with(10, width).entries()[0].clone(); // highest priority
        let mut next = RuleSet::new(width, 0);
        for e in ruleset_with(10, width).entries() {
            if *e != dropped {
                next.push(e.clone());
            }
        }
        next.push(TernaryEntry::new(
            vec![0xaa; width],
            vec![0xff; width],
            1,
            99,
        ));
        let second = reg.publish(0, &next, AdmitPolicy::Reject).unwrap();
        assert_eq!(second.delta, Some((1, 1)), "one removed, one added");
        assert_eq!(second.installed, 10);
        assert!(second.version > first.version);

        // The delta-applied table serves exactly the new ruleset: the new
        // rule drops, the removed one no longer does.
        let control = reg.control(0).unwrap();
        control.with_switch(|sw| {
            let table = sw.stage(0);
            assert_eq!(table.len(), 10);
        });
        control.with_switch_mut(|sw| {
            let mut frame = vec![0u8; 64];
            for (i, &off) in layout.offsets.iter().enumerate() {
                frame[off] = [0xaa; 5][i];
            }
            assert!(sw.process(&frame).is_drop(), "added rule enforces");
        });
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut reg =
            TenantRegistry::new(specs(1), BudgetConfig::default(), AclLayout::default()).unwrap();
        let err = reg
            .publish(0, &ruleset_with(1, 3), AdmitPolicy::Reject)
            .unwrap_err();
        assert!(matches!(err, FleetError::WidthMismatch { .. }));
    }
}
