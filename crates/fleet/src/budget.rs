//! The fleet-wide table-space budgeter.
//!
//! A physical switch has one TCAM and one SRAM; every tenant's compiled
//! ruleset competes for the same bits. [`TableBudgeter`] carves a global
//! bit budget into per-tenant allocations by weighted fair share on top of
//! per-tenant minimum guarantees, and admits or trims publishes against
//! those allocations. All arithmetic is integral and iteration order is
//! fixed, so the same tenant set always yields the same split.
//!
//! The allocation algorithm (per memory kind):
//!
//! 1. every tenant is granted its minimum guarantee up front — the
//!    constructor rejects tenant sets whose guarantees alone exceed the
//!    budget;
//! 2. the remaining bits are divided proportionally to integer weights
//!    (floor division), and the leftover from flooring is handed out by
//!    largest remainder, ties broken by tenant index.

use p4guard_dataplane::minimize::minimized_ternary_count;
use p4guard_dataplane::resources::MemoryKind;
use p4guard_rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The global bit budget shared by all tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Total TCAM bits available to the fleet.
    pub tcam_bits: usize,
    /// Total SRAM bits available to the fleet.
    pub sram_bits: usize,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        // A small fixed-function switch: 256 Kbit TCAM, 1 Mbit SRAM.
        BudgetConfig {
            tcam_bits: 256 * 1024,
            sram_bits: 1024 * 1024,
        }
    }
}

/// One tenant's claim on the shared budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantShare {
    /// Proportional weight for the bits left after minimum guarantees.
    /// Zero-weight tenants receive exactly their guarantees.
    pub weight: u32,
    /// TCAM bits guaranteed regardless of weight.
    pub min_tcam_bits: usize,
    /// SRAM bits guaranteed regardless of weight.
    pub min_sram_bits: usize,
}

impl TenantShare {
    /// An equal-weight share with no guarantees.
    pub fn flat() -> Self {
        TenantShare {
            weight: 1,
            min_tcam_bits: 0,
            min_sram_bits: 0,
        }
    }
}

/// The bits one tenant may occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantAllocation {
    /// Tenant index.
    pub tenant: usize,
    /// Allocated TCAM bits.
    pub tcam_bits: usize,
    /// Allocated SRAM bits.
    pub sram_bits: usize,
}

impl TenantAllocation {
    /// The allocation for the given memory kind.
    pub fn bits(&self, memory: MemoryKind) -> usize {
        match memory {
            MemoryKind::Tcam => self.tcam_bits,
            MemoryKind::Sram => self.sram_bits,
        }
    }
}

/// Why the budgeter refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// The minimum guarantees alone exceed the global budget.
    InfeasibleMinimums {
        /// Memory kind that overflows.
        memory: MemoryKind,
        /// Sum of guarantees.
        required_bits: usize,
        /// The global budget for that memory.
        budget_bits: usize,
    },
    /// A publish needs more bits than the tenant's allocation.
    OverBudget {
        /// The offending tenant.
        tenant: usize,
        /// Memory kind that overflows.
        memory: MemoryKind,
        /// Bits the publish would occupy.
        required_bits: usize,
        /// Bits the tenant is allocated.
        allocated_bits: usize,
    },
    /// Unknown tenant index.
    NoSuchTenant {
        /// The index asked for.
        tenant: usize,
        /// How many tenants exist.
        tenants: usize,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InfeasibleMinimums {
                memory,
                required_bits,
                budget_bits,
            } => write!(
                f,
                "minimum guarantees need {required_bits} {memory} bits but the budget is {budget_bits}"
            ),
            BudgetError::OverBudget {
                tenant,
                memory,
                required_bits,
                allocated_bits,
            } => write!(
                f,
                "tenant {tenant} publish needs {required_bits} {memory} bits but is allocated {allocated_bits}"
            ),
            BudgetError::NoSuchTenant { tenant, tenants } => {
                write!(f, "tenant {tenant} out of range ({tenants} tenants)")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Splits `budget` bits across `shares` by minimum-then-weighted-fair
/// share. Returns one figure per tenant; their sum never exceeds `budget`.
fn split(budget: usize, shares: &[TenantShare], min_of: fn(&TenantShare) -> usize) -> Vec<usize> {
    let mut out: Vec<usize> = shares.iter().map(min_of).collect();
    let guaranteed: usize = out.iter().sum();
    let remaining = budget - guaranteed;
    let total_weight: u64 = shares.iter().map(|s| u64::from(s.weight)).sum();
    if total_weight == 0 || remaining == 0 {
        return out;
    }
    // Floor split, then hand the flooring leftover out by largest
    // remainder (tenant index breaks ties) so every bit is placed
    // deterministically.
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(shares.len());
    let mut placed = 0usize;
    for (i, s) in shares.iter().enumerate() {
        let num = remaining as u64 * u64::from(s.weight);
        let share = (num / total_weight) as usize;
        out[i] += share;
        placed += share;
        remainders.push((num % total_weight, i));
    }
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(remaining - placed) {
        out[i] += 1;
    }
    out
}

/// Allocates the global TCAM/SRAM budget across tenants and polices
/// publishes against the resulting per-tenant allocations.
#[derive(Debug, Clone)]
pub struct TableBudgeter {
    config: BudgetConfig,
    shares: Vec<TenantShare>,
    allocations: Vec<TenantAllocation>,
}

impl TableBudgeter {
    /// Computes the allocation for `shares` under `config`.
    ///
    /// # Errors
    ///
    /// [`BudgetError::InfeasibleMinimums`] when the guarantees alone
    /// exceed either memory's budget.
    pub fn new(config: BudgetConfig, shares: Vec<TenantShare>) -> Result<Self, BudgetError> {
        let min_tcam: usize = shares.iter().map(|s| s.min_tcam_bits).sum();
        if min_tcam > config.tcam_bits {
            return Err(BudgetError::InfeasibleMinimums {
                memory: MemoryKind::Tcam,
                required_bits: min_tcam,
                budget_bits: config.tcam_bits,
            });
        }
        let min_sram: usize = shares.iter().map(|s| s.min_sram_bits).sum();
        if min_sram > config.sram_bits {
            return Err(BudgetError::InfeasibleMinimums {
                memory: MemoryKind::Sram,
                required_bits: min_sram,
                budget_bits: config.sram_bits,
            });
        }
        let tcam = split(config.tcam_bits, &shares, |s| s.min_tcam_bits);
        let sram = split(config.sram_bits, &shares, |s| s.min_sram_bits);
        let allocations = tcam
            .into_iter()
            .zip(sram)
            .enumerate()
            .map(|(tenant, (tcam_bits, sram_bits))| TenantAllocation {
                tenant,
                tcam_bits,
                sram_bits,
            })
            .collect();
        Ok(TableBudgeter {
            config,
            shares,
            allocations,
        })
    }

    /// The global budget.
    pub fn config(&self) -> BudgetConfig {
        self.config
    }

    /// Number of tenants sharing the budget.
    pub fn tenant_count(&self) -> usize {
        self.shares.len()
    }

    /// The share `tenant` registered with.
    pub fn share(&self, tenant: usize) -> Option<&TenantShare> {
        self.shares.get(tenant)
    }

    /// Every tenant's allocation, indexed by tenant.
    pub fn allocations(&self) -> &[TenantAllocation] {
        &self.allocations
    }

    /// One tenant's allocation.
    ///
    /// # Errors
    ///
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    pub fn allocation(&self, tenant: usize) -> Result<TenantAllocation, BudgetError> {
        self.allocations
            .get(tenant)
            .copied()
            .ok_or(BudgetError::NoSuchTenant {
                tenant,
                tenants: self.shares.len(),
            })
    }

    /// Checks that a ternary ruleset fits `tenant`'s TCAM allocation,
    /// without mutating anything.
    ///
    /// Admission is judged against the ruleset's **minimized** occupancy —
    /// the rows the lowering-time ternary minimizer actually installs
    /// (subsumed entries eliminated, adjacent siblings merged; see
    /// [`minimize`](p4guard_dataplane::minimize)) — so a tenant whose raw
    /// ruleset nominally overflows its slice is still admitted when the
    /// minimized form fits.
    ///
    /// # Errors
    ///
    /// [`BudgetError::OverBudget`] when it does not fit,
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    pub fn admit(&self, tenant: usize, ruleset: &RuleSet) -> Result<(), BudgetError> {
        let alloc = self.allocation(tenant)?;
        let required = Self::minimized_tcam_bits(ruleset);
        if required > alloc.tcam_bits {
            return Err(BudgetError::OverBudget {
                tenant,
                memory: MemoryKind::Tcam,
                required_bits: required,
                allocated_bits: alloc.tcam_bits,
            });
        }
        Ok(())
    }

    /// TCAM bits `ruleset` occupies after lowering-time ternary
    /// minimization.
    pub fn minimized_tcam_bits(ruleset: &RuleSet) -> usize {
        let rows = minimized_ternary_count(
            ruleset
                .entries()
                .iter()
                .map(|e| (e.value.as_slice(), e.mask.as_slice(), e.priority)),
        );
        rows * ruleset.key_width() * 8 * 2
    }

    /// Trims `ruleset` to fit `tenant`'s TCAM allocation by dropping its
    /// lowest-priority entries. Returns the surviving ruleset and how many
    /// entries were cut (0 when it already fit).
    ///
    /// Like [`TableBudgeter::admit`], the fit is judged on minimized
    /// occupancy: the initial cut keeps the raw-count prefix that fits
    /// (always safe, since minimized ≤ raw rows), then extends the prefix
    /// while the longer prefix's *minimized* form still fits — so
    /// mergeable rulesets keep strictly more rules than raw accounting
    /// would allow.
    ///
    /// # Errors
    ///
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    pub fn trim(&self, tenant: usize, ruleset: &RuleSet) -> Result<(RuleSet, usize), BudgetError> {
        let alloc = self.allocation(tenant)?;
        if Self::minimized_tcam_bits(ruleset) <= alloc.tcam_bits {
            return Ok((ruleset.clone(), 0));
        }
        let bits_per_entry = ruleset.key_width() * 8 * 2;
        let budget_rows = alloc
            .tcam_bits
            .checked_div(bits_per_entry)
            .unwrap_or(ruleset.len());
        let prefix_rows = |keep: usize| {
            minimized_ternary_count(
                ruleset
                    .entries()
                    .iter()
                    .take(keep)
                    .map(|e| (e.value.as_slice(), e.mask.as_slice(), e.priority)),
            )
        };
        // The raw-fit prefix always fits minimized (minimized ≤ raw rows)
        // and the full set does not (checked above): binary-search the
        // boundary, then extend greedily — merges can make a longer prefix
        // cheaper than a shorter one, so the boundary need not be maximal.
        let mut lo = budget_rows.min(ruleset.len());
        let mut hi = ruleset.len();
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if prefix_rows(mid) <= budget_rows {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut keep = lo;
        while keep < ruleset.len() && prefix_rows(keep + 1) <= budget_rows {
            keep += 1;
        }
        // Entries are kept sorted by descending priority, so the retained
        // prefix is exactly the most important `keep` rules.
        let mut trimmed = RuleSet::new(ruleset.key_width(), ruleset.default_class());
        for entry in ruleset.entries().iter().take(keep) {
            trimmed.push(entry.clone());
        }
        Ok((trimmed, ruleset.len() - keep))
    }

    /// Checks that a forest — one ternary ruleset stage per tree — fits
    /// `tenant`'s TCAM allocation in its entirety, without mutating
    /// anything. The charge is the sum of the per-stage **minimized**
    /// occupancies, matching what
    /// [`SwitchResources`](p4guard_dataplane::resources::SwitchResources)
    /// reports for the deployed per-tree stages.
    ///
    /// # Errors
    ///
    /// [`BudgetError::OverBudget`] when the whole forest does not fit
    /// (use [`TableBudgeter::trim_forest`] to drop trees instead),
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    pub fn admit_forest(&self, tenant: usize, stages: &[&RuleSet]) -> Result<(), BudgetError> {
        let alloc = self.allocation(tenant)?;
        let required: usize = stages.iter().map(|rs| Self::minimized_tcam_bits(rs)).sum();
        if required > alloc.tcam_bits {
            return Err(BudgetError::OverBudget {
                tenant,
                memory: MemoryKind::Tcam,
                required_bits: required,
                allocated_bits: alloc.tcam_bits,
            });
        }
        Ok(())
    }

    /// Fits a forest into `tenant`'s TCAM allocation by dropping whole
    /// trees, lowest importance first (ties drop the later stage), until
    /// the surviving stages' summed minimized occupancy fits. Unlike
    /// entry-level [`TableBudgeter::trim`], trees are all-or-nothing:
    /// removing individual entries from a tree would corrupt its vote,
    /// while removing a whole tree only shrinks the electorate.
    ///
    /// `importance` aligns with `stages` (e.g.
    /// [`RandomForest::tree_importance`](p4guard_rules::forest::RandomForest::tree_importance)).
    ///
    /// # Errors
    ///
    /// [`BudgetError::OverBudget`] when even the single most important
    /// tree overflows the allocation,
    /// [`BudgetError::NoSuchTenant`] for an out-of-range index.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or `importance.len() != stages.len()`.
    pub fn trim_forest(
        &self,
        tenant: usize,
        stages: &[&RuleSet],
        importance: &[f64],
    ) -> Result<ForestAdmission, BudgetError> {
        assert!(!stages.is_empty(), "a forest needs at least one stage");
        assert_eq!(
            importance.len(),
            stages.len(),
            "importance must align with stages"
        );
        let alloc = self.allocation(tenant)?;
        let bits: Vec<usize> = stages
            .iter()
            .map(|rs| Self::minimized_tcam_bits(rs))
            .collect();
        let mut required: usize = bits.iter().sum();
        // Drop order: ascending importance, ties resolved by dropping the
        // later stage first (earlier trees vote first and are kept).
        let mut drop_order: Vec<usize> = (0..stages.len()).collect();
        drop_order.sort_by(|&a, &b| importance[a].total_cmp(&importance[b]).then(b.cmp(&a)));
        let mut dropped = Vec::new();
        let mut cut = std::collections::HashSet::new();
        let mut order = drop_order.into_iter();
        while required > alloc.tcam_bits {
            if cut.len() + 1 == stages.len() {
                return Err(BudgetError::OverBudget {
                    tenant,
                    memory: MemoryKind::Tcam,
                    required_bits: required,
                    allocated_bits: alloc.tcam_bits,
                });
            }
            let victim = order.next().expect("more stages than cuts");
            required -= bits[victim];
            cut.insert(victim);
            dropped.push(victim);
        }
        let kept: Vec<usize> = (0..stages.len()).filter(|i| !cut.contains(i)).collect();
        Ok(ForestAdmission {
            kept,
            dropped,
            required_bits: required,
        })
    }
}

/// Outcome of [`TableBudgeter::trim_forest`]: which per-tree stages of a
/// submitted forest survive the tenant's TCAM allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestAdmission {
    /// Indices of surviving stages, in the original vote order.
    pub kept: Vec<usize>,
    /// Indices of dropped stages, in drop order (lowest importance
    /// first).
    pub dropped: Vec<usize>,
    /// Minimized TCAM bits the surviving stages occupy together.
    pub required_bits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4guard_rules::TernaryEntry;

    fn ruleset_with(entries: usize, width: usize) -> RuleSet {
        let mut rs = RuleSet::new(width, 0);
        for i in 0..entries {
            rs.push(TernaryEntry::new(
                vec![i as u8; width],
                vec![0xff; width],
                1,
                i as i32,
            ));
        }
        rs
    }

    #[test]
    fn split_is_exact_and_ordered() {
        let shares = vec![
            TenantShare {
                weight: 3,
                min_tcam_bits: 100,
                min_sram_bits: 0,
            },
            TenantShare {
                weight: 1,
                min_tcam_bits: 50,
                min_sram_bits: 0,
            },
        ];
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 1000,
                sram_bits: 0,
            },
            shares,
        )
        .unwrap();
        let a = b.allocations();
        // 150 guaranteed, 850 split 3:1 → 637.5 floors to 637, remainder
        // bit goes to the larger fractional part.
        assert_eq!(a[0].tcam_bits + a[1].tcam_bits, 1000);
        assert!(a[0].tcam_bits >= 100 + 637);
        assert!(a[1].tcam_bits >= 50 + 212);
    }

    #[test]
    fn infeasible_minimums_rejected() {
        let shares = vec![TenantShare {
            weight: 1,
            min_tcam_bits: 2000,
            min_sram_bits: 0,
        }];
        let err = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 1000,
                sram_bits: 0,
            },
            shares,
        )
        .unwrap_err();
        assert!(matches!(err, BudgetError::InfeasibleMinimums { .. }));
    }

    #[test]
    fn admit_and_trim_respect_allocation() {
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 8 * 8 * 2 * 10, // ten 8-byte ternary entries
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        assert!(b.admit(0, &ruleset_with(10, 8)).is_ok());
        assert!(matches!(
            b.admit(0, &ruleset_with(11, 8)),
            Err(BudgetError::OverBudget { tenant: 0, .. })
        ));
        let (trimmed, cut) = b.trim(0, &ruleset_with(25, 8)).unwrap();
        assert_eq!(trimmed.len(), 10);
        assert_eq!(cut, 15);
        // Highest-priority entries survive.
        assert!(trimmed.entries().iter().all(|e| e.priority >= 15));
    }

    /// `pairs * 2` entries at one priority: each base and `base | 1` merge
    /// into one row, and the bases pairwise differ in at least two high
    /// bits so the merged rows cannot collapse further.
    fn mergeable_ruleset(pairs: usize) -> RuleSet {
        const BASES: [u8; 5] = [0x00, 0x06, 0x18, 0x60, 0x66];
        let mut rs = RuleSet::new(1, 0);
        for &base in BASES.iter().take(pairs) {
            rs.push(TernaryEntry::new(vec![base], vec![0xff], 1, 1));
            rs.push(TernaryEntry::new(vec![base | 1], vec![0xff], 1, 1));
        }
        rs
    }

    #[test]
    fn admit_judges_minimized_occupancy() {
        let bits_per_entry = 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 4 * bits_per_entry, // four minimized rows
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        // Eight raw entries nominally need 8 rows, but merge down to 4.
        let rs = mergeable_ruleset(4);
        assert_eq!(rs.tcam_bits(), 8 * bits_per_entry);
        assert_eq!(TableBudgeter::minimized_tcam_bits(&rs), 4 * bits_per_entry);
        assert!(b.admit(0, &rs).is_ok());
        // Ten raw entries minimize to 5 rows: genuinely over budget.
        assert!(matches!(
            b.admit(0, &mergeable_ruleset(5)),
            Err(BudgetError::OverBudget {
                tenant: 0,
                required_bits,
                ..
            }) if required_bits == 5 * bits_per_entry
        ));
    }

    #[test]
    fn trim_extends_past_raw_count_for_mergeable_rulesets() {
        let bits_per_entry = 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 2 * bits_per_entry, // two minimized rows
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        // Eight entries minimize to 4 rows — still over a 2-row budget,
        // but raw accounting would keep only 2 entries; minimized
        // accounting keeps 4 (two merged pairs).
        let (trimmed, cut) = b.trim(0, &mergeable_ruleset(4)).unwrap();
        assert_eq!(trimmed.len(), 4);
        assert_eq!(cut, 4);
        assert!(TableBudgeter::minimized_tcam_bits(&trimmed) <= 2 * bits_per_entry);
    }

    #[test]
    fn zero_weight_gets_only_minimum() {
        let shares = vec![
            TenantShare {
                weight: 0,
                min_tcam_bits: 64,
                min_sram_bits: 0,
            },
            TenantShare {
                weight: 5,
                min_tcam_bits: 0,
                min_sram_bits: 0,
            },
        ];
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 1000,
                sram_bits: 0,
            },
            shares,
        )
        .unwrap();
        assert_eq!(b.allocation(0).unwrap().tcam_bits, 64);
        assert_eq!(b.allocation(1).unwrap().tcam_bits, 936);
    }

    #[test]
    fn admit_forest_sums_per_tree_occupancy() {
        let bits_per_entry = 8 * 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 10 * bits_per_entry,
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        let small = ruleset_with(3, 8);
        let stages = [&small, &small, &small];
        assert!(b.admit_forest(0, &stages).is_ok());
        let big = ruleset_with(5, 8);
        assert!(matches!(
            b.admit_forest(0, &[&big, &big, &big]),
            Err(BudgetError::OverBudget {
                tenant: 0,
                required_bits,
                ..
            }) if required_bits == 15 * bits_per_entry
        ));
    }

    #[test]
    fn trim_forest_drops_lowest_importance_trees_first() {
        let bits_per_entry = 8 * 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 8 * bits_per_entry,
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        // Four 3-entry trees need 12 rows; the budget holds 8, so two
        // trees must go — the two least important ones.
        let tree = ruleset_with(3, 8);
        let stages = [&tree, &tree, &tree, &tree];
        let adm = b.trim_forest(0, &stages, &[0.9, 0.2, 0.8, 0.4]).unwrap();
        assert_eq!(adm.kept, vec![0, 2]);
        assert_eq!(adm.dropped, vec![1, 3]);
        assert_eq!(adm.required_bits, 6 * bits_per_entry);
        // A forest that already fits survives untouched.
        let adm = b.trim_forest(0, &stages[..2], &[0.5, 0.5]).unwrap();
        assert_eq!(adm.kept, vec![0, 1]);
        assert!(adm.dropped.is_empty());
    }

    #[test]
    fn trim_forest_tie_drops_later_stage_and_rejects_oversized_root() {
        let bits_per_entry = 8 * 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 4 * bits_per_entry,
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        // Equal importance: the later stages are sacrificed first.
        let tree = ruleset_with(2, 8);
        let adm = b
            .trim_forest(0, &[&tree, &tree, &tree], &[0.5, 0.5, 0.5])
            .unwrap();
        assert_eq!(adm.kept, vec![0, 1]);
        assert_eq!(adm.dropped, vec![2]);
        // Even the single most important tree overflows → reject.
        let huge = ruleset_with(5, 8);
        assert!(matches!(
            b.trim_forest(0, &[&huge, &huge], &[0.1, 0.9]),
            Err(BudgetError::OverBudget { tenant: 0, .. })
        ));
    }

    #[test]
    fn trim_forest_charges_minimized_occupancy() {
        let bits_per_entry = 8 * 2;
        let b = TableBudgeter::new(
            BudgetConfig {
                tcam_bits: 6 * bits_per_entry,
                sram_bits: 0,
            },
            vec![TenantShare::flat()],
        )
        .unwrap();
        // Each stage holds 8 raw entries that minimize to 4 rows. Raw
        // accounting would evict a tree from a two-tree forest; minimized
        // accounting... still must (2 × 4 = 8 > 6), but keeps both trees
        // of a 4-row pair when given one mergeable and one tiny stage.
        let mergeable = mergeable_ruleset(4);
        let tiny = {
            let mut rs = RuleSet::new(1, 0);
            rs.push(TernaryEntry::new(vec![0xAA], vec![0xff], 1, 1));
            rs
        };
        let adm = b.trim_forest(0, &[&mergeable, &tiny], &[0.9, 0.1]).unwrap();
        assert_eq!(adm.kept, vec![0, 1]);
        assert_eq!(adm.required_bits, 5 * bits_per_entry);
    }
}
