//! Deterministic fleet-scale traffic simulation: 10⁵–10⁶ simulated IoT
//! devices across tenants, with device churn, diurnal load curves and
//! per-tenant attack waves.
//!
//! The per-device scenario generator in `crates/traffic` materializes
//! every device and flow — perfect fidelity for dozens of devices,
//! hopeless for a million. This simulator inverts the representation:
//! devices are *virtual* (addresses, roles and churn state derived
//! on demand from the device id by hashing), and each time step samples a
//! bounded number of frames from the live population. Memory is
//! O(frames per step), never O(devices).
//!
//! Everything is a pure function of `(seed, step)`: steps re-seed their
//! own RNG stream, churn is a per-epoch hash of the device id, and wave
//! activity depends only on the step fraction — so the same config always
//! emits the identical frame sequence, and any step can be regenerated in
//! isolation.

use crate::tenant::{device_ip, DEFAULT_PREFIX_SPAN};
use bytes::Bytes;
use p4guard_packet::addr::MacAddr;
use p4guard_packet::tcp::{TcpFlags, TcpHeader};
use p4guard_packet::{AttackFamily, Label, PacketBuilder, Record, Trace};
use p4guard_traffic::DeviceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Benign device source ports start here (ephemeral range).
const BENIGN_SPORT_BASE: u16 = 49152;
/// Compromised firmware uses a fixed low source-port band — the separable
/// signature the per-tenant classifiers learn.
const ATTACK_SPORT_BASE: u16 = 1024;
/// Compromised devices per attack wave.
const BOTNET_SIZE: u32 = 8;

/// One attack campaign against a tenant, active over a fraction of the
/// simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackWave {
    /// Attack family.
    pub family: AttackFamily,
    /// Wave start as a fraction of the run, in `[0, 1)`.
    pub start_frac: f64,
    /// Wave end as a fraction of the run.
    pub end_frac: f64,
    /// Attack frames per step, as a fraction of the tenant's benign base
    /// rate.
    pub weight: f64,
}

/// One tenant's traffic profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTraffic {
    /// Tenant name (mirrors the registry's [`TenantSpec`](crate::tenant::TenantSpec)).
    pub name: String,
    /// Simulated device population.
    pub devices: u32,
    /// Device-class mix; device `d` is of kind `kinds[d % kinds.len()]`.
    pub kinds: Vec<DeviceKind>,
    /// Diurnal swing in `[0, 1]`: load dips to `1 − amplitude` at the
    /// trough.
    pub diurnal_amplitude: f64,
    /// When the diurnal curve peaks, as a fraction of the run.
    pub peak_frac: f64,
    /// Fraction of devices offline in any churn epoch.
    pub offline_fraction: f64,
    /// Churn rotations over the run: each epoch re-draws which devices
    /// are offline.
    pub churn_epochs: u32,
    /// Attack campaigns against this tenant.
    pub waves: Vec<AttackWave>,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSimConfig {
    /// Master seed; every derived stream re-mixes it.
    pub seed: u64,
    /// Time steps in the run.
    pub steps: usize,
    /// Fleet-wide benign frame budget per step at diurnal peak, divided
    /// across tenants by device share.
    pub frames_per_step: usize,
    /// Tenant profiles, indexed by tenant.
    pub tenants: Vec<TenantTraffic>,
}

impl FleetSimConfig {
    /// Total simulated devices across tenants.
    pub fn total_devices(&self) -> u64 {
        self.tenants.iter().map(|t| u64::from(t.devices)).sum()
    }

    /// A ready-made fleet of `tenants` tenants cycling four device-class
    /// profiles (smart-home, industrial, camera-park, sensor-grid), with
    /// `devices_total` devices split 4:2:1:3 across the cycle.
    pub fn demo(tenants: usize, devices_total: u64, seed: u64) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        let weights: Vec<u64> = (0..tenants).map(|i| [4u64, 2, 1, 3][i % 4]).collect();
        let total_weight: u64 = weights.iter().sum();
        let tenants = (0..tenants)
            .map(|i| {
                let devices = (devices_total * weights[i] / total_weight).max(1) as u32;
                demo_profile(i, devices)
            })
            .collect();
        FleetSimConfig {
            seed,
            steps: 64,
            frames_per_step: 4096,
            tenants,
        }
    }
}

/// One of the four demo device-class profiles, with `devices` devices.
fn demo_profile(tenant: usize, devices: u32) -> TenantTraffic {
    match tenant % 4 {
        0 => TenantTraffic {
            name: format!("smart-home-{tenant}"),
            devices,
            kinds: vec![
                DeviceKind::Camera,
                DeviceKind::Thermostat,
                DeviceKind::SmartPlug,
            ],
            diurnal_amplitude: 0.6,
            peak_frac: 0.75,
            offline_fraction: 0.15,
            churn_epochs: 4,
            waves: vec![
                AttackWave {
                    family: AttackFamily::MqttFlood,
                    start_frac: 0.30,
                    end_frac: 0.55,
                    weight: 0.5,
                },
                AttackWave {
                    family: AttackFamily::MiraiScan,
                    start_frac: 0.60,
                    end_frac: 0.80,
                    weight: 0.4,
                },
            ],
        },
        1 => TenantTraffic {
            name: format!("industrial-{tenant}"),
            devices,
            kinds: vec![DeviceKind::ModbusPlc, DeviceKind::CoapSensor],
            diurnal_amplitude: 0.2,
            peak_frac: 0.40,
            offline_fraction: 0.05,
            churn_epochs: 2,
            waves: vec![
                AttackWave {
                    family: AttackFamily::ModbusAbuse,
                    start_frac: 0.20,
                    end_frac: 0.45,
                    weight: 0.4,
                },
                AttackWave {
                    family: AttackFamily::SynFlood,
                    start_frac: 0.70,
                    end_frac: 0.90,
                    weight: 0.6,
                },
            ],
        },
        2 => TenantTraffic {
            name: format!("camera-park-{tenant}"),
            devices,
            kinds: vec![DeviceKind::Camera],
            diurnal_amplitude: 0.5,
            peak_frac: 0.50,
            offline_fraction: 0.10,
            churn_epochs: 3,
            waves: vec![
                AttackWave {
                    family: AttackFamily::BruteForce,
                    start_frac: 0.10,
                    end_frac: 0.35,
                    weight: 0.4,
                },
                AttackWave {
                    family: AttackFamily::UdpFlood,
                    start_frac: 0.55,
                    end_frac: 0.80,
                    weight: 0.7,
                },
            ],
        },
        _ => TenantTraffic {
            name: format!("sensor-grid-{tenant}"),
            devices,
            kinds: vec![DeviceKind::CoapSensor, DeviceKind::ZWireSensor],
            diurnal_amplitude: 0.7,
            peak_frac: 0.25,
            offline_fraction: 0.25,
            churn_epochs: 5,
            waves: vec![
                AttackWave {
                    family: AttackFamily::CoapAmplification,
                    start_frac: 0.30,
                    end_frac: 0.50,
                    weight: 0.5,
                },
                AttackWave {
                    family: AttackFamily::DnsTunnel,
                    start_frac: 0.50,
                    end_frac: 0.75,
                    weight: 0.3,
                },
            ],
        },
    }
}

/// One emitted frame with its owning tenant and ground truth.
#[derive(Debug, Clone)]
pub struct SimFrame {
    /// Tenant the source device belongs to.
    pub tenant: usize,
    /// Raw Ethernet frame.
    pub frame: Bytes,
    /// Ground-truth label.
    pub label: Label,
}

/// Per-tenant emission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSimStats {
    /// Frames emitted.
    pub frames: u64,
    /// Benign frames.
    pub benign: u64,
    /// Attack frames.
    pub attack: u64,
    /// Benign sends suppressed because the device was churned offline.
    pub offline_skips: u64,
}

/// The fleet simulator. Create once, then call [`FleetSim::step_frames`]
/// per step (or [`FleetSim::run`] to collect the whole run).
pub struct FleetSim {
    config: FleetSimConfig,
    stats: Vec<TenantSimStats>,
}

/// splitmix64: the stateless hash behind churn and botnet membership.
fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl FleetSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list, zero steps, or a tenant set that
    /// overflows the classifier's address plan.
    pub fn new(config: FleetSimConfig) -> Self {
        assert!(!config.tenants.is_empty(), "need at least one tenant");
        assert!(config.steps > 0, "need at least one step");
        assert!(
            config.tenants.len() * usize::from(DEFAULT_PREFIX_SPAN) <= 256,
            "tenant count overflows the address plan"
        );
        for t in &config.tenants {
            assert!(t.devices > 0, "tenant {} has no devices", t.name);
            assert!(!t.kinds.is_empty(), "tenant {} has no device kinds", t.name);
            assert!(
                t.devices >> 16 < u32::from(DEFAULT_PREFIX_SPAN),
                "tenant {} population overflows its prefix span",
                t.name
            );
        }
        let stats = vec![TenantSimStats::default(); config.tenants.len()];
        FleetSim { config, stats }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &FleetSimConfig {
        &self.config
    }

    /// Per-tenant emission counters so far.
    pub fn stats(&self) -> &[TenantSimStats] {
        &self.stats
    }

    /// Whether device `device` of tenant `tenant` is online at `step`
    /// (churn: each epoch re-draws the offline subset by hash).
    pub fn online(&self, tenant: usize, device: u32, step: usize) -> bool {
        let profile = &self.config.tenants[tenant];
        if profile.offline_fraction <= 0.0 {
            return true;
        }
        let epoch = step * profile.churn_epochs.max(1) as usize / self.config.steps;
        let h = mix(self
            .config
            .seed
            .wrapping_add(0x5eed_0000)
            .wrapping_add((tenant as u64) << 48)
            .wrapping_add(u64::from(device) << 16)
            .wrapping_add(epoch as u64));
        (h % 10_000) as f64 >= profile.offline_fraction * 10_000.0
    }

    /// The diurnal load factor for `tenant` at `step`: 1.0 at the peak,
    /// `1 − amplitude` at the trough.
    pub fn diurnal(&self, tenant: usize, step: usize) -> f64 {
        let profile = &self.config.tenants[tenant];
        let t_frac = step as f64 / self.config.steps as f64;
        let phase = (t_frac - profile.peak_frac) * std::f64::consts::TAU;
        1.0 - profile.diurnal_amplitude * 0.5 * (1.0 - phase.cos())
    }

    /// Emits one step's frames, tenant-ordered. Deterministic per
    /// `(seed, step)` and independent of other steps.
    pub fn step_frames(&mut self, step: usize) -> Vec<SimFrame> {
        let t_frac = step as f64 / self.config.steps as f64;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ mix(0xf1ee_7000 + step as u64));
        let total_devices = self.config.total_devices().max(1);
        let mut out = Vec::new();
        for tenant in 0..self.config.tenants.len() {
            let profile = self.config.tenants[tenant].clone();
            let base = (self.config.frames_per_step as u64 * u64::from(profile.devices)
                / total_devices)
                .max(1) as usize;
            let benign_target = (base as f64 * self.diurnal(tenant, step)).round() as usize;
            for _ in 0..benign_target {
                let device = rng.gen_range(0..profile.devices);
                if !self.online(tenant, device, step) {
                    self.stats[tenant].offline_skips += 1;
                    continue;
                }
                let kind = profile.kinds[device as usize % profile.kinds.len()];
                let frame = benign_frame(tenant, device, kind, &mut rng);
                self.stats[tenant].frames += 1;
                self.stats[tenant].benign += 1;
                out.push(SimFrame {
                    tenant,
                    frame,
                    label: Label::Benign,
                });
            }
            for (w, wave) in profile.waves.iter().enumerate() {
                if t_frac < wave.start_frac || t_frac >= wave.end_frac {
                    continue;
                }
                let attack_target = (base as f64 * wave.weight).round() as usize;
                for _ in 0..attack_target {
                    // A small compromised pool per wave, fixed for the run.
                    let bot = rng.gen_range(0..BOTNET_SIZE);
                    let device = (mix(self.config.seed
                        ^ 0xb07_0000
                        ^ ((tenant as u64) << 32)
                        ^ ((w as u64) << 16)
                        ^ u64::from(bot))
                        % u64::from(profile.devices)) as u32;
                    let frame = attack_frame(tenant, device, wave.family, &mut rng);
                    self.stats[tenant].frames += 1;
                    self.stats[tenant].attack += 1;
                    out.push(SimFrame {
                        tenant,
                        frame,
                        label: Label::Attack(wave.family),
                    });
                }
            }
        }
        out
    }

    /// Runs every step and collects the full frame sequence.
    pub fn run(&mut self) -> Vec<SimFrame> {
        let mut out = Vec::new();
        for step in 0..self.config.steps {
            out.extend(self.step_frames(step));
        }
        out
    }

    /// A labelled training trace for one tenant: `frames` records mixing
    /// every device kind with every wave family the tenant faces (70/30
    /// benign/attack). Uses a seed stream disjoint from the serving run,
    /// so training data never equals the evaluation stream.
    pub fn training_trace(&self, tenant: usize, frames: usize) -> Trace {
        let profile = &self.config.tenants[tenant];
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ mix(0x7ea1_0000 + tenant as u64));
        let mut trace = Trace::new();
        for i in 0..frames {
            let device = rng.gen_range(0..profile.devices);
            let attack = !profile.waves.is_empty() && i % 10 >= 7;
            let (frame, label) = if attack {
                let wave = &profile.waves[i % profile.waves.len()];
                (
                    attack_frame(tenant, device, wave.family, &mut rng),
                    Label::Attack(wave.family),
                )
            } else {
                let kind = profile.kinds[device as usize % profile.kinds.len()];
                (benign_frame(tenant, device, kind, &mut rng), Label::Benign)
            };
            trace.push(Record {
                timestamp_us: i as u64,
                frame,
                label,
                flow_id: u64::from(device),
            });
        }
        trace
    }
}

/// The tenant's upstream service address for a device kind (MQTT broker,
/// CoAP/Modbus poller, resolver). Tenancy is decided by the *source*
/// prefix, so these only need to be stable.
fn service_ip(tenant: usize, kind: DeviceKind) -> Ipv4Addr {
    let svc = match kind {
        DeviceKind::Camera | DeviceKind::Thermostat | DeviceKind::SmartPlug => 1,
        DeviceKind::CoapSensor | DeviceKind::ZWireSensor => 2,
        DeviceKind::ModbusPlc => 3,
        DeviceKind::Gateway | DeviceKind::Broker | DeviceKind::DnsServer => 4,
    };
    Ipv4Addr::new(172, 16, tenant as u8, svc)
}

fn builder(device: u32) -> PacketBuilder {
    PacketBuilder::new(
        MacAddr::from_id(u64::from(device) + 1),
        MacAddr::from_id(0xfeed),
    )
}

/// A benign frame from `device` of `kind`: its habitual application
/// protocol from an ephemeral source port.
fn benign_frame(tenant: usize, device: u32, kind: DeviceKind, rng: &mut StdRng) -> Bytes {
    let src = device_ip(tenant, device, DEFAULT_PREFIX_SPAN);
    let dst = service_ip(tenant, kind);
    let sport = BENIGN_SPORT_BASE + (device % 16000) as u16;
    let b = builder(device);
    let seq = rng.gen_range(1..=u32::MAX / 2);
    match kind {
        DeviceKind::Camera => b.tcp(
            src,
            dst,
            TcpHeader::new(sport, 1883, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            &[0x30, 0x10, 0, 6, b'c', b'a', b'm', b'e', b'r', b'a'],
        ),
        DeviceKind::Thermostat | DeviceKind::SmartPlug => b.tcp(
            src,
            dst,
            TcpHeader::new(sport, 1883, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            &[0x30, 0x04, 0, 2, b't', b'p'],
        ),
        DeviceKind::CoapSensor | DeviceKind::ZWireSensor => {
            b.udp(src, dst, sport, 5683, &[0x40, 0x01, 0x12, 0x34])
        }
        DeviceKind::ModbusPlc => b.tcp(
            src,
            dst,
            TcpHeader::new(sport, 502, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            &[0, 1, 0, 0, 0, 6, 1, 3, 0, 0, 0, 2],
        ),
        DeviceKind::Gateway | DeviceKind::Broker | DeviceKind::DnsServer => {
            b.udp(src, dst, sport, 53, &[0, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0])
        }
    }
}

/// An attack frame from compromised `device`: the family's signature
/// protocol/port from the fixed low source-port band.
fn attack_frame(tenant: usize, device: u32, family: AttackFamily, rng: &mut StdRng) -> Bytes {
    let src = device_ip(tenant, device, DEFAULT_PREFIX_SPAN);
    let b = builder(device);
    let sport = ATTACK_SPORT_BASE + rng.gen_range(0..256u16);
    let seq = rng.gen_range(1..=u32::MAX / 2);
    let victim = Ipv4Addr::new(172, 16, tenant as u8, 1);
    match family {
        AttackFamily::MiraiScan => {
            let target = device_ip(tenant, rng.gen_range(0..0xffff), DEFAULT_PREFIX_SPAN);
            b.tcp(
                src,
                target,
                TcpHeader::new(sport, 23, seq, 0, TcpFlags::SYN),
                &[],
            )
        }
        AttackFamily::BruteForce => b.tcp(
            src,
            victim,
            TcpHeader::new(sport, 22, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            b"root",
        ),
        AttackFamily::SynFlood => b.tcp(
            src,
            victim,
            TcpHeader::new(sport, 80, seq, 0, TcpFlags::SYN),
            &[],
        ),
        AttackFamily::UdpFlood => b.udp(src, victim, sport, 7, &[0xaa; 64]),
        AttackFamily::MqttFlood => b.tcp(
            src,
            victim,
            TcpHeader::new(sport, 1883, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            &[0x10, 0x0c, 0, 4, b'M', b'Q', b'T', b'T', 4, 2, 0, 30],
        ),
        AttackFamily::CoapAmplification => b.udp(src, victim, sport, 5683, &[0x40, 0x01, 0, 0]),
        AttackFamily::DnsTunnel => {
            let mut payload = vec![0u8; 48];
            rng.fill(payload.as_mut_slice());
            payload[2] = 1; // query flags
            b.udp(src, victim, sport, 53, &payload)
        }
        AttackFamily::ModbusAbuse => b.tcp(
            src,
            victim,
            TcpHeader::new(sport, 502, seq, seq, TcpFlags::PSH | TcpFlags::ACK),
            &[0, 1, 0, 0, 0, 6, 1, 6, 0, 0, 0xff, 0xff],
        ),
        AttackFamily::ZWireHijack => b.udp(src, victim, sport, 4123, &[0x5a, 0x57, 0xff, 0xff]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> FleetSimConfig {
        let mut c = FleetSimConfig::demo(4, 200_000, seed);
        c.steps = 8;
        c.frames_per_step = 512;
        c
    }

    #[test]
    fn same_seed_same_frames() {
        let a: Vec<_> = FleetSim::new(small_config(7)).run();
        let b: Vec<_> = FleetSim::new(small_config(7)).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.label, y.label);
        }
        let c: Vec<_> = FleetSim::new(small_config(8)).run();
        assert!(
            a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.frame != y.frame),
            "different seeds must differ"
        );
    }

    #[test]
    fn steps_are_independent() {
        let mut full = FleetSim::new(small_config(3));
        let step5: Vec<_> = (0..6).map(|s| full.step_frames(s)).nth(5).unwrap();
        let mut fresh = FleetSim::new(small_config(3));
        let direct = fresh.step_frames(5);
        assert_eq!(step5.len(), direct.len());
        for (x, y) in step5.iter().zip(&direct) {
            assert_eq!(x.frame, y.frame);
        }
    }

    #[test]
    fn every_tenant_emits_and_attacks_happen() {
        let mut sim = FleetSim::new(small_config(11));
        sim.run();
        for (t, st) in sim.stats().iter().enumerate() {
            assert!(st.frames > 0, "tenant {t} silent");
            assert!(st.benign > 0, "tenant {t} has no benign traffic");
            assert!(st.attack > 0, "tenant {t} saw no attack frames");
            assert!(st.offline_skips > 0, "tenant {t} churn never triggered");
        }
        assert_eq!(sim.config().total_devices(), 200_000);
    }

    #[test]
    fn frames_resolve_to_their_tenant() {
        let mut sim = FleetSim::new(small_config(5));
        let classifier = crate::tenant::TenantClassifier::prefix_per_tenant(4, DEFAULT_PREFIX_SPAN);
        for f in sim.run() {
            assert_eq!(
                classifier.resolve(&f.frame),
                Some(f.tenant),
                "frame source must map back to its tenant"
            );
        }
    }

    #[test]
    fn training_trace_is_labelled_and_deterministic() {
        let sim = FleetSim::new(small_config(9));
        let a = sim.training_trace(0, 500);
        let b = sim.training_trace(0, 500);
        assert_eq!(a.records(), b.records());
        assert!(a.attack_count() > 100);
        assert!(a.attack_count() < 400);
    }

    #[test]
    fn diurnal_curve_peaks_where_configured() {
        let sim = FleetSim::new(small_config(1));
        // Tenant 0 peaks at 0.75 of the run (step 6 of 8).
        let peak = sim.diurnal(0, 6);
        let trough = sim.diurnal(0, 2);
        assert!(peak > 0.99);
        assert!(trough < peak - 0.3);
    }
}
