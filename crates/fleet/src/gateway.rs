//! The multi-tenant serving runtime: the single-tenant gateway's
//! flow-hash shard workers, widened to hold one published pipeline per
//! tenant.
//!
//! There are **no per-tenant thread pools**: the same N shard workers
//! serve every tenant. Each worker keeps a `Vec` of cached
//! [`ReadPipeline`](p4guard_dataplane::pipeline::ReadPipeline) snapshots
//! (one per tenant, refreshed per batch with one atomic version load
//! each), resolves the owning tenant per frame with the O(1)
//! [`TenantClassifier`], and processes the frame through that tenant's
//! pipeline into that tenant's counters. The added per-frame cost over
//! the single-tenant gateway is the classifier lookup and one extra
//! index — guarded at ≤3% by `bench/examples/fleet_overhead.rs`.
//!
//! Per-tenant telemetry reuses the existing counter families with a
//! `tenant` label (`p4guard_frames_received_total{shard,tenant}`, …),
//! flushed as counter deltas at batch boundaries so the per-frame hot
//! path stays allocation- and atomics-free.

use crate::tenant::{TenantClassifier, TenantRegistry};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use p4guard_dataplane::pipeline::{BatchScratch, PipelineCell};
use p4guard_dataplane::switch::SwitchCounters;
use p4guard_dataplane::Verdict;
use p4guard_gateway::{shard_for, GatewayConfig, Ingest, LatencyHistogram};
use p4guard_packet::arena::FrameBatch;
use p4guard_telemetry::{Counter, DropReason, Event, Gauge, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Live statistics of one fleet shard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetShardStats {
    /// Shard index.
    pub shard: usize,
    /// Per-tenant packet counters, indexed by tenant.
    pub per_tenant: Vec<SwitchCounters>,
    /// Frames whose source resolved to no tenant (counted, not processed).
    pub unknown_tenant: u64,
    /// Per-frame forwarding latency across all tenants.
    pub latency: LatencyHistogram,
    /// Frames processed.
    pub processed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Pipeline swaps picked up, summed over tenants.
    pub swaps_seen: u64,
    /// Version last processed with, per tenant.
    pub tenant_versions: Vec<u64>,
    /// Frames that arrived packed in [`FrameBatch`] messages.
    #[serde(default)]
    pub batched_frames: u64,
    /// [`FrameBatch`] messages processed.
    #[serde(default)]
    pub frame_batches: u64,
}

/// Point-in-time view of the fleet gateway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<FleetShardStats>,
    /// Frames dropped at ingest because a shard queue was full.
    pub dropped_backpressure: u64,
    /// Frames that resolved to no tenant, summed over shards.
    pub unknown_tenant: u64,
    /// Serving pipeline version per tenant per shard:
    /// `tenant_versions[tenant][shard]`.
    pub tenant_versions: Vec<Vec<u64>>,
    /// Counters summed per tenant across shards, indexed by tenant.
    pub per_tenant: Vec<SwitchCounters>,
    /// Counters summed over everything.
    pub totals: SwitchCounters,
    /// Merged forwarding-latency histogram.
    pub latency: LatencyHistogram,
}

impl fmt::Display for FleetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} shards × {} tenants, {} received / {} forwarded / {} dropped, {} backpressure, {} unclassified",
            self.shards.len(),
            self.per_tenant.len(),
            self.totals.received,
            self.totals.forwarded,
            self.totals.dropped,
            self.dropped_backpressure,
            self.unknown_tenant,
        )?;
        for (t, c) in self.per_tenant.iter().enumerate() {
            let versions = &self.tenant_versions[t];
            writeln!(
                f,
                "  tenant {}: {} received / {} forwarded / {} dropped (serving v{})",
                t,
                c.received,
                c.forwarded,
                c.dropped,
                versions.iter().copied().max().unwrap_or(0),
            )?;
        }
        Ok(())
    }
}

/// Per-shard × per-tenant counter handles, resolved once at startup.
struct TenantMetrics {
    received: Counter,
    forwarded: Counter,
    rule_drop: Counter,
    parser_rejected: Counter,
}

/// The multi-tenant gateway runtime. Start with [`FleetGateway::start`],
/// ingest with [`FleetGateway::offer`]/[`FleetGateway::dispatch`], stop
/// with [`FleetGateway::finish`].
pub struct FleetGateway {
    senders: Vec<Sender<Ingest>>,
    workers: Vec<JoinHandle<()>>,
    states: Vec<Arc<Mutex<FleetShardStats>>>,
    ingest_drops: Vec<AtomicU64>,
    /// `cells[tenant][shard]`.
    cells: Vec<Vec<Arc<PipelineCell>>>,
    config: GatewayConfig,
    telemetry: Option<FleetTelemetry>,
}

struct FleetTelemetry {
    bundle: Arc<Telemetry>,
    backpressure: Vec<Counter>,
    queue_depth: Vec<Gauge>,
}

impl FleetGateway {
    /// Spawns `config.shards` workers serving every tenant in `registry`,
    /// subscribing one pipeline cell per tenant per shard (shard s is
    /// subscriber s of each tenant's control plane, so per-tenant
    /// canaries via
    /// [`ControlPlane::publish_to`](p4guard_dataplane::control::ControlPlane::publish_to)
    /// target shards exactly as in the single-tenant gateway).
    ///
    /// With telemetry, the registry's counter families gain a `tenant`
    /// label and the per-shard `p4guard_queue_depth` gauges are kept
    /// fresh by [`FleetGateway::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the registry has no tenants or `config` has zero shards
    /// or queue capacity.
    pub fn start(
        registry: &TenantRegistry,
        config: GatewayConfig,
        telemetry: Option<Arc<Telemetry>>,
    ) -> FleetGateway {
        let tenants = registry.tenant_count();
        assert!(tenants > 0, "fleet gateway needs at least one tenant");
        assert!(config.shards > 0, "fleet gateway needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be nonzero");
        let classifier = registry.classifier();
        // cells[tenant][shard], subscribed shard-major so each tenant's
        // control plane sees shard 0 first.
        let mut cells: Vec<Vec<Arc<PipelineCell>>> = (0..tenants).map(|_| Vec::new()).collect();
        for _shard in 0..config.shards {
            for (tenant, row) in cells.iter_mut().enumerate() {
                let control = registry.control(tenant).expect("tenant in registry");
                row.push(control.attach_cell());
            }
        }
        if let Some(t) = &telemetry {
            t.registry
                .gauge("p4guard_shards", "Worker shards in the gateway", &[])
                .set(config.shards as f64);
            t.registry
                .gauge(
                    "p4guard_tenants",
                    "Tenants served by the fleet gateway",
                    &[],
                )
                .set(tenants as f64);
        }
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        let mut ingest_drops = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<Ingest>(config.queue_capacity);
            let state = Arc::new(Mutex::new(FleetShardStats {
                shard,
                per_tenant: vec![SwitchCounters::default(); tenants],
                tenant_versions: vec![0; tenants],
                ..FleetShardStats::default()
            }));
            let worker_cells: Vec<Arc<PipelineCell>> =
                cells.iter().map(|row| Arc::clone(&row[shard])).collect();
            let worker_state = Arc::clone(&state);
            let worker_classifier = classifier.clone();
            let batch = config.batch_size.max(1);
            let metrics = telemetry.as_ref().map(|t| {
                (0..tenants)
                    .map(|tenant| {
                        let shard_label = shard.to_string();
                        let name = &registry.spec(tenant).expect("tenant in registry").name;
                        let labels = [("shard", shard_label.as_str()), ("tenant", name.as_str())];
                        TenantMetrics {
                            received: t.registry.counter(
                                "p4guard_frames_received_total",
                                "Frames entering the pipeline",
                                &labels,
                            ),
                            forwarded: t.registry.counter(
                                "p4guard_frames_forwarded_total",
                                "Frames forwarded",
                                &labels,
                            ),
                            rule_drop: t.registry.counter(
                                "p4guard_drops_total",
                                "Frames dropped, by reason",
                                &[
                                    ("shard", shard_label.as_str()),
                                    ("tenant", name.as_str()),
                                    ("reason", DropReason::RuleDrop.as_str()),
                                ],
                            ),
                            parser_rejected: t.registry.counter(
                                "p4guard_drops_total",
                                "Frames dropped, by reason",
                                &[
                                    ("shard", shard_label.as_str()),
                                    ("tenant", name.as_str()),
                                    ("reason", DropReason::ParserRejected.as_str()),
                                ],
                            ),
                        }
                    })
                    .collect::<Vec<_>>()
            });
            let builder = std::thread::Builder::new().name(format!("p4guard-fleet-{shard}"));
            let worker = builder
                .spawn(move || {
                    run_fleet_shard(
                        rx,
                        worker_cells,
                        worker_classifier,
                        worker_state,
                        batch,
                        metrics,
                    )
                })
                .expect("spawn fleet shard worker");
            workers.push(worker);
            senders.push(tx);
            states.push(state);
            ingest_drops.push(AtomicU64::new(0));
        }
        let telemetry = telemetry.map(|bundle| FleetTelemetry {
            backpressure: (0..config.shards)
                .map(|shard| {
                    bundle.registry.counter(
                        "p4guard_drops_total",
                        "Frames dropped, by reason",
                        &[
                            ("shard", &shard.to_string()),
                            ("reason", DropReason::Backpressure.as_str()),
                        ],
                    )
                })
                .collect(),
            queue_depth: (0..config.shards)
                .map(|shard| {
                    bundle.registry.gauge(
                        "p4guard_queue_depth",
                        "Frames waiting in a shard's ingest queue",
                        &[("shard", &shard.to_string())],
                    )
                })
                .collect(),
            bundle,
        });
        FleetGateway {
            senders,
            workers,
            states,
            ingest_drops,
            cells,
            config,
            telemetry,
        }
    }

    /// The gateway's sizing.
    pub fn config(&self) -> GatewayConfig {
        self.config
    }

    /// Shard index `frame` would be dispatched to (same flow-hash as the
    /// single-tenant gateway: tenancy never splits a flow across shards).
    pub fn shard_of(&self, frame: &[u8]) -> usize {
        shard_for(frame, self.config.shards)
    }

    /// The pipeline cells for `tenant`, indexed by shard.
    pub fn tenant_cells(&self, tenant: usize) -> &[Arc<PipelineCell>] {
        &self.cells[tenant]
    }

    /// Non-blocking ingest; drops (counted) when the shard queue is full.
    pub fn offer(&self, frame: Bytes) -> bool {
        let shard = self.shard_of(&frame);
        match self.senders[shard].try_send(Ingest::Frame(frame)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.note_ingest_drops(shard, 1);
                false
            }
        }
    }

    /// Blocking ingest: waits for queue space instead of dropping.
    pub fn dispatch(&self, frame: Bytes) {
        let shard = self.shard_of(&frame);
        if self.senders[shard].send(Ingest::Frame(frame)).is_err() {
            self.note_ingest_drops(shard, 1);
        }
    }

    /// Splits `batch` by flow-hash into one sub-batch per shard (sharing
    /// the chunk, no frame copies) — the batched analogue of routing each
    /// frame through [`FleetGateway::shard_of`].
    fn split_batch(&self, batch: FrameBatch) -> Vec<FrameBatch> {
        let shards = self.config.shards;
        if shards == 1 {
            vec![batch]
        } else {
            batch.partition_by(shards, |frame| shard_for(frame, shards))
        }
    }

    /// Blocking batched ingest: splits `batch` per shard and waits for
    /// queue space on each.
    pub fn dispatch_batch(&self, batch: FrameBatch) {
        for (shard, sub) in self.split_batch(batch).into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let frames = sub.len() as u64;
            if self.senders[shard].send(Ingest::Batch(sub)).is_err() {
                self.note_ingest_drops(shard, frames);
            }
        }
    }

    /// Non-blocking batched ingest; whole sub-batches are dropped
    /// (counted per frame) when a shard queue is full. Returns the number
    /// of frames enqueued.
    pub fn offer_batch(&self, batch: FrameBatch) -> u64 {
        let mut enqueued = 0u64;
        for (shard, sub) in self.split_batch(batch).into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let frames = sub.len() as u64;
            match self.senders[shard].try_send(Ingest::Batch(sub)) {
                Ok(()) => enqueued += frames,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.note_ingest_drops(shard, frames);
                }
            }
        }
        enqueued
    }

    fn note_ingest_drops(&self, shard: usize, count: u64) {
        let previous = self.ingest_drops[shard].fetch_add(count, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.backpressure[shard].add(count);
            t.queue_depth[shard].set(self.senders[shard].len() as f64);
            if previous == 0 {
                t.bundle.recorder.record(Event::Overload {
                    shard,
                    dropped: previous + count,
                });
            }
        }
    }

    /// Frames currently waiting in each shard's ingest queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.senders.iter().map(Sender::len).collect()
    }

    /// Aggregates a live snapshot without stopping the workers, and
    /// refreshes the queue-depth gauges when telemetry is attached.
    pub fn snapshot(&self) -> FleetSnapshot {
        if let Some(t) = &self.telemetry {
            for (shard, tx) in self.senders.iter().enumerate() {
                t.queue_depth[shard].set(tx.len() as f64);
            }
        }
        let shards: Vec<FleetShardStats> = self.states.iter().map(|s| s.lock().clone()).collect();
        let tenants = self.cells.len();
        let mut per_tenant = vec![SwitchCounters::default(); tenants];
        let mut totals = SwitchCounters::default();
        let mut latency = LatencyHistogram::new();
        let mut unknown_tenant = 0;
        for s in &shards {
            for (t, c) in s.per_tenant.iter().enumerate() {
                per_tenant[t].merge(c);
                totals.merge(c);
            }
            latency.merge(&s.latency);
            unknown_tenant += s.unknown_tenant;
        }
        let tenant_versions: Vec<Vec<u64>> = self
            .cells
            .iter()
            .map(|row| row.iter().map(|c| c.version()).collect())
            .collect();
        FleetSnapshot {
            dropped_backpressure: self
                .ingest_drops
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum(),
            unknown_tenant,
            tenant_versions,
            per_tenant,
            totals,
            latency,
            shards,
        }
    }

    /// Closes ingest, drains the queues, joins the workers and returns
    /// the final snapshot.
    pub fn finish(mut self) -> FleetSnapshot {
        self.senders.clear();
        for worker in self.workers.drain(..) {
            worker.join().expect("fleet shard worker panicked");
        }
        self.snapshot()
    }
}

/// The fleet worker loop: the single-tenant shard loop with a pipeline
/// cache per tenant. Version checks stay one atomic load per tenant per
/// batch; the per-frame path adds only the classifier lookup.
fn run_fleet_shard(
    rx: Receiver<Ingest>,
    cells: Vec<Arc<PipelineCell>>,
    classifier: TenantClassifier,
    state: Arc<Mutex<FleetShardStats>>,
    batch_size: usize,
    metrics: Option<Vec<TenantMetrics>>,
) {
    let tenants = cells.len();
    let mut pipelines: Vec<_> = cells.iter().map(|c| c.load()).collect();
    let mut versions: Vec<u64> = pipelines.iter().map(|p| p.version()).collect();
    {
        let mut st = state.lock();
        st.tenant_versions.copy_from_slice(&versions);
    }
    let mut scratch: Vec<u8> =
        vec![0; pipelines.iter().map(|p| p.scratch_len()).max().unwrap_or(0)];
    let mut batch_scratch = BatchScratch::new();
    let mut verdicts: Vec<Verdict> = Vec::new();
    // Last counter values flushed to the registry, per tenant, so batch
    // boundaries publish deltas instead of re-walking frames.
    let mut flushed: Vec<SwitchCounters> = vec![SwitchCounters::default(); tenants];
    let mut batch: Vec<Ingest> = Vec::with_capacity(batch_size);
    while let Ok(first) = rx.recv() {
        let mut frames = first.frame_count();
        batch.push(first);
        while frames < batch_size {
            match rx.try_recv() {
                Ok(msg) => {
                    frames += msg.frame_count();
                    batch.push(msg);
                }
                Err(_) => break,
            }
        }
        let mut swapped = 0u64;
        for (t, cell) in cells.iter().enumerate() {
            let published = cell.version();
            if published != versions[t] {
                pipelines[t] = cell.load();
                versions[t] = pipelines[t].version();
                if scratch.len() < pipelines[t].scratch_len() {
                    scratch.resize(pipelines[t].scratch_len(), 0);
                }
                swapped += 1;
            }
        }
        let mut st = state.lock();
        if swapped > 0 {
            st.swaps_seen += swapped;
            st.tenant_versions.copy_from_slice(&versions);
        }
        for msg in batch.drain(..) {
            match msg {
                Ingest::Frame(frame) => {
                    let t0 = Instant::now();
                    match classifier.resolve(&frame) {
                        Some(tenant) => {
                            pipelines[tenant].process_into(
                                &frame,
                                &mut st.per_tenant[tenant],
                                &mut scratch,
                            );
                        }
                        None => st.unknown_tenant += 1,
                    }
                    st.latency.record(t0.elapsed());
                    st.processed += 1;
                }
                Ingest::Batch(fb) => {
                    let n = fb.len();
                    if n == 0 {
                        continue;
                    }
                    let t0 = Instant::now();
                    // Regroup spans by owning tenant (lane `tenants` holds
                    // unclassified frames), sharing the chunk, then run
                    // each tenant's frames through its own staged batch
                    // loop into that tenant's counters.
                    let lanes = fb.partition_by(tenants + 1, |frame| {
                        classifier.resolve(frame).unwrap_or(tenants)
                    });
                    for (tenant, lane) in lanes.into_iter().enumerate() {
                        if lane.is_empty() {
                            continue;
                        }
                        if tenant == tenants {
                            st.unknown_tenant += lane.len() as u64;
                            continue;
                        }
                        verdicts.clear();
                        pipelines[tenant].process_batch_into(
                            lane.data(),
                            lane.spans(),
                            &mut st.per_tenant[tenant],
                            &mut batch_scratch,
                            &mut verdicts,
                        );
                    }
                    let per_frame = t0.elapsed() / n as u32;
                    st.latency.record_n(per_frame, n as u64);
                    st.processed += n as u64;
                    st.batched_frames += n as u64;
                    st.frame_batches += 1;
                }
            }
        }
        st.batches += 1;
        if let Some(metrics) = &metrics {
            for (t, m) in metrics.iter().enumerate() {
                let now = &st.per_tenant[t];
                let last = &mut flushed[t];
                m.received.add(now.received - last.received);
                m.forwarded.add(now.forwarded - last.forwarded);
                m.rule_drop.add(now.dropped - last.dropped);
                m.parser_rejected
                    .add(now.parser_rejected - last.parser_rejected);
                *last = now.clone();
            }
        }
    }
}
