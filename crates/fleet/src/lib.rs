//! # p4guard-fleet
//!
//! Multi-tenant fleet layer: one physical gateway serving many device
//! classes ("tenants"), each with its own learned ruleset, under a shared
//! switch table budget — the deployment shape of the paper's gateway
//! scaled to smart-home / campus fleets of 10⁵–10⁶ IoT devices.
//!
//! ## Pieces
//!
//! - [`TenantRegistry`] ([`tenant`]): per-tenant [`RuleSet`]s published
//!   through per-tenant
//!   [`ControlPlane`](p4guard_dataplane::control::ControlPlane)s, admitted
//!   against the shared budget *before* any table is touched.
//! - [`TableBudgeter`] ([`budget`]): carves the global TCAM/SRAM bit
//!   budget into per-tenant allocations (weighted fair share over minimum
//!   guarantees), rejects or trims over-budget publishes, reports
//!   per-tenant occupancy.
//! - [`FleetSim`] ([`sim`]): deterministic traffic for fleets of virtual
//!   devices — device churn, diurnal load, per-tenant attack waves —
//!   with memory O(frames), not O(devices).
//! - [`FleetGateway`] ([`gateway`]): the existing flow-hash shard workers
//!   widened to one cached pipeline per tenant; tenant resolved per frame
//!   by an O(1) source-prefix [`TenantClassifier`]. No per-tenant thread
//!   pools, ≤3% pps overhead over the single-tenant gateway.
//!
//! [`RuleSet`]: p4guard_rules::RuleSet

#![warn(missing_docs)]

pub mod budget;
pub mod gateway;
pub mod sim;
pub mod tenant;

pub use budget::{
    BudgetConfig, BudgetError, ForestAdmission, TableBudgeter, TenantAllocation, TenantShare,
};
pub use gateway::{FleetGateway, FleetShardStats, FleetSnapshot};
pub use sim::{AttackWave, FleetSim, FleetSimConfig, SimFrame, TenantSimStats, TenantTraffic};
pub use tenant::{
    device_ip, AclLayout, AdmitPolicy, FleetError, TenantClassifier, TenantOccupancy,
    TenantPublish, TenantRegistry, TenantSpec, DEFAULT_PREFIX_SPAN,
};
