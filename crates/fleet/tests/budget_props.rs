//! Property suite for the table-space budgeter: for arbitrary tenant
//! sets, allocations (i) never exceed the global TCAM/SRAM budget,
//! (ii) respect every tenant's minimum guarantee, and (iii) are a pure
//! function of the tenant set — the same shares always split the same
//! way, in allocation, admission and trimming alike.

use p4guard_fleet::{BudgetConfig, TableBudgeter, TenantShare};
use p4guard_rules::{RuleSet, TernaryEntry};
use proptest::prelude::*;

/// Raw share material: (weight, min_tcam_seed, min_sram_seed).
type RawShare = (u32, usize, usize);

/// Builds shares whose guarantees are scaled to stay feasible: each
/// tenant's minimum is at most `budget / tenants`, so the construction
/// below never hits `InfeasibleMinimums` and the properties quantify
/// over *accepted* tenant sets.
fn shares_from(raw: &[RawShare], config: BudgetConfig) -> Vec<TenantShare> {
    let n = raw.len().max(1);
    raw.iter()
        .map(|&(weight, t_seed, s_seed)| TenantShare {
            weight: weight % 1000,
            min_tcam_bits: t_seed % (config.tcam_bits / n + 1),
            min_sram_bits: s_seed % (config.sram_bits / n + 1),
        })
        .collect()
}

fn ruleset_with(entries: usize, width: usize) -> RuleSet {
    let mut rs = RuleSet::new(width, 0);
    for i in 0..entries {
        rs.push(TernaryEntry::new(
            vec![(i % 251) as u8; width],
            vec![0xff; width],
            1,
            i as i32,
        ));
    }
    rs
}

proptest! {
    #[test]
    fn allocations_never_exceed_global_budget(
        raw in collection::vec((any::<u32>(), any::<usize>(), any::<usize>()), 1..24),
        tcam_budget in 1usize..2_000_000,
        sram_budget in 1usize..2_000_000,
    ) {
        let config = BudgetConfig { tcam_bits: tcam_budget, sram_bits: sram_budget };
        let shares = shares_from(&raw, config);
        let budgeter = TableBudgeter::new(config, shares).expect("scaled minimums are feasible");
        let tcam: usize = budgeter.allocations().iter().map(|a| a.tcam_bits).sum();
        let sram: usize = budgeter.allocations().iter().map(|a| a.sram_bits).sum();
        prop_assert!(tcam <= config.tcam_bits, "tcam {tcam} > budget {}", config.tcam_bits);
        prop_assert!(sram <= config.sram_bits, "sram {sram} > budget {}", config.sram_bits);
    }

    #[test]
    fn minimum_guarantees_are_respected(
        raw in collection::vec((any::<u32>(), any::<usize>(), any::<usize>()), 1..24),
        tcam_budget in 1usize..2_000_000,
        sram_budget in 1usize..2_000_000,
    ) {
        let config = BudgetConfig { tcam_bits: tcam_budget, sram_bits: sram_budget };
        let shares = shares_from(&raw, config);
        let budgeter = TableBudgeter::new(config, shares.clone()).expect("feasible");
        for (share, alloc) in shares.iter().zip(budgeter.allocations()) {
            prop_assert!(
                alloc.tcam_bits >= share.min_tcam_bits,
                "tenant {} allocated {} < guaranteed {}",
                alloc.tenant, alloc.tcam_bits, share.min_tcam_bits
            );
            prop_assert!(alloc.sram_bits >= share.min_sram_bits);
        }
    }

    #[test]
    fn allocation_is_deterministic(
        raw in collection::vec((any::<u32>(), any::<usize>(), any::<usize>()), 1..24),
        tcam_budget in 1usize..2_000_000,
        sram_budget in 1usize..2_000_000,
        entries in 0usize..64,
        width in 1usize..8,
    ) {
        let config = BudgetConfig { tcam_bits: tcam_budget, sram_bits: sram_budget };
        let shares = shares_from(&raw, config);
        let a = TableBudgeter::new(config, shares.clone()).expect("feasible");
        let b = TableBudgeter::new(config, shares).expect("feasible");
        prop_assert_eq!(a.allocations(), b.allocations());
        // Admission and trimming decisions replay identically too.
        let rs = ruleset_with(entries, width);
        for tenant in 0..a.tenant_count() {
            prop_assert_eq!(
                a.admit(tenant, &rs).is_ok(),
                b.admit(tenant, &rs).is_ok()
            );
            let (ta, cut_a) = a.trim(tenant, &rs).expect("tenant in range");
            let (tb, cut_b) = b.trim(tenant, &rs).expect("tenant in range");
            prop_assert_eq!(cut_a, cut_b);
            prop_assert_eq!(ta.entries(), tb.entries());
            // Trimmed result always fits the allocation the admitter uses.
            prop_assert!(a.admit(tenant, &ta).is_ok());
        }
    }
}
