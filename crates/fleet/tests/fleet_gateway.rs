//! End-to-end fleet test: simulated multi-tenant traffic served by the
//! shared shard workers must produce, per tenant, exactly the verdicts
//! the tenant's own ruleset computes offline.

use p4guard_fleet::{
    AclLayout, AdmitPolicy, BudgetConfig, FleetGateway, FleetSim, FleetSimConfig, TenantRegistry,
    TenantShare, TenantSpec,
};
use p4guard_gateway::GatewayConfig;
use p4guard_rules::{RuleSet, TernaryEntry};
use p4guard_telemetry::Telemetry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A ruleset over the default ACL layout (proto + 4 port bytes) dropping
/// the attack source-port band: sport high byte in `[0x04, 0x08)`.
fn drop_attack_sports(width: usize) -> RuleSet {
    let mut rs = RuleSet::new(width, 0);
    for hi in 4u8..8 {
        let mut value = vec![0u8; width];
        let mut mask = vec![0u8; width];
        value[1] = hi; // offset 34 = source port high byte
        mask[1] = 0xff;
        rs.push(TernaryEntry::new(value, mask, 1, 10));
    }
    rs
}

#[test]
fn fleet_verdicts_match_offline_classification() {
    let mut config = FleetSimConfig::demo(4, 100_000, 42);
    config.steps = 16;
    config.frames_per_step = 1024;
    let layout = AclLayout::default();
    let width = layout.offsets.len();
    let specs: Vec<TenantSpec> = config
        .tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.name.clone(),
            share: TenantShare::flat(),
        })
        .collect();
    let mut registry = TenantRegistry::new(specs, BudgetConfig::default(), layout.clone()).unwrap();
    let telemetry = Arc::new(Telemetry::default());
    registry.attach_telemetry(Arc::clone(&telemetry));
    // Tenants 0..3 get the drop ruleset; all within budget.
    for t in 0..4 {
        let publish = registry
            .publish(t, &drop_attack_sports(width), AdmitPolicy::Reject)
            .unwrap();
        assert!(publish.occupancy.within_budget());
    }

    let gw = FleetGateway::start(
        &registry,
        GatewayConfig::with_shards(2),
        Some(Arc::clone(&telemetry)),
    );
    let mut sim = FleetSim::new(config);
    let frames = sim.run();

    // Offline expectation: classify each frame's projected key with its
    // tenant's active ruleset.
    let mut expected_drops = [0u64; 4];
    let mut expected_frames = [0u64; 4];
    for f in &frames {
        let key: Vec<u8> = layout.offsets.iter().map(|&o| f.frame[o]).collect();
        let rs = registry.active_ruleset(f.tenant).unwrap();
        expected_frames[f.tenant] += 1;
        if rs.classify(&key) == 1 {
            expected_drops[f.tenant] += 1;
        }
    }

    let total = frames.len() as u64;
    for f in frames {
        gw.dispatch(f.frame);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < total {
        assert!(Instant::now() < deadline, "fleet gateway failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    let snap = gw.finish();

    assert_eq!(snap.totals.received, total);
    assert_eq!(snap.unknown_tenant, 0);
    for t in 0..4 {
        assert_eq!(
            snap.per_tenant[t].received, expected_frames[t],
            "tenant {t}"
        );
        assert_eq!(snap.per_tenant[t].dropped, expected_drops[t], "tenant {t}");
        assert!(expected_drops[t] > 0, "tenant {t} saw no attack drops");
        assert!(
            snap.per_tenant[t].forwarded > 0,
            "tenant {t} forwarded nothing"
        );
    }

    // Telemetry rollups agree with the snapshot, per tenant.
    for t in 0..4 {
        let name = &registry.spec(t).unwrap().name;
        let received: u64 = (0..2)
            .filter_map(|s| {
                telemetry.registry.counter_value(
                    "p4guard_frames_received_total",
                    &[("shard", &s.to_string()), ("tenant", name)],
                )
            })
            .sum();
        assert_eq!(received, snap.per_tenant[t].received, "tenant {t} metrics");
    }
    let rendered = telemetry.registry.render_prometheus();
    assert!(rendered.contains("p4guard_tenant_budget_bits"));
    assert!(rendered.contains("p4guard_tenant_occupancy_bits"));
    assert!(rendered.contains("tenant=\"smart-home-0\""));
}

#[test]
fn fleet_batched_ingest_matches_per_frame_ingest() {
    let mut config = FleetSimConfig::demo(4, 100_000, 77);
    config.steps = 8;
    config.frames_per_step = 512;
    let layout = AclLayout::default();
    let width = layout.offsets.len();
    let specs: Vec<TenantSpec> = config
        .tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.name.clone(),
            share: TenantShare::flat(),
        })
        .collect();
    let mut registry = TenantRegistry::new(specs, BudgetConfig::default(), layout).unwrap();
    for t in 0..4 {
        registry
            .publish(t, &drop_attack_sports(width), AdmitPolicy::Reject)
            .unwrap();
    }
    let frames: Vec<_> = FleetSim::new(config).run();
    let total = frames.len() as u64;

    // Per-frame reference run.
    let gw = FleetGateway::start(&registry, GatewayConfig::with_shards(2), None);
    for f in &frames {
        gw.dispatch(f.frame.clone());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < total {
        assert!(Instant::now() < deadline, "per-frame run failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    let per_frame = gw.finish();

    // Batched run: pack the same frames into arena-backed batches.
    let gw = FleetGateway::start(&registry, GatewayConfig::with_shards(2), None);
    let mut arena = p4guard_packet::FrameArena::new(64 * 1024);
    for f in &frames {
        arena.push(&f.frame);
        if arena.pending() >= 128 {
            gw.dispatch_batch(arena.seal_batch());
        }
    }
    gw.dispatch_batch(arena.seal_batch());
    let deadline = Instant::now() + Duration::from_secs(30);
    while gw.snapshot().totals.received < total {
        assert!(Instant::now() < deadline, "batched run failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    let batched = gw.finish();

    assert_eq!(batched.totals.received, per_frame.totals.received);
    assert_eq!(batched.unknown_tenant, per_frame.unknown_tenant);
    for t in 0..4 {
        assert_eq!(batched.per_tenant[t], per_frame.per_tenant[t], "tenant {t}");
    }
    let batched_frames: u64 = batched.shards.iter().map(|s| s.batched_frames).sum();
    assert_eq!(batched_frames, total, "all frames took the batched path");
}
