//! DNS message codec (RFC 1035), single-question form.
//!
//! The simulator only ever emits queries and minimal responses with one
//! question section entry, which is also all the detection pipeline needs:
//! the distinguishing signal for DNS tunnelling lives in the header flags,
//! counts and the query name itself.

use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};

/// Default DNS UDP port.
pub const PORT: u16 = 53;

/// Query type A (host address).
pub const QTYPE_A: u16 = 1;
/// Query type TXT.
pub const QTYPE_TXT: u16 = 16;
/// Query type AAAA.
pub const QTYPE_AAAA: u16 = 28;
/// Query class IN.
pub const QCLASS_IN: u16 = 1;

/// A decoded single-question DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// Raw flags word (QR, opcode, AA, TC, RD, RA, rcode).
    pub flags: u16,
    /// The question name, dot-separated (e.g. `"sensor.example.com"`).
    pub qname: String,
    /// Question type.
    pub qtype: u16,
    /// Question class.
    pub qclass: u16,
    /// Answer count advertised in the header (answer records themselves are
    /// carried opaquely in `answer_bytes`).
    pub ancount: u16,
    /// Raw bytes of everything after the question section.
    pub answer_bytes: Vec<u8>,
}

impl DnsMessage {
    /// Flags word of a standard recursive query.
    pub const FLAGS_QUERY: u16 = 0x0100;
    /// Flags word of a standard authoritative response.
    pub const FLAGS_RESPONSE: u16 = 0x8180;

    /// Creates a standard A-record query.
    pub fn query(id: u16, qname: &str) -> Self {
        DnsMessage {
            id,
            flags: Self::FLAGS_QUERY,
            qname: qname.to_owned(),
            qtype: QTYPE_A,
            qclass: QCLASS_IN,
            ancount: 0,
            answer_bytes: Vec::new(),
        }
    }

    /// Returns `true` if the QR bit marks this as a response.
    pub fn is_response(&self) -> bool {
        self.flags & 0x8000 != 0
    }

    /// Encodes the message into a standalone byte vector (a UDP payload).
    ///
    /// # Panics
    ///
    /// Panics if any qname label exceeds 63 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u16(&mut out, self.id);
        wire::put_u16(&mut out, self.flags);
        wire::put_u16(&mut out, 1); // qdcount
        wire::put_u16(&mut out, self.ancount);
        wire::put_u16(&mut out, 0); // nscount
        wire::put_u16(&mut out, 0); // arcount
        for label in self.qname.split('.').filter(|l| !l.is_empty()) {
            assert!(label.len() <= 63, "dns label exceeds 63 bytes");
            out.push(label.len() as u8);
            out.extend_from_slice(label.as_bytes());
        }
        out.push(0); // root
        wire::put_u16(&mut out, self.qtype);
        wire::put_u16(&mut out, self.qclass);
        out.extend_from_slice(&self.answer_bytes);
        out
    }

    /// Decodes a message from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a question count other than one, or a
    /// malformed name encoding.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, 12, "dns header")?;
        let id = wire::get_u16(buf, 0, "dns id")?;
        let flags = wire::get_u16(buf, 2, "dns flags")?;
        let qdcount = wire::get_u16(buf, 4, "dns qdcount")?;
        if qdcount != 1 {
            return Err(ParseError::invalid(
                "dns message",
                format!("expected exactly 1 question, found {qdcount}"),
            ));
        }
        let ancount = wire::get_u16(buf, 6, "dns ancount")?;
        let (qname, mut at) = decode_name(buf, 12)?;
        let qtype = wire::get_u16(buf, at, "dns qtype")?;
        let qclass = wire::get_u16(buf, at + 2, "dns qclass")?;
        at += 4;
        Ok((
            DnsMessage {
                id,
                flags,
                qname,
                qtype,
                qclass,
                ancount,
                answer_bytes: buf[at..].to_vec(),
            },
            buf.len(),
        ))
    }
}

/// Decodes an uncompressed DNS name starting at `start`, returning the
/// dot-separated name and the offset just past the terminating root label.
fn decode_name(buf: &[u8], start: usize) -> Result<(String, usize), ParseError> {
    let mut labels: Vec<String> = Vec::new();
    let mut at = start;
    loop {
        let len = usize::from(wire::get_u8(buf, at, "dns label length")?);
        at += 1;
        if len == 0 {
            break;
        }
        if len > 63 {
            return Err(ParseError::invalid(
                "dns name",
                "label length above 63 (compression is not supported)",
            ));
        }
        let end = at + len;
        let bytes = buf
            .get(at..end)
            .ok_or_else(|| ParseError::truncated("dns label", end, buf.len()))?;
        let label = std::str::from_utf8(bytes)
            .map_err(|_| ParseError::invalid("dns label", "label is not utf-8"))?;
        // The dotted-name form cannot represent a label that itself
        // contains a dot: `decode → encode` would re-split it into
        // different labels, breaking the round-trip fixpoint.
        if label.contains('.') {
            return Err(ParseError::invalid(
                "dns label",
                "label contains a dot (not representable in dotted-name form)",
            ));
        }
        labels.push(label.to_owned());
        at = end;
    }
    Ok((labels.join("."), at))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_query() {
        let q = DnsMessage::query(0xbeef, "camera.vendor.example.com");
        let bytes = q.encode();
        let (decoded, used) = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, q);
        assert!(!decoded.is_response());
    }

    #[test]
    fn round_trip_response_with_opaque_answers() {
        let mut m = DnsMessage::query(1, "example.com");
        m.flags = DnsMessage::FLAGS_RESPONSE;
        m.ancount = 1;
        m.answer_bytes = vec![0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 5];
        let bytes = m.encode();
        let (decoded, _) = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.is_response());
    }

    #[test]
    fn rejects_multi_question() {
        let mut bytes = DnsMessage::query(1, "a.b").encode();
        bytes[5] = 2;
        assert!(DnsMessage::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_name() {
        let bytes = DnsMessage::query(1, "abcdef.example").encode();
        assert!(DnsMessage::decode(&bytes[..14]).is_err());
    }

    #[test]
    #[should_panic(expected = "63 bytes")]
    fn encode_panics_on_long_label() {
        let _ = DnsMessage::query(1, &"x".repeat(64)).encode();
    }

    #[test]
    fn rejects_label_containing_dot() {
        // Conformance-fuzzer repro: a wire label consisting of a single "."
        // decodes to qname "." whose re-encoding (split on dots, empty
        // labels dropped) is the root name — decode(encode(m)) != m.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0, 1]); // id
        bytes.extend_from_slice(&[1, 0]); // flags
        bytes.extend_from_slice(&[0, 1]); // qdcount
        bytes.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // ancount/nscount/arcount
        bytes.extend_from_slice(&[1, b'.', 0]); // name: label "." + root
        bytes.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass
        assert!(DnsMessage::decode(&bytes).is_err());
        // Same for a label hiding dots between letters.
        bytes[12..15].copy_from_slice(&[3, b'a', b'.']);
        bytes.insert(15, b'b');
        assert!(DnsMessage::decode(&bytes).is_err());
    }

    #[test]
    fn root_query_round_trips() {
        // The empty qname (root-domain query) must stay a fixpoint.
        let q = DnsMessage::query(9, "");
        let bytes = q.encode();
        let (decoded, _) = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, q);
    }
}
