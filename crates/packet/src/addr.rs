//! Link-layer addressing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns `true` if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Derives a deterministic, locally-administered unicast address from an
    /// integer id. Useful for simulated devices.
    pub fn from_id(id: u64) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// Error returned by [`MacAddr::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(ParseMacError)?;
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-mac".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:zz".parse::<MacAddr>().is_err());
    }

    #[test]
    fn from_id_is_unicast_and_distinct() {
        let a = MacAddr::from_id(1);
        let b = MacAddr::from_id(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn broadcast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }
}
