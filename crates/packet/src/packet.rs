//! Whole-frame parsing and construction.
//!
//! [`ParsedPacket`] is the layered view of a raw Ethernet frame;
//! [`PacketBuilder`] assembles wire-correct frames (lengths and checksums
//! filled in) for the traffic simulator.

use crate::addr::MacAddr;
use crate::arp::ArpHeader;
use crate::coap::CoapMessage;
use crate::dns::DnsMessage;
use crate::error::ParseError;
use crate::ethernet::{EtherType, EthernetHeader, VlanTag};
use crate::icmp::IcmpHeader;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::ipv6::Ipv6Header;
use crate::modbus::ModbusAdu;
use crate::mqtt::MqttPacket;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::zwire::ZWireFrame;
use crate::{coap, dns, modbus, mqtt};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The transport-layer header of a parsed packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// TCP segment.
    Tcp(TcpHeader),
    /// UDP datagram.
    Udp(UdpHeader),
    /// ICMP message.
    Icmp(IcmpHeader),
}

/// The application-layer message of a parsed packet, recognized by
/// well-known port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Application {
    /// MQTT over TCP port 1883.
    Mqtt(MqttPacket),
    /// CoAP over UDP port 5683.
    Coap(CoapMessage),
    /// DNS over UDP port 53.
    Dns(DnsMessage),
    /// Modbus over TCP port 502.
    Modbus(ModbusAdu),
}

/// Coarse protocol classification of a frame, used for dataset statistics
/// and the universality experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtocolTag {
    /// ARP.
    Arp,
    /// ICMP over IPv4.
    Icmp,
    /// TCP with no recognized application layer.
    Tcp,
    /// UDP with no recognized application layer.
    Udp,
    /// MQTT.
    Mqtt,
    /// CoAP.
    Coap,
    /// DNS.
    Dns,
    /// Modbus/TCP.
    Modbus,
    /// ZWire (non-IP).
    ZWire,
    /// IPv4 with an unrecognized transport.
    OtherIp,
    /// Anything else.
    Other,
}

impl ProtocolTag {
    /// All tags, in display order.
    pub const ALL: [ProtocolTag; 11] = [
        ProtocolTag::Arp,
        ProtocolTag::Icmp,
        ProtocolTag::Tcp,
        ProtocolTag::Udp,
        ProtocolTag::Mqtt,
        ProtocolTag::Coap,
        ProtocolTag::Dns,
        ProtocolTag::Modbus,
        ProtocolTag::ZWire,
        ProtocolTag::OtherIp,
        ProtocolTag::Other,
    ];
}

impl fmt::Display for ProtocolTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolTag::Arp => "arp",
            ProtocolTag::Icmp => "icmp",
            ProtocolTag::Tcp => "tcp",
            ProtocolTag::Udp => "udp",
            ProtocolTag::Mqtt => "mqtt",
            ProtocolTag::Coap => "coap",
            ProtocolTag::Dns => "dns",
            ProtocolTag::Modbus => "modbus",
            ProtocolTag::ZWire => "zwire",
            ProtocolTag::OtherIp => "other-ip",
            ProtocolTag::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// A layered view of a raw frame produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedPacket {
    /// Ethernet header (always present).
    pub ethernet: EthernetHeader,
    /// ARP message, when ethertype is ARP.
    pub arp: Option<ArpHeader>,
    /// IPv4 header, when ethertype is IPv4.
    pub ipv4: Option<Ipv4Header>,
    /// IPv6 header, when ethertype is IPv6.
    pub ipv6: Option<Ipv6Header>,
    /// Transport header, when IPv4 carries a recognized protocol.
    pub transport: Option<Transport>,
    /// Application message, when a well-known port matched and the payload
    /// decoded cleanly. A payload on a well-known port that fails to decode
    /// leaves this `None` rather than failing the whole parse.
    pub app: Option<Application>,
    /// ZWire frame, when ethertype is ZWire.
    pub zwire: Option<ZWireFrame>,
    /// Offset of the transport payload (after TCP/UDP headers) in the frame.
    pub payload_offset: usize,
    /// Length of the transport payload in bytes.
    pub payload_len: usize,
}

impl ParsedPacket {
    /// Returns the coarse protocol classification of this packet.
    pub fn protocol(&self) -> ProtocolTag {
        if self.zwire.is_some() {
            return ProtocolTag::ZWire;
        }
        if self.arp.is_some() {
            return ProtocolTag::Arp;
        }
        match (&self.transport, &self.app) {
            (_, Some(Application::Mqtt(_))) => ProtocolTag::Mqtt,
            (_, Some(Application::Coap(_))) => ProtocolTag::Coap,
            (_, Some(Application::Dns(_))) => ProtocolTag::Dns,
            (_, Some(Application::Modbus(_))) => ProtocolTag::Modbus,
            (Some(Transport::Tcp(_)), None) => ProtocolTag::Tcp,
            (Some(Transport::Udp(_)), None) => ProtocolTag::Udp,
            (Some(Transport::Icmp(_)), None) => ProtocolTag::Icmp,
            (None, _) if self.ipv4.is_some() || self.ipv6.is_some() => ProtocolTag::OtherIp,
            _ => ProtocolTag::Other,
        }
    }

    /// Returns the TCP header, if any.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Some(Transport::Tcp(h)) => Some(h),
            _ => None,
        }
    }

    /// Returns the UDP header, if any.
    pub fn udp(&self) -> Option<&UdpHeader> {
        match &self.transport {
            Some(Transport::Udp(h)) => Some(h),
            _ => None,
        }
    }

    /// Returns `(src_port, dst_port)` for TCP or UDP packets.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match &self.transport {
            Some(Transport::Tcp(h)) => Some((h.src_port, h.dst_port)),
            Some(Transport::Udp(h)) => Some((h.src_port, h.dst_port)),
            _ => None,
        }
    }
}

/// Parses a raw Ethernet frame into its layered view.
///
/// Parsing is strict for the link, network and transport layers, and lenient
/// for the application layer (an undecodable application payload is left
/// opaque).
///
/// # Errors
///
/// Returns an error when the frame is truncated or structurally invalid at
/// or below the transport layer.
pub fn parse(buf: &[u8]) -> Result<ParsedPacket, ParseError> {
    let (ethernet, mut at) = EthernetHeader::decode(buf)?;
    let mut packet = ParsedPacket {
        ethernet,
        arp: None,
        ipv4: None,
        ipv6: None,
        transport: None,
        app: None,
        zwire: None,
        payload_offset: at,
        payload_len: 0,
    };
    match ethernet.ethertype {
        EtherType::Arp => {
            let (arp, _) = ArpHeader::decode(&buf[at..])?;
            packet.arp = Some(arp);
        }
        EtherType::ZWire => {
            let (frame, _) = ZWireFrame::decode(&buf[at..])?;
            packet.zwire = Some(frame);
        }
        EtherType::Ipv4 => {
            let (ip, ip_len) = Ipv4Header::decode(&buf[at..])?;
            if usize::from(ip.total_len) < ip_len {
                return Err(ParseError::invalid(
                    "ipv4 header",
                    format!("total length {} below header length {ip_len}", ip.total_len),
                ));
            }
            at += ip_len;
            // Respect the IP total length when the frame carries padding.
            let ip_end = (packet.payload_offset + usize::from(ip.total_len)).min(buf.len());
            packet.ipv4 = Some(ip);
            match ip.protocol {
                IpProtocol::Tcp => {
                    let (tcp, tcp_len) = TcpHeader::decode(&buf[at..ip_end])?;
                    at += tcp_len;
                    packet.transport = Some(Transport::Tcp(tcp));
                    packet.app = parse_app_tcp(tcp.src_port, tcp.dst_port, &buf[at..ip_end]);
                }
                IpProtocol::Udp => {
                    let (udp, udp_len) = UdpHeader::decode(&buf[at..ip_end])?;
                    at += udp_len;
                    packet.transport = Some(Transport::Udp(udp));
                    packet.app = parse_app_udp(udp.src_port, udp.dst_port, &buf[at..ip_end]);
                }
                IpProtocol::Icmp => {
                    let (icmp, icmp_len) = IcmpHeader::decode(&buf[at..ip_end])?;
                    at += icmp_len;
                    packet.transport = Some(Transport::Icmp(icmp));
                }
                IpProtocol::Unknown(_) => {}
            }
            packet.payload_offset = at;
            packet.payload_len = ip_end.saturating_sub(at);
            return Ok(packet);
        }
        EtherType::Ipv6 => {
            let (ip6, ip6_len) = Ipv6Header::decode(&buf[at..])?;
            at += ip6_len;
            let end = (at + usize::from(ip6.payload_len)).min(buf.len());
            packet.ipv6 = Some(ip6);
            match ip6.next_header {
                IpProtocol::Tcp => {
                    let (tcp, tcp_len) = TcpHeader::decode(&buf[at..end])?;
                    at += tcp_len;
                    packet.transport = Some(Transport::Tcp(tcp));
                }
                IpProtocol::Udp => {
                    let (udp, udp_len) = UdpHeader::decode(&buf[at..end])?;
                    at += udp_len;
                    packet.transport = Some(Transport::Udp(udp));
                }
                _ => {}
            }
            packet.payload_offset = at;
            packet.payload_len = end.saturating_sub(at);
            return Ok(packet);
        }
        _ => {}
    }
    packet.payload_offset = at;
    packet.payload_len = buf.len().saturating_sub(at);
    Ok(packet)
}

fn parse_app_tcp(src_port: u16, dst_port: u16, payload: &[u8]) -> Option<Application> {
    if payload.is_empty() {
        return None;
    }
    if src_port == mqtt::PORT || dst_port == mqtt::PORT {
        if let Ok((m, _)) = MqttPacket::decode(payload) {
            return Some(Application::Mqtt(m));
        }
    }
    if src_port == modbus::PORT || dst_port == modbus::PORT {
        if let Ok((m, _)) = ModbusAdu::decode(payload) {
            return Some(Application::Modbus(m));
        }
    }
    None
}

fn parse_app_udp(src_port: u16, dst_port: u16, payload: &[u8]) -> Option<Application> {
    if payload.is_empty() {
        return None;
    }
    if src_port == coap::PORT || dst_port == coap::PORT {
        if let Ok((m, _)) = CoapMessage::decode(payload) {
            return Some(Application::Coap(m));
        }
    }
    if src_port == dns::PORT || dst_port == dns::PORT {
        if let Ok((m, _)) = DnsMessage::decode(payload) {
            return Some(Application::Dns(m));
        }
    }
    None
}

/// Assembles wire-correct Ethernet frames: lengths, checksums and
/// encapsulation are handled so generators only supply semantic fields.
///
/// The builder is non-consuming; configure once per (src, dst) pair and
/// reuse for every frame between them.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    vlan: Option<VlanTag>,
    ttl: u8,
    dscp_ecn: u8,
    ip_id: u16,
}

impl PacketBuilder {
    /// Creates a builder for frames from `src_mac` to `dst_mac`.
    pub fn new(src_mac: MacAddr, dst_mac: MacAddr) -> Self {
        PacketBuilder {
            src_mac,
            dst_mac,
            vlan: None,
            ttl: 64,
            dscp_ecn: 0,
            ip_id: 0,
        }
    }

    /// Tags subsequent frames with an 802.1Q VLAN id.
    pub fn vlan(&mut self, tag: VlanTag) -> &mut Self {
        self.vlan = Some(tag);
        self
    }

    /// Overrides the IPv4 TTL (default 64).
    pub fn ttl(&mut self, ttl: u8) -> &mut Self {
        self.ttl = ttl;
        self
    }

    /// Overrides the IPv4 DSCP/ECN byte (default 0).
    pub fn dscp_ecn(&mut self, v: u8) -> &mut Self {
        self.dscp_ecn = v;
        self
    }

    /// Sets the IPv4 identification field for the next frame.
    pub fn ip_id(&mut self, id: u16) -> &mut Self {
        self.ip_id = id;
        self
    }

    fn ethernet(&self, ethertype: EtherType) -> EthernetHeader {
        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            vlan: self.vlan,
            ethertype,
        }
    }

    fn ipv4_header(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        payload_len: usize,
    ) -> Ipv4Header {
        let mut ip = Ipv4Header::new(src, dst, protocol, payload_len);
        ip.ttl = self.ttl;
        ip.dscp_ecn = self.dscp_ecn;
        ip.identification = self.ip_id;
        ip
    }

    /// Builds a TCP segment inside IPv4 inside Ethernet.
    pub fn tcp(&self, src: Ipv4Addr, dst: Ipv4Addr, tcp: TcpHeader, payload: &[u8]) -> Bytes {
        let mut seg = Vec::with_capacity(crate::tcp::HEADER_LEN + payload.len());
        tcp.encode_with_payload(src, dst, payload, &mut seg);
        self.ip_frame(src, dst, IpProtocol::Tcp, &seg)
    }

    /// Builds a UDP datagram inside IPv4 inside Ethernet.
    pub fn udp(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Bytes {
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        let mut seg = Vec::with_capacity(crate::udp::HEADER_LEN + payload.len());
        udp.encode_with_payload(src, dst, payload, &mut seg);
        self.ip_frame(src, dst, IpProtocol::Udp, &seg)
    }

    /// Builds a UDP datagram inside IPv6 inside Ethernet.
    pub fn udp6(
        &self,
        src: std::net::Ipv6Addr,
        dst: std::net::Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Bytes {
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        // Encode with a zero checksum, then fix it up with the v6
        // pseudo-header sum.
        let mut seg = Vec::with_capacity(crate::udp::HEADER_LEN + payload.len());
        crate::wire::put_u16(&mut seg, udp.src_port);
        crate::wire::put_u16(&mut seg, udp.dst_port);
        crate::wire::put_u16(&mut seg, udp.length);
        crate::wire::put_u16(&mut seg, 0);
        seg.extend_from_slice(payload);
        let ck = crate::checksum::transport_checksum_v6(src, dst, IpProtocol::Udp.as_u8(), &seg);
        let ck = if ck == 0 { 0xffff } else { ck };
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        let eth = self.ethernet(EtherType::Ipv6);
        let ip6 = Ipv6Header::new(src, dst, IpProtocol::Udp, seg.len());
        let mut out = Vec::with_capacity(eth.wire_len() + crate::ipv6::HEADER_LEN + seg.len());
        eth.encode(&mut out);
        ip6.encode(&mut out);
        out.extend_from_slice(&seg);
        Bytes::from(out)
    }

    /// Builds an ICMP message inside IPv4 inside Ethernet.
    pub fn icmp(&self, src: Ipv4Addr, dst: Ipv4Addr, icmp: IcmpHeader, payload: &[u8]) -> Bytes {
        let mut seg = Vec::with_capacity(crate::icmp::HEADER_LEN + payload.len());
        icmp.encode_with_payload(payload, &mut seg);
        self.ip_frame(src, dst, IpProtocol::Icmp, &seg)
    }

    /// Builds an ARP message inside Ethernet.
    pub fn arp(&self, arp: &ArpHeader) -> Bytes {
        let eth = self.ethernet(EtherType::Arp);
        let mut out = Vec::with_capacity(eth.wire_len() + crate::arp::HEADER_LEN);
        eth.encode(&mut out);
        arp.encode(&mut out);
        Bytes::from(out)
    }

    /// Builds a ZWire frame inside Ethernet.
    pub fn zwire(&self, frame: &ZWireFrame) -> Bytes {
        let eth = self.ethernet(EtherType::ZWire);
        let body = frame.encode();
        let mut out = Vec::with_capacity(eth.wire_len() + body.len());
        eth.encode(&mut out);
        out.extend_from_slice(&body);
        Bytes::from(out)
    }

    fn ip_frame(&self, src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, seg: &[u8]) -> Bytes {
        let eth = self.ethernet(EtherType::Ipv4);
        let ip = self.ipv4_header(src, dst, protocol, seg.len());
        let mut out = Vec::with_capacity(eth.wire_len() + crate::ipv4::HEADER_LEN + seg.len());
        eth.encode(&mut out);
        ip.encode(&mut out);
        out.extend_from_slice(seg);
        Bytes::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2))
    }

    fn ips() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(192, 168, 1, 5), Ipv4Addr::new(192, 168, 1, 1))
    }

    #[test]
    fn tcp_frame_parses_back() {
        let (src, dst) = ips();
        let hdr = TcpHeader::new(40000, 80, 1, 0, TcpFlags::SYN);
        let frame = builder().tcp(src, dst, hdr, b"");
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Tcp);
        assert_eq!(p.ports(), Some((40000, 80)));
        assert_eq!(p.ipv4.unwrap().src, src);
        assert_eq!(p.payload_len, 0);
    }

    #[test]
    fn mqtt_frame_is_recognized() {
        let (src, dst) = ips();
        let publish = MqttPacket::Publish {
            topic: "home/temp".into(),
            packet_id: None,
            qos: 0,
            retain: false,
            payload: b"20.1".to_vec(),
        };
        let hdr = TcpHeader::new(50000, mqtt::PORT, 100, 5, TcpFlags::PSH | TcpFlags::ACK);
        let frame = builder().tcp(src, dst, hdr, &publish.encode());
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Mqtt);
        assert!(matches!(
            p.app,
            Some(Application::Mqtt(MqttPacket::Publish { .. }))
        ));
    }

    #[test]
    fn coap_frame_is_recognized() {
        let (src, dst) = ips();
        let msg = CoapMessage::get(9, vec![1, 2], &["sensors", "temp"]);
        let frame = builder().udp(src, dst, 40001, coap::PORT, &msg.encode());
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Coap);
    }

    #[test]
    fn dns_frame_is_recognized() {
        let (src, dst) = ips();
        let q = DnsMessage::query(7, "iot.example.com");
        let frame = builder().udp(src, dst, 53124, dns::PORT, &q.encode());
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Dns);
    }

    #[test]
    fn modbus_frame_is_recognized() {
        let (src, dst) = ips();
        let adu = ModbusAdu::read_holding_registers(1, 1, 0, 2);
        let hdr = TcpHeader::new(50002, modbus::PORT, 1, 1, TcpFlags::PSH | TcpFlags::ACK);
        let frame = builder().tcp(src, dst, hdr, &adu.encode());
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Modbus);
    }

    #[test]
    fn zwire_frame_is_recognized() {
        let frame = builder().zwire(&ZWireFrame::new(
            crate::zwire::ZWireType::Data,
            0xabcd,
            1,
            2,
            0,
            vec![1, 2, 3],
        ));
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::ZWire);
        assert!(p.zwire.is_some());
    }

    #[test]
    fn arp_frame_is_recognized() {
        let (src, dst) = ips();
        let frame = builder().arp(&ArpHeader::request(MacAddr::from_id(1), src, dst));
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Arp);
    }

    #[test]
    fn garbage_on_known_port_stays_opaque() {
        let (src, dst) = ips();
        let hdr = TcpHeader::new(50000, mqtt::PORT, 0, 0, TcpFlags::PSH | TcpFlags::ACK);
        let frame = builder().tcp(src, dst, hdr, &[0xf0, 0x80, 0x80, 0x80, 0x80]);
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Tcp);
        assert!(p.app.is_none());
        assert_eq!(p.payload_len, 5);
    }

    #[test]
    fn builder_overrides_apply() {
        let (src, dst) = ips();
        let mut b = builder();
        b.ttl(3).ip_id(777).dscp_ecn(0x10);
        let frame = b.udp(src, dst, 1, 2, b"x");
        let p = parse(&frame).unwrap();
        let ip = p.ipv4.unwrap();
        assert_eq!(ip.ttl, 3);
        assert_eq!(ip.identification, 777);
        assert_eq!(ip.dscp_ecn, 0x10);
    }

    #[test]
    fn icmp_frame_round_trip() {
        let (src, dst) = ips();
        let frame = builder().icmp(src, dst, IcmpHeader::echo_request(1, 1), b"abcd");
        let p = parse(&frame).unwrap();
        assert_eq!(p.protocol(), ProtocolTag::Icmp);
        assert_eq!(p.payload_len, 4);
    }

    #[test]
    fn vlan_tagged_ip_frame_parses() {
        let (src, dst) = ips();
        let mut b = builder();
        b.vlan(VlanTag::new(42));
        let frame = b.udp(src, dst, 1000, 2000, b"hi");
        let p = parse(&frame).unwrap();
        assert_eq!(p.ethernet.vlan.unwrap().vid, 42);
        assert_eq!(p.protocol(), ProtocolTag::Udp);
    }

    #[test]
    fn ipv6_udp_frame_parses() {
        let b = builder();
        let src: std::net::Ipv6Addr = "fd00::10".parse().unwrap();
        let dst: std::net::Ipv6Addr = "fd00::1".parse().unwrap();
        let frame = b.udp6(src, dst, 40000, 5683, b"coap-over-v6");
        let p = parse(&frame).unwrap();
        let ip6 = p.ipv6.expect("ipv6 header parsed");
        assert_eq!(ip6.src, src);
        assert_eq!(ip6.next_header, IpProtocol::Udp);
        assert_eq!(p.ports(), Some((40000, 5683)));
        assert_eq!(p.payload_len, 12);
        assert_eq!(p.protocol(), ProtocolTag::Udp);
    }

    #[test]
    fn corrupted_total_len_is_rejected_not_panicking() {
        let (src, dst) = ips();
        let frame = builder().udp(src, dst, 1, 2, b"payload");
        let mut bad = frame.to_vec();
        // Corrupt ipv4.total_len (offset 16..18) to a value below the
        // header length.
        bad[16] = 0;
        bad[17] = 4;
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn truncated_frame_errors() {
        let (src, dst) = ips();
        let frame = builder().udp(src, dst, 1, 2, b"payload");
        assert!(parse(&frame[..20]).is_err());
    }
}
