//! ARP codec (RFC 826), Ethernet/IPv4 form only.

use crate::addr::MacAddr;
use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Length of an Ethernet/IPv4 ARP message.
pub const HEADER_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArpOperation {
    /// Request, opcode 1.
    Request,
    /// Reply, opcode 2.
    Reply,
    /// Any other opcode.
    Unknown(u16),
}

impl ArpOperation {
    /// Decodes from the on-wire opcode.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Unknown(other),
        }
    }

    /// Encodes to the on-wire opcode.
    pub fn as_u16(&self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Unknown(v) => *v,
        }
    }
}

/// A decoded Ethernet/IPv4 ARP message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArpHeader {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address.
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpHeader {
    /// Creates a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpHeader {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Decodes a message from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or non-Ethernet/IPv4 hardware/protocol
    /// types.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "arp message")?;
        let htype = wire::get_u16(buf, 0, "arp htype")?;
        let ptype = wire::get_u16(buf, 2, "arp ptype")?;
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(ParseError::invalid(
                "arp message",
                "only ethernet/ipv4 arp is supported",
            ));
        }
        Ok((
            ArpHeader {
                operation: ArpOperation::from_u16(wire::get_u16(buf, 6, "arp oper")?),
                sender_mac: MacAddr(wire::get_array(buf, 8, "arp sha")?),
                sender_ip: Ipv4Addr::from(wire::get_array::<4>(buf, 14, "arp spa")?),
                target_mac: MacAddr(wire::get_array(buf, 18, "arp tha")?),
                target_ip: Ipv4Addr::from(wire::get_array::<4>(buf, 24, "arp tpa")?),
            },
            HEADER_LEN,
        ))
    }

    /// Appends the encoded message to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u16(out, 1); // ethernet
        wire::put_u16(out, 0x0800); // ipv4
        out.push(6);
        out.push(4);
        wire::put_u16(out, self.operation.as_u16());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_request() {
        let hdr = ArpHeader::request(
            MacAddr::from_id(9),
            Ipv4Addr::new(192, 168, 1, 9),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (decoded, used) = ArpHeader::decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn rejects_non_ethernet() {
        let hdr = ArpHeader::request(
            MacAddr::from_id(9),
            Ipv4Addr::new(192, 168, 1, 9),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf[0] = 0;
        buf[1] = 6; // ieee 802
        assert!(ArpHeader::decode(&buf).is_err());
    }

    #[test]
    fn operation_codes_round_trip() {
        for op in [
            ArpOperation::Request,
            ArpOperation::Reply,
            ArpOperation::Unknown(9),
        ] {
            assert_eq!(ArpOperation::from_u16(op.as_u16()), op);
        }
    }
}
