//! UDP header codec (RFC 768).

use crate::checksum;
use crate::error::ParseError;
use crate::ipv4::IpProtocol;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload in bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Creates a header for a datagram carrying `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (HEADER_LEN + payload_len) as u16,
        }
    }

    /// Decodes a header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a length field below 8.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "udp header")?;
        let length = wire::get_u16(buf, 4, "udp length")?;
        if usize::from(length) < HEADER_LEN {
            return Err(ParseError::invalid(
                "udp header",
                format!("length field {length} below minimum of 8"),
            ));
        }
        Ok((
            UdpHeader {
                src_port: wire::get_u16(buf, 0, "udp src port")?,
                dst_port: wire::get_u16(buf, 2, "udp dst port")?,
                length,
            },
            HEADER_LEN,
        ))
    }

    /// Appends the encoded header and `payload` to `out`, computing the
    /// checksum against the given IPv4 pseudo-header.
    pub fn encode_with_payload(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        wire::put_u16(out, self.src_port);
        wire::put_u16(out, self.dst_port);
        wire::put_u16(out, self.length);
        wire::put_u16(out, 0); // checksum placeholder
        out.extend_from_slice(payload);
        let ck = checksum::transport_checksum(src, dst, IpProtocol::Udp.as_u8(), &out[start..]);
        // Per RFC 768 a computed checksum of zero is transmitted as 0xffff.
        let ck = if ck == 0 { 0xffff } else { ck };
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = UdpHeader::new(5683, 5683, 4);
        let mut buf = Vec::new();
        hdr.encode_with_payload(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            b"coap",
            &mut buf,
        );
        assert_eq!(buf.len(), HEADER_LEN + 4);
        let (decoded, used) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(decoded, hdr);
        assert_eq!(decoded.length, 12);
    }

    #[test]
    fn rejects_short_length_field() {
        let mut buf = vec![0u8; 8];
        buf[5] = 7;
        assert!(UdpHeader::decode(&buf).is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(UdpHeader::decode(&[0u8; 7]).is_err());
    }
}
