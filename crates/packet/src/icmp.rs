//! ICMP header codec (RFC 792).

use crate::checksum;
use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};

/// Length of the fixed ICMP header.
pub const HEADER_LEN: usize = 8;

/// ICMP message type for echo request.
pub const TYPE_ECHO_REQUEST: u8 = 8;
/// ICMP message type for echo reply.
pub const TYPE_ECHO_REPLY: u8 = 0;
/// ICMP message type for destination unreachable.
pub const TYPE_DEST_UNREACHABLE: u8 = 3;

/// A decoded ICMP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// The "rest of header" word (identifier/sequence for echo).
    pub rest: u32,
}

impl IcmpHeader {
    /// Creates an echo-request header with the given identifier and sequence.
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        IcmpHeader {
            icmp_type: TYPE_ECHO_REQUEST,
            code: 0,
            rest: (u32::from(identifier) << 16) | u32::from(sequence),
        }
    }

    /// Decodes a header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "icmp header")?;
        Ok((
            IcmpHeader {
                icmp_type: buf[0],
                code: buf[1],
                rest: wire::get_u32(buf, 4, "icmp rest")?,
            },
            HEADER_LEN,
        ))
    }

    /// Appends the encoded header and `payload` to `out` with a correct
    /// checksum over the whole message.
    pub fn encode_with_payload(&self, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.push(self.icmp_type);
        out.push(self.code);
        wire::put_u16(out, 0); // checksum placeholder
        wire::put_u32(out, self.rest);
        out.extend_from_slice(payload);
        let ck = checksum::internet_checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_echo() {
        let hdr = IcmpHeader::echo_request(0x1234, 7);
        let mut buf = Vec::new();
        hdr.encode_with_payload(b"ping", &mut buf);
        let (decoded, used) = IcmpHeader::decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(decoded, hdr);
        assert!(checksum::verify(&buf));
    }

    #[test]
    fn rejects_truncation() {
        assert!(IcmpHeader::decode(&[8, 0, 0]).is_err());
    }
}
