//! ZWire: a synthetic non-IP binary IoT protocol carried directly over
//! Ethernet (ethertype `0x88B5`, the IEEE local-experimental value).
//!
//! ZWire stands in for the proprietary low-power mesh protocols (Z-Wave,
//! Zigbee-over-gateway framings, vendor RF bridges) that the paper's
//! "heterogeneous protocols" motivation refers to: a compact binary header
//! that shares nothing with TCP/IP, so any fixed-field (5-tuple) firewall is
//! structurally blind to it, while byte-level learned matching is not.
//!
//! Frame layout (all multi-byte fields big-endian):
//!
//! ```text
//! offset  0    1        2         3..7     7         8         9    10      10+len
//!         magic version msg_type  home_id  src_node  dst_node  seq  len     payload  xor
//! ```
//!
//! The final byte is an XOR checksum over every preceding ZWire byte.

use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First byte of every ZWire frame.
pub const MAGIC: u8 = 0x5a;
/// Protocol version emitted by this codec.
pub const VERSION: u8 = 1;
/// Fixed header length (everything before the payload).
pub const HEADER_LEN: usize = 11;

/// ZWire message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZWireType {
    /// Periodic presence beacon.
    Beacon,
    /// Sensor data report.
    Data,
    /// Actuator command.
    Command,
    /// Acknowledgment.
    Ack,
    /// Pairing/inclusion handshake.
    Pair,
    /// Any other type byte.
    Unknown(u8),
}

impl ZWireType {
    /// Decodes from the on-wire type byte.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => ZWireType::Beacon,
            2 => ZWireType::Data,
            3 => ZWireType::Command,
            4 => ZWireType::Ack,
            5 => ZWireType::Pair,
            other => ZWireType::Unknown(other),
        }
    }

    /// Encodes to the on-wire type byte.
    pub fn as_u8(&self) -> u8 {
        match self {
            ZWireType::Beacon => 1,
            ZWireType::Data => 2,
            ZWireType::Command => 3,
            ZWireType::Ack => 4,
            ZWireType::Pair => 5,
            ZWireType::Unknown(v) => *v,
        }
    }
}

impl fmt::Display for ZWireType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZWireType::Beacon => write!(f, "beacon"),
            ZWireType::Data => write!(f, "data"),
            ZWireType::Command => write!(f, "command"),
            ZWireType::Ack => write!(f, "ack"),
            ZWireType::Pair => write!(f, "pair"),
            ZWireType::Unknown(v) => write!(f, "zwire-type(0x{v:02x})"),
        }
    }
}

/// A decoded ZWire frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZWireFrame {
    /// Message type.
    pub msg_type: ZWireType,
    /// The mesh network identifier shared by paired devices.
    pub home_id: u32,
    /// Sending node id.
    pub src_node: u8,
    /// Receiving node id (`0xff` is the mesh broadcast).
    pub dst_node: u8,
    /// Per-sender sequence number.
    pub seq: u8,
    /// Application payload (at most 255 bytes).
    pub payload: Vec<u8>,
}

impl ZWireFrame {
    /// Broadcast node id.
    pub const BROADCAST_NODE: u8 = 0xff;

    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 255 bytes.
    pub fn new(
        msg_type: ZWireType,
        home_id: u32,
        src_node: u8,
        dst_node: u8,
        seq: u8,
        payload: Vec<u8>,
    ) -> Self {
        assert!(payload.len() <= 255, "zwire payload exceeds 255 bytes");
        ZWireFrame {
            msg_type,
            home_id,
            src_node,
            dst_node,
            seq,
            payload,
        }
    }

    /// Encodes the frame into a standalone byte vector (an Ethernet payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 1);
        out.push(MAGIC);
        out.push(VERSION);
        out.push(self.msg_type.as_u8());
        wire::put_u32(&mut out, self.home_id);
        out.push(self.src_node);
        out.push(self.dst_node);
        out.push(self.seq);
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.payload);
        let xor = out.iter().fold(0u8, |a, b| a ^ b);
        out.push(xor);
        out
    }

    /// Decodes a frame from the start of `buf`, returning the frame and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a wrong magic or version byte, or a
    /// checksum mismatch.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN + 1, "zwire frame")?;
        if buf[0] != MAGIC {
            return Err(ParseError::invalid(
                "zwire frame",
                format!("magic byte is 0x{:02x}", buf[0]),
            ));
        }
        if buf[1] != VERSION {
            return Err(ParseError::invalid(
                "zwire frame",
                format!("unsupported version {}", buf[1]),
            ));
        }
        let payload_len = usize::from(buf[10]);
        let total = HEADER_LEN + payload_len + 1;
        wire::require(buf, total, "zwire payload")?;
        let xor = buf[..total - 1].iter().fold(0u8, |a, b| a ^ b);
        if xor != buf[total - 1] {
            return Err(ParseError::invalid(
                "zwire frame",
                format!(
                    "checksum mismatch: computed 0x{xor:02x}, found 0x{:02x}",
                    buf[total - 1]
                ),
            ));
        }
        Ok((
            ZWireFrame {
                msg_type: ZWireType::from_u8(buf[2]),
                home_id: wire::get_u32(buf, 3, "zwire home id")?,
                src_node: buf[7],
                dst_node: buf[8],
                seq: buf[9],
                payload: buf[HEADER_LEN..HEADER_LEN + payload_len].to_vec(),
            },
            total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ZWireFrame {
        ZWireFrame::new(
            ZWireType::Data,
            0xcafe_0001,
            3,
            1,
            42,
            vec![0x10, 0x22, 0x01],
        )
    }

    #[test]
    fn round_trip() {
        let frame = sample();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 3 + 1);
        let (decoded, used) = ZWireFrame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = 0x00;
        assert!(ZWireFrame::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().encode();
        bytes[1] = 9;
        assert!(ZWireFrame::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut bytes = sample().encode();
        let idx = HEADER_LEN; // first payload byte
        bytes[idx] ^= 0xff;
        assert!(matches!(
            ZWireFrame::decode(&bytes),
            Err(ParseError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_payload_round_trip() {
        let frame = ZWireFrame::new(
            ZWireType::Beacon,
            1,
            2,
            ZWireFrame::BROADCAST_NODE,
            0,
            vec![],
        );
        let bytes = frame.encode();
        let (decoded, _) = ZWireFrame::decode(&bytes).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    #[should_panic(expected = "255 bytes")]
    fn oversized_payload_panics() {
        let _ = ZWireFrame::new(ZWireType::Data, 1, 1, 1, 0, vec![0; 256]);
    }

    #[test]
    fn type_codes_round_trip() {
        for t in [
            ZWireType::Beacon,
            ZWireType::Data,
            ZWireType::Command,
            ZWireType::Ack,
            ZWireType::Pair,
            ZWireType::Unknown(77),
        ] {
            assert_eq!(ZWireType::from_u8(t.as_u8()), t);
        }
    }
}
