//! Error types for packet parsing and trace (de)serialization.

use std::error::Error;
use std::fmt;

/// Error produced when decoding a header or frame from raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended before the header was complete.
    Truncated {
        /// What was being decoded (e.g. `"ipv4 header"`).
        what: &'static str,
        /// Bytes required to finish decoding.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The bytes were long enough but structurally invalid.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Human-readable reason for the failure.
        reason: String,
    },
}

impl ParseError {
    /// Convenience constructor for [`ParseError::Invalid`].
    pub fn invalid(what: &'static str, reason: impl Into<String>) -> Self {
        ParseError::Invalid {
            what,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`ParseError::Truncated`].
    pub fn truncated(what: &'static str, needed: usize, available: usize) -> Self {
        ParseError::Truncated {
            what,
            needed,
            available,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            ParseError::Invalid { what, reason } => write!(f, "invalid {what}: {reason}"),
        }
    }
}

impl Error for ParseError {}

/// Error produced when reading or writing a [`Trace`](crate::trace::Trace) file.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The file did not carry the expected magic or version.
    Format(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = ParseError::truncated("tcp header", 20, 7);
        assert_eq!(
            e.to_string(),
            "truncated tcp header: needed 20 bytes, only 7 available"
        );
    }

    #[test]
    fn display_invalid() {
        let e = ParseError::invalid("ipv4 header", "version is 7");
        assert_eq!(e.to_string(), "invalid ipv4 header: version is 7");
    }

    #[test]
    fn trace_io_error_from_io() {
        let io = std::io::Error::other("boom");
        let e = TraceIoError::from(io);
        assert!(e.to_string().contains("boom"));
    }
}
