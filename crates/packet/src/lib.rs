//! # p4guard-packet
//!
//! Byte-level packet model for the `p4guard` reproduction of *"A Learning
//! Approach with Programmable Data Plane towards IoT Security"* (ICDCS
//! 2020).
//!
//! This crate is the lowest substrate of the workspace: wire-accurate codecs
//! for the heterogeneous protocol mix the paper motivates (TCP/IP, MQTT,
//! CoAP, DNS, Modbus/TCP, and the non-IP [`zwire`] protocol), a
//! [`packet::PacketBuilder`] that assembles checksummed frames, a
//! [`fields`] registry that maps raw byte offsets back to header-field
//! names, and the labelled [`trace::Trace`] dataset container.
//!
//! # Examples
//!
//! Build an MQTT PUBLISH frame and parse it back:
//!
//! ```
//! use p4guard_packet::addr::MacAddr;
//! use p4guard_packet::mqtt::MqttPacket;
//! use p4guard_packet::packet::{parse, PacketBuilder, ProtocolTag};
//! use p4guard_packet::tcp::{TcpFlags, TcpHeader};
//! use std::net::Ipv4Addr;
//!
//! let builder = PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2));
//! let publish = MqttPacket::Publish {
//!     topic: "home/temp".into(),
//!     packet_id: None,
//!     qos: 0,
//!     retain: false,
//!     payload: b"21.5".to_vec(),
//! };
//! let frame = builder.tcp(
//!     Ipv4Addr::new(192, 168, 1, 10),
//!     Ipv4Addr::new(192, 168, 1, 1),
//!     TcpHeader::new(49152, 1883, 1, 1, TcpFlags::PSH | TcpFlags::ACK),
//!     &publish.encode(),
//! );
//! let parsed = parse(&frame).expect("frame is well formed");
//! assert_eq!(parsed.protocol(), ProtocolTag::Mqtt);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod arena;
pub mod arp;
pub mod checksum;
pub mod coap;
pub mod dns;
pub mod error;
pub mod ethernet;
pub mod fields;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod modbus;
pub mod mqtt;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod trace;
pub mod udp;
pub mod wire;
pub mod zwire;

pub use addr::MacAddr;
pub use arena::{ArenaStats, FrameArena, FrameBatch, FrameSpan};
pub use error::ParseError;
pub use packet::{parse, Application, PacketBuilder, ParsedPacket, ProtocolTag, Transport};
pub use trace::{AttackFamily, Label, Record, Trace, TraceBatchReader, TraceReader};
