//! TCP header codec (RFC 793), options-free form on encode.

use crate::checksum;
use crate::error::ParseError;
use crate::ipv4::IpProtocol;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Length of an options-free TCP header.
pub const HEADER_LEN: usize = 20;

/// TCP control flags as a typed bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Returns `true` if every flag in `other` is set in `self`.
    pub fn contains(&self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no flags are set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A decoded TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Header length in bytes (data offset × 4); preserved from the wire on
    /// decode and honoured on encode (option bytes re-encode as zero
    /// padding).
    pub header_len: u8,
}

impl TcpHeader {
    /// Creates an options-free header with a default window.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0xffff,
            urgent: 0,
            header_len: HEADER_LEN as u8,
        }
    }

    /// Decodes a header from the start of `buf`, returning the header and the
    /// number of bytes consumed (the data-offset-derived header length).
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a data offset below 5 words.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "tcp header")?;
        let data_offset = buf[12] >> 4;
        if data_offset < 5 {
            return Err(ParseError::invalid(
                "tcp header",
                format!("data offset {data_offset} below minimum of 5"),
            ));
        }
        let header_len = usize::from(data_offset) * 4;
        wire::require(buf, header_len, "tcp header with options")?;
        Ok((
            TcpHeader {
                src_port: wire::get_u16(buf, 0, "tcp src port")?,
                dst_port: wire::get_u16(buf, 2, "tcp dst port")?,
                seq: wire::get_u32(buf, 4, "tcp seq")?,
                ack: wire::get_u32(buf, 8, "tcp ack")?,
                flags: TcpFlags(buf[13] & 0x3f),
                window: wire::get_u16(buf, 14, "tcp window")?,
                urgent: wire::get_u16(buf, 18, "tcp urgent")?,
                header_len: header_len as u8,
            },
            header_len,
        ))
    }

    /// Appends the encoded header and `payload` to `out`, computing the
    /// checksum against the given IPv4 pseudo-header.
    pub fn encode_with_payload(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        wire::put_u16(out, self.src_port);
        wire::put_u16(out, self.dst_port);
        wire::put_u32(out, self.seq);
        wire::put_u32(out, self.ack);
        // Honour the decoded data offset: option *bytes* are not retained
        // by this view, so they re-encode as zero padding, but the offset
        // (and therefore the struct round-trip) stays faithful.
        let header_len = usize::from(self.header_len).clamp(HEADER_LEN, 60) & !3;
        out.push((((header_len / 4) as u8) << 4) & 0xf0);
        out.push(self.flags.0);
        wire::put_u16(out, self.window);
        wire::put_u16(out, 0); // checksum placeholder
        wire::put_u16(out, self.urgent);
        out.resize(start + header_len, 0); // zeroed option bytes
        out.extend_from_slice(payload);
        let ck = checksum::transport_checksum(src, dst, IpProtocol::Tcp.as_u8(), &out[start..]);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn round_trip_with_payload() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(49152, 1883, 7, 11, TcpFlags::SYN | TcpFlags::ACK);
        let mut buf = Vec::new();
        hdr.encode_with_payload(src, dst, b"hello", &mut buf);
        assert_eq!(buf.len(), HEADER_LEN + 5);
        let (decoded, used) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(decoded, hdr);
        assert_eq!(&buf[used..], b"hello");
    }

    #[test]
    fn checksum_covers_payload() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(1, 2, 0, 0, TcpFlags::ACK);
        let mut buf = Vec::new();
        hdr.encode_with_payload(src, dst, b"data", &mut buf);
        // Recompute over the encoded segment in place, skipping the
        // populated checksum field instead of cloning and zeroing it.
        let ck = checksum::transport_checksum_excluding(src, dst, 6, &buf, 16);
        assert_eq!(&buf[16..18], &ck.to_be_bytes());
    }

    #[test]
    fn options_header_round_trips_with_faithful_offset() {
        // Conformance-fuzzer repro: encode used to hard-code data offset 5,
        // so a header decoded from an options-bearing segment failed the
        // decode → encode → decode fixpoint (header_len 24 became 20).
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        TcpHeader::new(49152, 502, 3, 4, TcpFlags::PSH).encode_with_payload(
            src,
            dst,
            &[],
            &mut buf,
        );
        buf[12] = 0x60; // data offset 6
        buf.extend_from_slice(&[2, 4, 5, 0xb4]); // MSS option
        let (decoded, used) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(used, 24);
        assert_eq!(decoded.header_len, 24);
        let mut re = Vec::new();
        decoded.encode_with_payload(src, dst, b"xy", &mut re);
        assert_eq!(re.len(), 24 + 2, "encode must honour the decoded offset");
        let (again, used_again) = TcpHeader::decode(&re).unwrap();
        assert_eq!(used_again, 24);
        assert_eq!(again, decoded);
        assert_eq!(&re[used_again..], b"xy");
    }

    #[test]
    fn flags_display_and_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(!f.contains(TcpFlags::FIN));
        assert_eq!(f.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
        assert!(TcpFlags::default().is_empty());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(1, 2, 0, 0, TcpFlags::SYN);
        let mut buf = Vec::new();
        hdr.encode_with_payload(src, dst, &[], &mut buf);
        buf[12] = 0x40;
        assert!(TcpHeader::decode(&buf).is_err());
    }

    #[test]
    fn truncation_is_reported() {
        assert!(matches!(
            TcpHeader::decode(&[0u8; 10]),
            Err(ParseError::Truncated { .. })
        ));
    }
}
