//! Ethernet II framing with optional 802.1Q VLAN tag.

use crate::addr::MacAddr;
use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of an untagged Ethernet II header.
pub const HEADER_LEN: usize = 14;
/// Length of an 802.1Q tag.
pub const VLAN_TAG_LEN: usize = 4;

/// Values of the Ethernet `ethertype` field understood by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    Arp,
    /// IPv6, `0x86DD`.
    Ipv6,
    /// 802.1Q VLAN tag, `0x8100`.
    Vlan,
    /// The ZWire experimental IoT protocol, `0x88B5` (IEEE local experimental).
    ZWire,
    /// Any other value.
    Unknown(u16),
}

impl EtherType {
    /// Decodes from the on-wire 16-bit value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            0x8100 => EtherType::Vlan,
            0x88b5 => EtherType::ZWire,
            other => EtherType::Unknown(other),
        }
    }

    /// Encodes to the on-wire 16-bit value.
    pub fn as_u16(&self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Vlan => 0x8100,
            EtherType::ZWire => 0x88b5,
            EtherType::Unknown(v) => *v,
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "ipv4"),
            EtherType::Arp => write!(f, "arp"),
            EtherType::Ipv6 => write!(f, "ipv6"),
            EtherType::Vlan => write!(f, "vlan"),
            EtherType::ZWire => write!(f, "zwire"),
            EtherType::Unknown(v) => write!(f, "ethertype(0x{v:04x})"),
        }
    }
}

/// An 802.1Q VLAN tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VlanTag {
    /// Priority code point (3 bits).
    pub pcp: u8,
    /// Drop eligible indicator.
    pub dei: bool,
    /// VLAN identifier (12 bits).
    pub vid: u16,
}

impl VlanTag {
    /// Creates a tag with the given VLAN id and zero priority.
    ///
    /// # Panics
    ///
    /// Panics if `vid` does not fit in 12 bits.
    pub fn new(vid: u16) -> Self {
        assert!(vid < 4096, "VLAN id must fit in 12 bits");
        VlanTag {
            pcp: 0,
            dei: false,
            vid,
        }
    }

    fn tci(&self) -> u16 {
        (u16::from(self.pcp) << 13) | (u16::from(self.dei) << 12) | (self.vid & 0x0fff)
    }

    fn from_tci(tci: u16) -> Self {
        VlanTag {
            pcp: (tci >> 13) as u8,
            dei: tci & 0x1000 != 0,
            vid: tci & 0x0fff,
        }
    }
}

/// A decoded Ethernet II header, including an optional VLAN tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Optional 802.1Q tag.
    pub vlan: Option<VlanTag>,
    /// The ethertype of the encapsulated payload (after any VLAN tag).
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Creates an untagged header.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Self {
        EthernetHeader {
            dst,
            src,
            vlan: None,
            ethertype,
        }
    }

    /// Number of bytes this header occupies on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + if self.vlan.is_some() { VLAN_TAG_LEN } else { 0 }
    }

    /// Decodes a header from the start of `buf`, returning the header and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if `buf` is too short.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "ethernet header")?;
        let dst = MacAddr(wire::get_array(buf, 0, "ethernet dst")?);
        let src = MacAddr(wire::get_array(buf, 6, "ethernet src")?);
        let first_type = wire::get_u16(buf, 12, "ethertype")?;
        if EtherType::from_u16(first_type) == EtherType::Vlan {
            let tci = wire::get_u16(buf, 14, "vlan tci")?;
            let inner = wire::get_u16(buf, 16, "vlan ethertype")?;
            Ok((
                EthernetHeader {
                    dst,
                    src,
                    vlan: Some(VlanTag::from_tci(tci)),
                    ethertype: EtherType::from_u16(inner),
                },
                HEADER_LEN + VLAN_TAG_LEN,
            ))
        } else {
            Ok((
                EthernetHeader {
                    dst,
                    src,
                    vlan: None,
                    ethertype: EtherType::from_u16(first_type),
                },
                HEADER_LEN,
            ))
        }
    }

    /// Appends the encoded header to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        if let Some(tag) = self.vlan {
            wire::put_u16(out, EtherType::Vlan.as_u16());
            wire::put_u16(out, tag.tci());
        }
        wire::put_u16(out, self.ethertype.as_u16());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader::new(MacAddr::from_id(1), MacAddr::from_id(2), EtherType::Ipv4)
    }

    #[test]
    fn round_trip_untagged() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (decoded, used) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn round_trip_vlan_tagged() {
        let mut hdr = sample();
        hdr.vlan = Some(VlanTag {
            pcp: 5,
            dei: true,
            vid: 100,
        });
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN + VLAN_TAG_LEN);
        let (decoded, used) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(used, HEADER_LEN + VLAN_TAG_LEN);
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert!(EthernetHeader::decode(&[0u8; 13]).is_err());
    }

    #[test]
    fn ethertype_codes() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Vlan,
            EtherType::ZWire,
            EtherType::Unknown(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(et.as_u16()), et);
        }
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn vlan_id_overflow_panics() {
        let _ = VlanTag::new(4096);
    }
}
