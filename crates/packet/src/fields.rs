//! Byte-offset ↔ header-field mapping.
//!
//! Stage 1 of the pipeline selects *byte positions* in the raw frame with no
//! protocol knowledge. This module recovers the human interpretation of a
//! selected position — `"tcp.dst_port[1]"`, `"zwire.msg_type"` — which is
//! what the paper reports when arguing the learned selection is meaningful,
//! and what lets operators audit generated rules.

use crate::ethernet::EtherType;
use crate::ipv4::IpProtocol;
use crate::packet::ParsedPacket;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A named span of bytes within a specific frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpan {
    /// Byte range within the frame.
    pub range: Range<usize>,
    /// Dotted field name, e.g. `"ipv4.ttl"`.
    pub name: &'static str,
}

impl FieldSpan {
    fn new(start: usize, len: usize, name: &'static str) -> Self {
        FieldSpan {
            range: start..start + len,
            name,
        }
    }
}

/// Computes the field map of a parsed frame: every known header byte span
/// with its name, in frame order. Application payloads beyond the modelled
/// headers are not named.
pub fn field_map(packet: &ParsedPacket) -> Vec<FieldSpan> {
    let mut spans = Vec::with_capacity(24);
    spans.push(FieldSpan::new(0, 6, "eth.dst"));
    spans.push(FieldSpan::new(6, 6, "eth.src"));
    let mut at = 12;
    if packet.ethernet.vlan.is_some() {
        spans.push(FieldSpan::new(at, 2, "eth.tpid"));
        spans.push(FieldSpan::new(at + 2, 2, "eth.vlan_tci"));
        at += 4;
    }
    spans.push(FieldSpan::new(at, 2, "eth.ethertype"));
    at += 2;

    match packet.ethernet.ethertype {
        EtherType::Arp if packet.arp.is_some() => {
            for (off, len, name) in [
                (0, 2, "arp.htype"),
                (2, 2, "arp.ptype"),
                (4, 1, "arp.hlen"),
                (5, 1, "arp.plen"),
                (6, 2, "arp.oper"),
                (8, 6, "arp.sha"),
                (14, 4, "arp.spa"),
                (18, 6, "arp.tha"),
                (24, 4, "arp.tpa"),
            ] {
                spans.push(FieldSpan::new(at + off, len, name));
            }
        }
        EtherType::ZWire if packet.zwire.is_some() => {
            for (off, len, name) in [
                (0, 1, "zwire.magic"),
                (1, 1, "zwire.version"),
                (2, 1, "zwire.msg_type"),
                (3, 4, "zwire.home_id"),
                (7, 1, "zwire.src_node"),
                (8, 1, "zwire.dst_node"),
                (9, 1, "zwire.seq"),
                (10, 1, "zwire.len"),
            ] {
                spans.push(FieldSpan::new(at + off, len, name));
            }
        }
        EtherType::Ipv4 => {
            if let Some(ip) = &packet.ipv4 {
                for (off, len, name) in [
                    (0, 1, "ipv4.ver_ihl"),
                    (1, 1, "ipv4.dscp_ecn"),
                    (2, 2, "ipv4.total_len"),
                    (4, 2, "ipv4.identification"),
                    (6, 2, "ipv4.flags_frag"),
                    (8, 1, "ipv4.ttl"),
                    (9, 1, "ipv4.protocol"),
                    (10, 2, "ipv4.checksum"),
                    (12, 4, "ipv4.src"),
                    (16, 4, "ipv4.dst"),
                ] {
                    spans.push(FieldSpan::new(at + off, len, name));
                }
                let l4 = at + usize::from(ip.header_len);
                match ip.protocol {
                    IpProtocol::Tcp => {
                        for (off, len, name) in [
                            (0, 2, "tcp.src_port"),
                            (2, 2, "tcp.dst_port"),
                            (4, 4, "tcp.seq"),
                            (8, 4, "tcp.ack"),
                            (12, 1, "tcp.data_offset"),
                            (13, 1, "tcp.flags"),
                            (14, 2, "tcp.window"),
                            (16, 2, "tcp.checksum"),
                            (18, 2, "tcp.urgent"),
                        ] {
                            spans.push(FieldSpan::new(l4 + off, len, name));
                        }
                        push_app_spans(&mut spans, packet, l4 + 20);
                    }
                    IpProtocol::Udp => {
                        for (off, len, name) in [
                            (0, 2, "udp.src_port"),
                            (2, 2, "udp.dst_port"),
                            (4, 2, "udp.length"),
                            (6, 2, "udp.checksum"),
                        ] {
                            spans.push(FieldSpan::new(l4 + off, len, name));
                        }
                        push_app_spans(&mut spans, packet, l4 + 8);
                    }
                    IpProtocol::Icmp => {
                        for (off, len, name) in [
                            (0, 1, "icmp.type"),
                            (1, 1, "icmp.code"),
                            (2, 2, "icmp.checksum"),
                            (4, 4, "icmp.rest"),
                        ] {
                            spans.push(FieldSpan::new(l4 + off, len, name));
                        }
                    }
                    IpProtocol::Unknown(_) => {}
                }
            }
        }
        _ => {}
    }
    spans
}

fn push_app_spans(spans: &mut Vec<FieldSpan>, packet: &ParsedPacket, app_at: usize) {
    use crate::packet::Application;
    match &packet.app {
        Some(Application::Mqtt(_)) => {
            spans.push(FieldSpan::new(app_at, 1, "mqtt.type_flags"));
            spans.push(FieldSpan::new(app_at + 1, 1, "mqtt.remaining_len"));
        }
        Some(Application::Coap(_)) => {
            spans.push(FieldSpan::new(app_at, 1, "coap.ver_type_tkl"));
            spans.push(FieldSpan::new(app_at + 1, 1, "coap.code"));
            spans.push(FieldSpan::new(app_at + 2, 2, "coap.message_id"));
        }
        Some(Application::Dns(_)) => {
            spans.push(FieldSpan::new(app_at, 2, "dns.id"));
            spans.push(FieldSpan::new(app_at + 2, 2, "dns.flags"));
            spans.push(FieldSpan::new(app_at + 4, 2, "dns.qdcount"));
            spans.push(FieldSpan::new(app_at + 6, 2, "dns.ancount"));
            spans.push(FieldSpan::new(app_at + 12, 1, "dns.qname_first_label_len"));
        }
        Some(Application::Modbus(_)) => {
            spans.push(FieldSpan::new(app_at, 2, "modbus.transaction_id"));
            spans.push(FieldSpan::new(app_at + 2, 2, "modbus.protocol_id"));
            spans.push(FieldSpan::new(app_at + 4, 2, "modbus.length"));
            spans.push(FieldSpan::new(app_at + 6, 1, "modbus.unit_id"));
            spans.push(FieldSpan::new(app_at + 7, 1, "modbus.function"));
        }
        None => {}
    }
}

/// Describes a single byte offset of a parsed frame, e.g. `"tcp.dst_port[1]"`
/// for the low byte of the destination port, or `"payload+3"` /
/// `"offset 61"` for unnamed positions.
pub fn describe_offset(packet: &ParsedPacket, offset: usize) -> String {
    for span in field_map(packet) {
        if span.range.contains(&offset) {
            return if span.range.len() == 1 {
                span.name.to_owned()
            } else {
                format!("{}[{}]", span.name, offset - span.range.start)
            };
        }
    }
    if offset >= packet.payload_offset {
        format!("payload+{}", offset - packet.payload_offset)
    } else {
        format!("offset {offset}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::packet::{parse, PacketBuilder};
    use crate::tcp::{TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;

    fn tcp_packet() -> ParsedPacket {
        let b = PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2));
        let frame = b.tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(40000, 1883, 0, 0, TcpFlags::SYN),
            b"",
        );
        parse(&frame).unwrap()
    }

    #[test]
    fn tcp_offsets_are_named() {
        let p = tcp_packet();
        assert_eq!(describe_offset(&p, 12), "eth.ethertype[0]");
        assert_eq!(describe_offset(&p, 22), "ipv4.ttl");
        assert_eq!(describe_offset(&p, 23), "ipv4.protocol");
        assert_eq!(describe_offset(&p, 36), "tcp.dst_port[0]");
        assert_eq!(describe_offset(&p, 37), "tcp.dst_port[1]");
        assert_eq!(describe_offset(&p, 47), "tcp.flags");
    }

    #[test]
    fn spans_are_ordered_and_non_overlapping() {
        let p = tcp_packet();
        let spans = field_map(&p);
        for pair in spans.windows(2) {
            assert!(pair[0].range.end <= pair[1].range.start);
        }
    }

    #[test]
    fn zwire_offsets_are_named() {
        let b = PacketBuilder::new(MacAddr::from_id(1), MacAddr::from_id(2));
        let frame = b.zwire(&crate::zwire::ZWireFrame::new(
            crate::zwire::ZWireType::Command,
            7,
            1,
            2,
            0,
            vec![9],
        ));
        let p = parse(&frame).unwrap();
        assert_eq!(describe_offset(&p, 16), "zwire.msg_type");
        assert_eq!(describe_offset(&p, 21), "zwire.src_node");
    }

    #[test]
    fn unnamed_offsets_fall_back() {
        let p = tcp_packet();
        // Offset far past the frame's named spans.
        let s = describe_offset(&p, 54);
        assert!(s.starts_with("payload+"), "got {s}");
    }
}
