//! IPv6 fixed-header codec (RFC 8200). Extension headers are not modelled;
//! the next-header field is exposed verbatim.

use crate::error::ParseError;
use crate::ipv4::IpProtocol;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

/// A decoded IPv6 fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length (everything after the fixed header).
    pub payload_len: u16,
    /// Next-header protocol number (same numbering space as IPv4).
    pub next_header: IpProtocol,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Creates a header with defaults (`hop_limit = 64`, zero traffic
    /// class and flow label).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: IpProtocol, payload_len: usize) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: payload_len as u16,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Decodes a header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or a version other than 6.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, HEADER_LEN, "ipv6 header")?;
        let first = wire::get_u32(buf, 0, "ipv6 version/class/flow")?;
        let version = (first >> 28) as u8;
        if version != 6 {
            return Err(ParseError::invalid(
                "ipv6 header",
                format!("version is {version}"),
            ));
        }
        Ok((
            Ipv6Header {
                traffic_class: ((first >> 20) & 0xff) as u8,
                flow_label: first & 0x000f_ffff,
                payload_len: wire::get_u16(buf, 4, "ipv6 payload length")?,
                next_header: IpProtocol::from_u8(buf[6]),
                hop_limit: buf[7],
                src: Ipv6Addr::from(wire::get_array::<16>(buf, 8, "ipv6 src")?),
                dst: Ipv6Addr::from(wire::get_array::<16>(buf, 24, "ipv6 dst")?),
            },
            HEADER_LEN,
        ))
    }

    /// Appends the encoded header to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let first =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0x000f_ffff);
        wire::put_u32(out, first);
        wire::put_u16(out, self.payload_len);
        out.push(self.next_header.as_u8());
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        let mut h = Ipv6Header::new(
            "fd00::10".parse().unwrap(),
            "fd00::1".parse().unwrap(),
            IpProtocol::Udp,
            24,
        );
        h.traffic_class = 0x2e;
        h.flow_label = 0xabcde;
        h
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (decoded, used) = Ipv6Header::decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[0] = 0x45;
        assert!(Ipv6Header::decode(&buf).is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(Ipv6Header::decode(&[0u8; 39]).is_err());
    }

    #[test]
    fn flow_label_is_masked_to_20_bits() {
        let mut h = sample();
        h.flow_label = 0xfff_ffff; // over-wide
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (decoded, _) = Ipv6Header::decode(&buf).unwrap();
        assert_eq!(decoded.flow_label, 0xf_ffff);
    }
}
