//! Modbus/TCP codec (MBAP header + PDU), the industrial-IoT protocol in the
//! evaluation mix.

use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default Modbus/TCP port.
pub const PORT: u16 = 502;

/// Length of the MBAP header.
pub const MBAP_LEN: usize = 7;

/// Modbus function codes understood by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModbusFunction {
    /// `0x01` Read Coils.
    ReadCoils,
    /// `0x03` Read Holding Registers.
    ReadHoldingRegisters,
    /// `0x05` Write Single Coil.
    WriteSingleCoil,
    /// `0x06` Write Single Register.
    WriteSingleRegister,
    /// `0x10` Write Multiple Registers.
    WriteMultipleRegisters,
    /// `0x2B` Encapsulated Interface Transport (device identification).
    DeviceIdentification,
    /// Any other function code (including exception responses with the high
    /// bit set).
    Other(u8),
}

impl ModbusFunction {
    /// Decodes from the on-wire function code.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0x01 => ModbusFunction::ReadCoils,
            0x03 => ModbusFunction::ReadHoldingRegisters,
            0x05 => ModbusFunction::WriteSingleCoil,
            0x06 => ModbusFunction::WriteSingleRegister,
            0x10 => ModbusFunction::WriteMultipleRegisters,
            0x2b => ModbusFunction::DeviceIdentification,
            other => ModbusFunction::Other(other),
        }
    }

    /// Encodes to the on-wire function code.
    pub fn as_u8(&self) -> u8 {
        match self {
            ModbusFunction::ReadCoils => 0x01,
            ModbusFunction::ReadHoldingRegisters => 0x03,
            ModbusFunction::WriteSingleCoil => 0x05,
            ModbusFunction::WriteSingleRegister => 0x06,
            ModbusFunction::WriteMultipleRegisters => 0x10,
            ModbusFunction::DeviceIdentification => 0x2b,
            ModbusFunction::Other(v) => *v,
        }
    }

    /// Returns `true` for function codes that mutate device state.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ModbusFunction::WriteSingleCoil
                | ModbusFunction::WriteSingleRegister
                | ModbusFunction::WriteMultipleRegisters
        )
    }
}

impl fmt::Display for ModbusFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModbusFunction::ReadCoils => write!(f, "read-coils"),
            ModbusFunction::ReadHoldingRegisters => write!(f, "read-holding-registers"),
            ModbusFunction::WriteSingleCoil => write!(f, "write-single-coil"),
            ModbusFunction::WriteSingleRegister => write!(f, "write-single-register"),
            ModbusFunction::WriteMultipleRegisters => write!(f, "write-multiple-registers"),
            ModbusFunction::DeviceIdentification => write!(f, "device-identification"),
            ModbusFunction::Other(v) => write!(f, "function(0x{v:02x})"),
        }
    }
}

/// A decoded Modbus/TCP application data unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModbusAdu {
    /// MBAP transaction identifier.
    pub transaction_id: u16,
    /// MBAP unit identifier (slave address).
    pub unit_id: u8,
    /// PDU function code.
    pub function: ModbusFunction,
    /// PDU data following the function code.
    pub data: Vec<u8>,
}

impl ModbusAdu {
    /// Creates a Read Holding Registers request for `count` registers
    /// starting at `address`.
    pub fn read_holding_registers(
        transaction_id: u16,
        unit_id: u8,
        address: u16,
        count: u16,
    ) -> Self {
        let mut data = Vec::with_capacity(4);
        wire::put_u16(&mut data, address);
        wire::put_u16(&mut data, count);
        ModbusAdu {
            transaction_id,
            unit_id,
            function: ModbusFunction::ReadHoldingRegisters,
            data,
        }
    }

    /// Creates a Write Single Coil request.
    pub fn write_single_coil(transaction_id: u16, unit_id: u8, address: u16, on: bool) -> Self {
        let mut data = Vec::with_capacity(4);
        wire::put_u16(&mut data, address);
        wire::put_u16(&mut data, if on { 0xff00 } else { 0x0000 });
        ModbusAdu {
            transaction_id,
            unit_id,
            function: ModbusFunction::WriteSingleCoil,
            data,
        }
    }

    /// Encodes the ADU into a standalone byte vector (a TCP payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MBAP_LEN + 1 + self.data.len());
        wire::put_u16(&mut out, self.transaction_id);
        wire::put_u16(&mut out, 0); // protocol id
        wire::put_u16(&mut out, (2 + self.data.len()) as u16); // unit + fc + data
        out.push(self.unit_id);
        out.push(self.function.as_u8());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decodes an ADU from the start of `buf`, returning the ADU and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a nonzero protocol id, or a length
    /// field that does not cover the unit id and function code.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, MBAP_LEN + 1, "modbus adu")?;
        let transaction_id = wire::get_u16(buf, 0, "modbus transaction id")?;
        let protocol_id = wire::get_u16(buf, 2, "modbus protocol id")?;
        if protocol_id != 0 {
            return Err(ParseError::invalid(
                "modbus adu",
                format!("protocol id is {protocol_id}, expected 0"),
            ));
        }
        let length = usize::from(wire::get_u16(buf, 4, "modbus length")?);
        if length < 2 {
            return Err(ParseError::invalid(
                "modbus adu",
                format!("length field {length} below minimum of 2"),
            ));
        }
        let total = 6 + length;
        wire::require(buf, total, "modbus pdu")?;
        Ok((
            ModbusAdu {
                transaction_id,
                unit_id: buf[6],
                function: ModbusFunction::from_u8(buf[7]),
                data: buf[8..total].to_vec(),
            },
            total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_read_request() {
        let adu = ModbusAdu::read_holding_registers(42, 1, 0x0010, 4);
        let bytes = adu.encode();
        let (decoded, used) = ModbusAdu::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, adu);
    }

    #[test]
    fn round_trip_write_coil() {
        let adu = ModbusAdu::write_single_coil(7, 3, 0x0002, true);
        let bytes = adu.encode();
        let (decoded, _) = ModbusAdu::decode(&bytes).unwrap();
        assert_eq!(decoded, adu);
        assert!(decoded.function.is_write());
        assert_eq!(decoded.data[2..4], [0xff, 0x00]);
    }

    #[test]
    fn rejects_nonzero_protocol_id() {
        let mut bytes = ModbusAdu::read_holding_registers(1, 1, 0, 1).encode();
        bytes[3] = 1;
        assert!(ModbusAdu::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_short_length_field() {
        let mut bytes = ModbusAdu::read_holding_registers(1, 1, 0, 1).encode();
        bytes[5] = 1;
        assert!(ModbusAdu::decode(&bytes).is_err());
    }

    #[test]
    fn function_codes_round_trip() {
        for fc in [
            ModbusFunction::ReadCoils,
            ModbusFunction::ReadHoldingRegisters,
            ModbusFunction::WriteSingleCoil,
            ModbusFunction::WriteSingleRegister,
            ModbusFunction::WriteMultipleRegisters,
            ModbusFunction::DeviceIdentification,
            ModbusFunction::Other(0x83),
        ] {
            assert_eq!(ModbusFunction::from_u8(fc.as_u8()), fc);
        }
    }

    #[test]
    fn reads_are_not_writes() {
        assert!(!ModbusFunction::ReadCoils.is_write());
        assert!(ModbusFunction::WriteMultipleRegisters.is_write());
    }
}
