//! Labelled packet traces: the dataset format consumed by the learning
//! pipeline and produced by the traffic simulator.
//!
//! A trace is a time-ordered sequence of raw frames, each carrying a ground-
//! truth label. Traces serialize to a compact binary file format (magic
//! `P4GT`) so generated datasets can be saved and reloaded deterministically.

use crate::arena::{FrameArena, FrameBatch};
use crate::error::TraceIoError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// The attack families the dataset format can label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackFamily {
    /// Mirai-style telnet scanning of the address space.
    MiraiScan,
    /// Credential brute forcing against device services.
    BruteForce,
    /// TCP SYN flood.
    SynFlood,
    /// UDP flood.
    UdpFlood,
    /// MQTT CONNECT flood against the broker.
    MqttFlood,
    /// CoAP amplification with spoofed sources.
    CoapAmplification,
    /// DNS tunnelling exfiltration.
    DnsTunnel,
    /// Malicious Modbus writes to industrial endpoints.
    ModbusAbuse,
    /// Bulk data exfiltration over ZWire.
    ZWireHijack,
}

impl AttackFamily {
    /// All families, in display order.
    pub const ALL: [AttackFamily; 9] = [
        AttackFamily::MiraiScan,
        AttackFamily::BruteForce,
        AttackFamily::SynFlood,
        AttackFamily::UdpFlood,
        AttackFamily::MqttFlood,
        AttackFamily::CoapAmplification,
        AttackFamily::DnsTunnel,
        AttackFamily::ModbusAbuse,
        AttackFamily::ZWireHijack,
    ];

    /// A stable one-byte code used by the trace file format.
    pub fn code(&self) -> u8 {
        match self {
            AttackFamily::MiraiScan => 1,
            AttackFamily::BruteForce => 2,
            AttackFamily::SynFlood => 3,
            AttackFamily::UdpFlood => 4,
            AttackFamily::MqttFlood => 5,
            AttackFamily::CoapAmplification => 6,
            AttackFamily::DnsTunnel => 7,
            AttackFamily::ModbusAbuse => 8,
            AttackFamily::ZWireHijack => 9,
        }
    }

    /// Inverse of [`AttackFamily::code`].
    pub fn from_code(code: u8) -> Option<AttackFamily> {
        Self::ALL.iter().copied().find(|f| f.code() == code)
    }
}

impl fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackFamily::MiraiScan => "mirai-scan",
            AttackFamily::BruteForce => "brute-force",
            AttackFamily::SynFlood => "syn-flood",
            AttackFamily::UdpFlood => "udp-flood",
            AttackFamily::MqttFlood => "mqtt-flood",
            AttackFamily::CoapAmplification => "coap-amplification",
            AttackFamily::DnsTunnel => "dns-tunnel",
            AttackFamily::ModbusAbuse => "modbus-abuse",
            AttackFamily::ZWireHijack => "zwire-hijack",
        };
        write!(f, "{s}")
    }
}

/// Ground-truth label of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Normal device traffic.
    Benign,
    /// Attack traffic of the given family.
    Attack(AttackFamily),
}

impl Label {
    /// Returns `true` for attack records.
    pub fn is_attack(&self) -> bool {
        matches!(self, Label::Attack(_))
    }

    /// Returns the attack family, if any.
    pub fn family(&self) -> Option<AttackFamily> {
        match self {
            Label::Benign => None,
            Label::Attack(f) => Some(*f),
        }
    }

    /// The binary class used by classifiers: 0 = benign, 1 = attack.
    pub fn class(&self) -> usize {
        usize::from(self.is_attack())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Benign => write!(f, "benign"),
            Label::Attack(a) => write!(f, "attack({a})"),
        }
    }
}

/// One labelled frame in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Capture timestamp in microseconds from the start of the scenario.
    pub timestamp_us: u64,
    /// Raw Ethernet frame.
    pub frame: Bytes,
    /// Ground-truth label.
    pub label: Label,
    /// Opaque flow identifier assigned by the generator; records of the
    /// same logical flow share it.
    pub flow_id: u64,
}

/// A time-ordered sequence of labelled frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<Record>,
}

const MAGIC: &[u8; 4] = b"P4GT";
const FORMAT_VERSION: u8 = 1;

/// Upper bound on a single record's frame length. The length prefix is an
/// untrusted 32-bit field; without a cap, a corrupt prefix makes the reader
/// preallocate up to 4 GiB before the truncation is even noticed. Jumbo
/// Ethernet frames top out under 10 KiB, so 16 MiB is generous headroom.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record. Records may be pushed out of order; call
    /// [`Trace::sort_by_time`] before handing the trace to consumers that
    /// assume arrival order.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records in storage order.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Borrows the records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Stably sorts records by timestamp.
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.timestamp_us);
    }

    /// Number of attack-labelled records.
    pub fn attack_count(&self) -> usize {
        self.records.iter().filter(|r| r.label.is_attack()).count()
    }

    /// Splits into (first, second) with `fraction` of records in the first
    /// part, preserving order. `fraction` is clamped to `[0, 1]`.
    pub fn split_at_fraction(&self, fraction: f64) -> (Trace, Trace) {
        let fraction = fraction.clamp(0.0, 1.0);
        let cut = (self.records.len() as f64 * fraction).round() as usize;
        let cut = cut.min(self.records.len());
        (
            Trace {
                records: self.records[..cut].to_vec(),
            },
            Trace {
                records: self.records[cut..].to_vec(),
            },
        )
    }

    /// Writes the trace to `writer` in the `P4GT` binary format.
    ///
    /// # Errors
    ///
    /// Returns an error when the underlying writer fails.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<(), TraceIoError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&[FORMAT_VERSION])?;
        writer.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            writer.write_all(&r.timestamp_us.to_le_bytes())?;
            writer.write_all(&r.flow_id.to_le_bytes())?;
            let label_code = match r.label {
                Label::Benign => 0u8,
                Label::Attack(f) => f.code(),
            };
            writer.write_all(&[label_code])?;
            writer.write_all(&(r.frame.len() as u32).to_le_bytes())?;
            writer.write_all(&r.frame)?;
        }
        Ok(())
    }

    /// Reads a trace from `reader` by draining a [`TraceReader`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a malformed file.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, TraceIoError> {
        TraceReader::new(reader)?.collect()
    }

    /// Saves the trace to a file. See [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be created or written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
        let file = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(file))
    }

    /// Loads a trace from a file. See [`Trace::read_from`].
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be read or is malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let file = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(file))
    }

    /// Repacks the trace's frames into arena-backed [`FrameBatch`]es of at
    /// most `batch_size` frames, preserving record order. Each batch owns
    /// one contiguous chunk, so downstream consumers move a whole batch with
    /// a single refcount bump instead of one `Bytes` clone per frame.
    pub fn to_batches(&self, batch_size: usize) -> Vec<FrameBatch> {
        let batch_size = batch_size.max(1);
        let mut arena = FrameArena::default();
        let mut out = Vec::with_capacity(self.records.len().div_ceil(batch_size));
        for r in &self.records {
            arena.push(&r.frame);
            if arena.pending() >= batch_size {
                out.push(arena.seal_batch());
            }
        }
        if arena.pending() > 0 {
            out.push(arena.seal_batch());
        }
        out
    }
}

/// A streaming reader over the `P4GT` format: yields one [`Record`] at a
/// time instead of slurping the whole trace into memory. This is the
/// ingestion path for serving runtimes that replay multi-gigabyte traces.
///
/// The header is validated eagerly in [`TraceReader::new`]; records are
/// decoded lazily as the iterator is driven. After the declared record
/// count has been yielded the iterator fuses to `None`.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
    total: u64,
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened or the header is
    /// malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let file = std::fs::File::open(path)?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps a reader, consuming and validating the `P4GT` header.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, or an unsupported
    /// format version.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::Format("bad magic".into()));
        }
        let mut version = [0u8; 1];
        reader.read_exact(&mut version)?;
        if version[0] != FORMAT_VERSION {
            return Err(TraceIoError::Format(format!(
                "unsupported format version {}",
                version[0]
            )));
        }
        let mut count_bytes = [0u8; 8];
        reader.read_exact(&mut count_bytes)?;
        let total = u64::from_le_bytes(count_bytes);
        Ok(TraceReader {
            reader,
            remaining: total,
            total,
        })
    }

    /// Records declared by the header.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_record(&mut self) -> Result<Record, TraceIoError> {
        let mut ts = [0u8; 8];
        self.reader.read_exact(&mut ts)?;
        let mut flow = [0u8; 8];
        self.reader.read_exact(&mut flow)?;
        let mut label_code = [0u8; 1];
        self.reader.read_exact(&mut label_code)?;
        let label = if label_code[0] == 0 {
            Label::Benign
        } else {
            Label::Attack(AttackFamily::from_code(label_code[0]).ok_or_else(|| {
                TraceIoError::Format(format!("unknown attack code {}", label_code[0]))
            })?)
        };
        let mut len = [0u8; 4];
        self.reader.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME_LEN {
            return Err(TraceIoError::Format(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap (corrupt length prefix)"
            )));
        }
        let mut frame = vec![0u8; len as usize];
        self.reader.read_exact(&mut frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceIoError::Format(format!(
                    "record truncated: frame claims {len} bytes but the stream ended early"
                ))
            } else {
                TraceIoError::Io(e)
            }
        })?;
        Ok(Record {
            timestamp_us: u64::from_le_bytes(ts),
            flow_id: u64::from_le_bytes(flow),
            label,
            frame: Bytes::from(frame),
        })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Record, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        match self.read_record() {
            Ok(record) => {
                self.remaining -= 1;
                Some(Ok(record))
            }
            Err(e) => {
                // A decode error poisons the stream: stop yielding rather
                // than resynchronise mid-record.
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // The header-declared count is an upper bound; a truncated file
        // yields fewer records.
        (0, usize::try_from(self.remaining).ok())
    }
}

/// A streaming batch reader over the `P4GT` format: the zero-copy ingestion
/// path for batched serving.
///
/// Where [`TraceReader`] allocates one `Bytes` per record, this reader
/// decodes frame payloads **directly into a [`FrameArena`] chunk** (labels
/// and timestamps are skipped — serving does not need ground truth) and
/// yields sealed [`FrameBatch`]es of up to `batch_size` frames. The only
/// copy is the unavoidable `read()` from the underlying stream into the
/// chunk tail; after that every consumer borrows `&[u8]` views.
#[derive(Debug)]
pub struct TraceBatchReader<R> {
    reader: R,
    remaining: u64,
    total: u64,
    batch_size: usize,
    arena: FrameArena,
}

impl TraceBatchReader<std::io::BufReader<std::fs::File>> {
    /// Opens a trace file for streaming batch reads.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened or the header is
    /// malformed.
    pub fn open(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, TraceIoError> {
        let file = std::fs::File::open(path)?;
        Self::new(std::io::BufReader::new(file), batch_size)
    }
}

impl<R: Read> TraceBatchReader<R> {
    /// Wraps a reader, consuming and validating the `P4GT` header.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic, or an unsupported
    /// format version.
    pub fn new(reader: R, batch_size: usize) -> Result<Self, TraceIoError> {
        // Reuse the record reader's header validation, then take the
        // underlying stream back.
        let inner = TraceReader::new(reader)?;
        let total = inner.total();
        Ok(TraceBatchReader {
            reader: inner.reader,
            remaining: total,
            total,
            batch_size: batch_size.max(1),
            arena: FrameArena::default(),
        })
    }

    /// Records declared by the header.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records not yet yielded in a sealed batch.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Arena statistics (batch fill, chunk bytes) accumulated so far.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.arena.stats()
    }

    fn read_frame_into_arena(&mut self) -> Result<(), TraceIoError> {
        // Skip ts(8) + flow(8), validate the label byte, then splice the
        // frame straight into the open arena chunk.
        let mut head = [0u8; 17];
        self.reader.read_exact(&mut head)?;
        let label_code = head[16];
        if label_code != 0 && AttackFamily::from_code(label_code).is_none() {
            return Err(TraceIoError::Format(format!(
                "unknown attack code {label_code}"
            )));
        }
        let mut len = [0u8; 4];
        self.reader.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME_LEN {
            return Err(TraceIoError::Format(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap (corrupt length prefix)"
            )));
        }
        let tail = self.arena.push_uninit(len as usize);
        self.reader.read_exact(tail).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceIoError::Format(format!(
                    "record truncated: frame claims {len} bytes but the stream ended early"
                ))
            } else {
                TraceIoError::Io(e)
            }
        })?;
        Ok(())
    }
}

impl<R: Read> Iterator for TraceBatchReader<R> {
    type Item = Result<FrameBatch, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        while self.arena.pending() < self.batch_size
            && (self.arena.pending() as u64) < self.remaining
        {
            if let Err(e) = self.read_frame_into_arena() {
                // A decode error poisons the stream, matching TraceReader.
                self.remaining = 0;
                return Some(Err(e));
            }
        }
        let batch = self.arena.seal_batch();
        self.remaining -= batch.len() as u64;
        Some(Ok(batch))
    }
}

impl FromIterator<Record> for Trace {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<Record> for Trace {
    fn extend<I: IntoIterator<Item = Record>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64, label: Label) -> Record {
        Record {
            timestamp_us: ts,
            frame: Bytes::from_static(&[1, 2, 3, 4]),
            label,
            flow_id: ts / 10,
        }
    }

    #[test]
    fn push_sort_and_count() {
        let mut t = Trace::new();
        t.push(record(30, Label::Attack(AttackFamily::SynFlood)));
        t.push(record(10, Label::Benign));
        t.push(record(20, Label::Benign));
        t.sort_by_time();
        let times: Vec<u64> = t.iter().map(|r| r.timestamp_us).collect();
        assert_eq!(times, [10, 20, 30]);
        assert_eq!(t.attack_count(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let mut t = Trace::new();
        for i in 0..50 {
            let label = if i % 5 == 0 {
                Label::Attack(AttackFamily::DnsTunnel)
            } else {
                Label::Benign
            };
            t.push(record(i, label));
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let loaded = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded, t);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::read_from(b"NOPE\x01".as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        buf[4] = 99;
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_attack_code() {
        let mut t = Trace::new();
        t.push(record(1, Label::Attack(AttackFamily::MiraiScan)));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // Label byte sits after magic(4)+ver(1)+count(8)+ts(8)+flow(8).
        buf[29] = 200;
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn streaming_reader_yields_records_lazily() {
        let mut t = Trace::new();
        for i in 0..20 {
            t.push(record(i, Label::Benign));
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.total(), 20);
        assert_eq!(reader.remaining(), 20);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.timestamp_us, 0);
        assert_eq!(reader.remaining(), 19);
        let rest: Result<Vec<Record>, _> = reader.collect();
        assert_eq!(rest.unwrap().len(), 19);
    }

    #[test]
    fn streaming_reader_stops_after_decode_error() {
        let mut t = Trace::new();
        t.push(record(1, Label::Benign));
        t.push(record(2, Label::Benign));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[29] = 200; // corrupt the first record's label byte
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "stream fuses after an error");
    }

    #[test]
    fn streaming_reader_matches_batch_load() {
        let mut t = Trace::new();
        for i in 0..10 {
            let label = if i % 3 == 0 {
                Label::Attack(AttackFamily::UdpFlood)
            } else {
                Label::Benign
            };
            t.push(record(i, label));
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let streamed: Trace = TraceReader::new(buf.as_slice())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, t);
    }

    #[test]
    fn to_batches_preserves_frames_and_order() {
        let mut t = Trace::new();
        for i in 0..10u8 {
            t.push(Record {
                timestamp_us: u64::from(i),
                frame: Bytes::from(vec![i; usize::from(i) + 1]),
                label: Label::Benign,
                flow_id: u64::from(i),
            });
        }
        let batches = t.to_batches(4);
        assert_eq!(batches.len(), 3);
        assert_eq!(
            batches.iter().map(|b| b.len()).collect::<Vec<_>>(),
            [4, 4, 2]
        );
        let flat: Vec<Vec<u8>> = batches
            .iter()
            .flat_map(|b| b.iter().map(|f| f.to_vec()))
            .collect();
        let expected: Vec<Vec<u8>> = t.iter().map(|r| r.frame.to_vec()).collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn batch_reader_matches_record_reader() {
        let mut t = Trace::new();
        for i in 0..23 {
            let label = if i % 4 == 0 {
                Label::Attack(AttackFamily::SynFlood)
            } else {
                Label::Benign
            };
            t.push(Record {
                timestamp_us: i,
                frame: Bytes::from(vec![i as u8; (i as usize % 7) + 1]),
                label,
                flow_id: i,
            });
        }
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let mut reader = TraceBatchReader::new(buf.as_slice(), 8).unwrap();
        assert_eq!(reader.total(), 23);
        let mut frames = Vec::new();
        let mut sizes = Vec::new();
        for batch in &mut reader {
            let batch = batch.unwrap();
            sizes.push(batch.len());
            frames.extend(batch.iter().map(|f| f.to_vec()));
        }
        assert_eq!(sizes, [8, 8, 7]);
        let expected: Vec<Vec<u8>> = t.iter().map(|r| r.frame.to_vec()).collect();
        assert_eq!(frames, expected);
        assert_eq!(reader.remaining(), 0);
        assert_eq!(reader.arena_stats().batches, 3);
        assert!((reader.arena_stats().avg_batch_fill() - 23.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn batch_reader_rejects_corrupt_label_and_fuses() {
        let mut t = Trace::new();
        t.push(record(1, Label::Benign));
        t.push(record(2, Label::Benign));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[29] = 200; // corrupt the first record's label byte
        let mut reader = TraceBatchReader::new(buf.as_slice(), 16).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "stream fuses after an error");
    }

    #[test]
    fn split_at_fraction_preserves_order() {
        let t: Trace = (0..10).map(|i| record(i, Label::Benign)).collect();
        let (a, b) = t.split_at_fraction(0.6);
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 4);
        assert_eq!(b.records()[0].timestamp_us, 6);
        let (all, none) = t.split_at_fraction(2.0);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn label_helpers() {
        assert!(!Label::Benign.is_attack());
        assert_eq!(Label::Benign.class(), 0);
        let l = Label::Attack(AttackFamily::MqttFlood);
        assert_eq!(l.class(), 1);
        assert_eq!(l.family(), Some(AttackFamily::MqttFlood));
        assert_eq!(l.to_string(), "attack(mqtt-flood)");
    }

    #[test]
    fn family_codes_round_trip() {
        for f in AttackFamily::ALL {
            assert_eq!(AttackFamily::from_code(f.code()), Some(f));
        }
        assert_eq!(AttackFamily::from_code(0), None);
        assert_eq!(AttackFamily::from_code(77), None);
    }
}
