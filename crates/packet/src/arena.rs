//! Arena-backed frame storage for the batched gateway hot path.
//!
//! The per-frame serving path moves one `Bytes` handle per frame through the
//! shard queues: every enqueue clones an `Arc`, every frame was once its own
//! heap allocation, and every pipeline invocation pays the fixed costs of a
//! channel op, a timestamp, and a telemetry flush. At millions of packets per
//! second those fixed costs dominate the actual match work.
//!
//! This module amortizes them. A [`FrameArena`] accumulates raw frame bytes
//! into one large contiguous chunk and seals the chunk into a [`FrameBatch`]:
//! a single refcounted [`Bytes`] buffer plus a vector of [`FrameSpan`]
//! offsets. A batch crosses a thread boundary with **one** `Arc` clone no
//! matter how many frames it carries, and consumers borrow each frame as a
//! plain `&[u8]` view into the shared chunk — no per-frame allocation, no
//! per-frame refcount traffic.
//!
//! # Lifetime rules
//!
//! - Frame views (`&[u8]`) borrow from the batch; they are valid for as long
//!   as the batch (or any clone of its `data`) is alive.
//! - A batch never reallocates: sealing freezes the chunk. Spans are
//!   validated at construction, so [`FrameBatch::frame`] cannot go out of
//!   bounds.
//! - When a single frame must outlive its batch (e.g. a mirrored sample),
//!   [`FrameBatch::frame_bytes`] hands out a zero-copy `Bytes` slice that
//!   keeps only the shared chunk alive.

use bytes::Bytes;

/// Location of one frame inside a [`FrameBatch`] chunk.
///
/// Offsets are 32-bit: a single batch chunk is far below 4 GiB (the trace
/// format itself caps individual frames at 16 MiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Byte offset of the frame within the chunk.
    pub offset: u32,
    /// Frame length in bytes.
    pub len: u32,
}

impl FrameSpan {
    /// End offset (exclusive) of the frame within the chunk.
    #[inline]
    pub fn end(&self) -> usize {
        self.offset as usize + self.len as usize
    }
}

/// A sealed group of frames sharing one contiguous byte chunk.
///
/// Cloning a batch is cheap (`Bytes` refcount bump + span vector copy); the
/// common cross-thread move costs a single `Arc` increment for the chunk.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    data: Bytes,
    spans: Vec<FrameSpan>,
}

impl FrameBatch {
    /// Builds a batch from a chunk and frame spans.
    ///
    /// # Panics
    ///
    /// Panics if any span reaches past the end of `data`; spans are trusted
    /// after construction so the check happens exactly once, here.
    pub fn new(data: Bytes, spans: Vec<FrameSpan>) -> Self {
        for s in &spans {
            assert!(
                s.end() <= data.len(),
                "frame span {}..{} exceeds chunk of {} bytes",
                s.offset,
                s.end(),
                data.len()
            );
        }
        FrameBatch { data, spans }
    }

    /// Wraps a single owned frame as a one-frame batch (used where a
    /// per-frame producer feeds a batch consumer).
    pub fn single(frame: Bytes) -> Self {
        let len = frame.len() as u32;
        FrameBatch {
            data: frame,
            spans: vec![FrameSpan { offset: 0, len }],
        }
    }

    /// Number of frames in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` when the batch holds no frames.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total payload bytes across all frames (spans may not cover padding).
    pub fn frame_bytes_total(&self) -> usize {
        self.spans.iter().map(|s| s.len as usize).sum()
    }

    /// Borrows frame `i` as a slice of the shared chunk.
    #[inline]
    pub fn frame(&self, i: usize) -> &[u8] {
        let s = self.spans[i];
        &self.data[s.offset as usize..s.end()]
    }

    /// Zero-copy `Bytes` handle to frame `i`; keeps the whole chunk alive.
    pub fn frame_bytes(&self, i: usize) -> Bytes {
        let s = self.spans[i];
        self.data.slice(s.offset as usize..s.end())
    }

    /// Iterates over borrowed frame views in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.spans
            .iter()
            .map(move |s| &self.data[s.offset as usize..s.end()])
    }

    /// The shared byte chunk.
    #[inline]
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// The frame spans, in frame order.
    #[inline]
    pub fn spans(&self) -> &[FrameSpan] {
        &self.spans
    }

    /// Splits the batch into per-lane sub-batches, where `lane(frame)` maps
    /// each frame view to a lane index below `lanes`. Sub-batches share the
    /// chunk (refcount bump only); empty lanes come back as empty batches.
    pub fn partition_by<F: FnMut(&[u8]) -> usize>(
        &self,
        lanes: usize,
        mut lane: F,
    ) -> Vec<FrameBatch> {
        let mut out: Vec<FrameBatch> = (0..lanes)
            .map(|_| FrameBatch {
                data: self.data.clone(),
                spans: Vec::new(),
            })
            .collect();
        for s in &self.spans {
            let view = &self.data[s.offset as usize..s.end()];
            let idx = lane(view).min(lanes.saturating_sub(1));
            out[idx].spans.push(*s);
        }
        out
    }
}

/// Cumulative statistics for a [`FrameArena`]; feeds the
/// `p4guard_arena_*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Frames pushed since creation.
    pub frames: u64,
    /// Frame payload bytes pushed since creation.
    pub bytes: u64,
    /// Batches sealed since creation.
    pub batches: u64,
    /// Bytes currently buffered in the open chunk (unsealed).
    pub open_bytes: u64,
    /// Frames currently buffered in the open chunk (unsealed).
    pub open_frames: u64,
}

impl ArenaStats {
    /// Average frames per sealed batch (0 when nothing sealed yet).
    pub fn avg_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.frames - self.open_frames) as f64 / self.batches as f64
        }
    }
}

/// Default chunk capacity: large enough that a 256-frame batch of full-size
/// Ethernet frames fits without reallocating.
pub const DEFAULT_CHUNK_CAPACITY: usize = 512 * 1024;

/// An append-only frame accumulator that seals contiguous chunks into
/// [`FrameBatch`]es.
///
/// The arena owns exactly one open chunk at a time. Pushing copies frame
/// bytes to the chunk tail (the only copy the batched path ever makes);
/// sealing freezes the chunk into a `Bytes` and starts a fresh one with the
/// same capacity. Allocation cost is therefore one `Vec` per *batch*, not
/// per frame.
#[derive(Debug)]
pub struct FrameArena {
    chunk_capacity: usize,
    chunk: Vec<u8>,
    spans: Vec<FrameSpan>,
    stats: ArenaStats,
}

impl Default for FrameArena {
    fn default() -> Self {
        Self::new(DEFAULT_CHUNK_CAPACITY)
    }
}

impl FrameArena {
    /// Creates an arena whose chunks start at `chunk_capacity` bytes.
    pub fn new(chunk_capacity: usize) -> Self {
        FrameArena {
            chunk_capacity: chunk_capacity.max(64),
            chunk: Vec::with_capacity(chunk_capacity.max(64)),
            spans: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// Appends one frame to the open chunk.
    pub fn push(&mut self, frame: &[u8]) {
        let offset = self.chunk.len() as u32;
        self.chunk.extend_from_slice(frame);
        self.spans.push(FrameSpan {
            offset,
            len: frame.len() as u32,
        });
        self.stats.frames += 1;
        self.stats.bytes += frame.len() as u64;
        self.stats.open_frames += 1;
        self.stats.open_bytes += frame.len() as u64;
    }

    /// Extends the open chunk by `len` zero bytes and returns the span's
    /// mutable tail, so callers can decode straight into the arena without
    /// an intermediate buffer. The span is recorded as a pushed frame.
    pub fn push_uninit(&mut self, len: usize) -> &mut [u8] {
        let offset = self.chunk.len();
        self.chunk.resize(offset + len, 0);
        self.spans.push(FrameSpan {
            offset: offset as u32,
            len: len as u32,
        });
        self.stats.frames += 1;
        self.stats.bytes += len as u64;
        self.stats.open_frames += 1;
        self.stats.open_bytes += len as u64;
        &mut self.chunk[offset..]
    }

    /// Frames currently buffered in the open chunk.
    pub fn pending(&self) -> usize {
        self.spans.len()
    }

    /// Seals the open chunk into a batch and starts a new chunk. Returns an
    /// empty batch when nothing is pending.
    pub fn seal_batch(&mut self) -> FrameBatch {
        if self.spans.is_empty() {
            return FrameBatch::default();
        }
        let chunk = std::mem::replace(&mut self.chunk, Vec::with_capacity(self.chunk_capacity));
        let spans = std::mem::take(&mut self.spans);
        self.stats.batches += 1;
        self.stats.open_frames = 0;
        self.stats.open_bytes = 0;
        FrameBatch {
            data: Bytes::from(chunk),
            spans,
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Configured chunk capacity.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_seal_round_trip() {
        let mut arena = FrameArena::new(1024);
        arena.push(b"alpha");
        arena.push(b"bee");
        arena.push(b"");
        let batch = arena.seal_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.frame(0), b"alpha");
        assert_eq!(batch.frame(1), b"bee");
        assert_eq!(batch.frame(2), b"");
        assert_eq!(batch.frame_bytes_total(), 8);
        let collected: Vec<&[u8]> = batch.iter().collect();
        assert_eq!(collected, vec![b"alpha".as_slice(), b"bee", b""]);
    }

    #[test]
    fn seal_starts_fresh_chunk() {
        let mut arena = FrameArena::new(64);
        arena.push(b"one");
        let first = arena.seal_batch();
        arena.push(b"two");
        let second = arena.seal_batch();
        assert_eq!(first.frame(0), b"one");
        assert_eq!(second.frame(0), b"two");
        assert_eq!(arena.stats().batches, 2);
        assert_eq!(arena.stats().frames, 2);
        assert_eq!(arena.stats().open_frames, 0);
        assert!((arena.stats().avg_batch_fill() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_seal_is_empty_batch() {
        let mut arena = FrameArena::new(64);
        let batch = arena.seal_batch();
        assert!(batch.is_empty());
        assert_eq!(arena.stats().batches, 0);
    }

    #[test]
    fn push_uninit_exposes_writable_tail() {
        let mut arena = FrameArena::new(64);
        arena.push_uninit(4).copy_from_slice(&[9, 8, 7, 6]);
        let batch = arena.seal_batch();
        assert_eq!(batch.frame(0), &[9, 8, 7, 6]);
    }

    #[test]
    fn frame_bytes_is_zero_copy_view() {
        let mut arena = FrameArena::new(64);
        arena.push(b"abcdef");
        arena.push(b"xyz");
        let batch = arena.seal_batch();
        let solo = batch.frame_bytes(1);
        assert_eq!(&solo[..], b"xyz");
        // The view aliases the chunk rather than copying it.
        let chunk_ptr = batch.data().as_ptr() as usize;
        let solo_ptr = solo.as_ptr() as usize;
        assert_eq!(solo_ptr, chunk_ptr + 6);
    }

    #[test]
    fn single_wraps_one_frame() {
        let b = FrameBatch::single(Bytes::from_static(b"frame"));
        assert_eq!(b.len(), 1);
        assert_eq!(b.frame(0), b"frame");
    }

    #[test]
    fn partition_by_groups_frames_and_shares_chunk() {
        let mut arena = FrameArena::new(64);
        arena.push(b"a0");
        arena.push(b"b1");
        arena.push(b"a2");
        arena.push(b"b3");
        let batch = arena.seal_batch();
        let lanes = batch.partition_by(2, |f| usize::from(f[0] == b'b'));
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].len(), 2);
        assert_eq!(lanes[1].len(), 2);
        assert_eq!(lanes[0].frame(1), b"a2");
        assert_eq!(lanes[1].frame(0), b"b1");
        assert_eq!(lanes[0].data().as_ptr(), batch.data().as_ptr());
    }

    #[test]
    #[should_panic(expected = "exceeds chunk")]
    fn out_of_range_span_panics_at_construction() {
        FrameBatch::new(
            Bytes::from_static(b"abc"),
            vec![FrameSpan { offset: 2, len: 5 }],
        );
    }
}
