//! CoAP message codec (RFC 7252).
//!
//! Supports the fixed header, tokens, Uri-Path options (other options are
//! skipped structurally on decode) and payloads.

use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default CoAP UDP port.
pub const PORT: u16 = 5683;

/// CoAP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoapType {
    /// Confirmable (requires an ACK).
    Confirmable,
    /// Non-confirmable.
    NonConfirmable,
    /// Acknowledgment.
    Acknowledgement,
    /// Reset.
    Reset,
}

impl CoapType {
    fn from_bits(v: u8) -> Self {
        match v & 0x03 {
            0 => CoapType::Confirmable,
            1 => CoapType::NonConfirmable,
            2 => CoapType::Acknowledgement,
            _ => CoapType::Reset,
        }
    }

    fn as_bits(&self) -> u8 {
        match self {
            CoapType::Confirmable => 0,
            CoapType::NonConfirmable => 1,
            CoapType::Acknowledgement => 2,
            CoapType::Reset => 3,
        }
    }
}

/// A CoAP code in `class.detail` notation (e.g. `0.01` = GET).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoapCode(pub u8);

impl CoapCode {
    /// `0.00` — empty message.
    pub const EMPTY: CoapCode = CoapCode(0x00);
    /// `0.01` — GET.
    pub const GET: CoapCode = CoapCode(0x01);
    /// `0.02` — POST.
    pub const POST: CoapCode = CoapCode(0x02);
    /// `0.03` — PUT.
    pub const PUT: CoapCode = CoapCode(0x03);
    /// `2.05` — Content.
    pub const CONTENT: CoapCode = CoapCode(0x45);
    /// `4.04` — Not Found.
    pub const NOT_FOUND: CoapCode = CoapCode(0x84);

    /// The 3-bit class part of the code.
    pub fn class(&self) -> u8 {
        self.0 >> 5
    }

    /// The 5-bit detail part of the code.
    pub fn detail(&self) -> u8 {
        self.0 & 0x1f
    }

    /// Returns `true` for request codes (class 0, nonzero detail).
    pub fn is_request(&self) -> bool {
        self.class() == 0 && self.detail() != 0
    }
}

impl fmt::Display for CoapCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:02}", self.class(), self.detail())
    }
}

/// Uri-Path option number.
const OPTION_URI_PATH: u16 = 11;
/// Payload marker byte.
const PAYLOAD_MARKER: u8 = 0xff;

/// A decoded CoAP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoapMessage {
    /// Message type.
    pub msg_type: CoapType,
    /// Request/response code.
    pub code: CoapCode,
    /// Message id used for deduplication and ACK matching.
    pub message_id: u16,
    /// Token (0..=8 bytes).
    pub token: Vec<u8>,
    /// Uri-Path segments (only Uri-Path options are retained on decode).
    pub uri_path: Vec<String>,
    /// Payload after the `0xFF` marker.
    pub payload: Vec<u8>,
}

impl CoapMessage {
    /// Creates a confirmable GET request for the given path segments.
    pub fn get(message_id: u16, token: Vec<u8>, path: &[&str]) -> Self {
        CoapMessage {
            msg_type: CoapType::Confirmable,
            code: CoapCode::GET,
            message_id,
            token,
            uri_path: path.iter().map(|s| (*s).to_owned()).collect(),
            payload: Vec::new(),
        }
    }

    /// Creates an ACK carrying a `2.05 Content` response payload.
    pub fn content_response(message_id: u16, token: Vec<u8>, payload: Vec<u8>) -> Self {
        CoapMessage {
            msg_type: CoapType::Acknowledgement,
            code: CoapCode::CONTENT,
            message_id,
            token,
            uri_path: Vec::new(),
            payload,
        }
    }

    /// Encodes the message into a standalone byte vector (a UDP payload).
    ///
    /// # Panics
    ///
    /// Panics if the token is longer than 8 bytes.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.token.len() <= 8, "coap token exceeds 8 bytes");
        let mut out = Vec::new();
        out.push((1 << 6) | (self.msg_type.as_bits() << 4) | self.token.len() as u8);
        out.push(self.code.0);
        wire::put_u16(&mut out, self.message_id);
        out.extend_from_slice(&self.token);
        let mut prev_option = 0u16;
        for seg in &self.uri_path {
            encode_option(&mut out, &mut prev_option, OPTION_URI_PATH, seg.as_bytes());
        }
        if !self.payload.is_empty() {
            out.push(PAYLOAD_MARKER);
            out.extend_from_slice(&self.payload);
        }
        out
    }

    /// Decodes a message from the start of `buf`, returning the message and
    /// the number of bytes consumed (always `buf.len()`, since CoAP fills
    /// the datagram).
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a wrong version, a token length above
    /// 8, or a malformed option encoding.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        wire::require(buf, 4, "coap header")?;
        let first = buf[0];
        if first >> 6 != 1 {
            return Err(ParseError::invalid(
                "coap header",
                format!("version is {}", first >> 6),
            ));
        }
        let tkl = usize::from(first & 0x0f);
        if tkl > 8 {
            return Err(ParseError::invalid(
                "coap header",
                format!("token length {tkl} exceeds 8"),
            ));
        }
        let code = CoapCode(buf[1]);
        let message_id = wire::get_u16(buf, 2, "coap message id")?;
        wire::require(buf, 4 + tkl, "coap token")?;
        let token = buf[4..4 + tkl].to_vec();
        let mut at = 4 + tkl;
        let mut option_number = 0u16;
        let mut uri_path = Vec::new();
        let mut payload = Vec::new();
        while at < buf.len() {
            if buf[at] == PAYLOAD_MARKER {
                at += 1;
                if at >= buf.len() {
                    return Err(ParseError::invalid(
                        "coap payload",
                        "payload marker with empty payload",
                    ));
                }
                payload = buf[at..].to_vec();
                at = buf.len();
                break;
            }
            let (delta, len, used) = decode_option_header(&buf[at..])?;
            at += used;
            option_number = option_number
                .checked_add(delta)
                .ok_or_else(|| ParseError::invalid("coap option", "option number overflow"))?;
            let end = at + len;
            let value = buf
                .get(at..end)
                .ok_or_else(|| ParseError::truncated("coap option value", end, buf.len()))?;
            if option_number == OPTION_URI_PATH {
                let seg = std::str::from_utf8(value)
                    .map_err(|_| ParseError::invalid("coap uri-path", "segment is not utf-8"))?;
                uri_path.push(seg.to_owned());
            }
            at = end;
        }
        Ok((
            CoapMessage {
                msg_type: CoapType::from_bits(first >> 4),
                code,
                message_id,
                token,
                uri_path,
                payload,
            },
            at,
        ))
    }
}

fn encode_option(out: &mut Vec<u8>, prev: &mut u16, number: u16, value: &[u8]) {
    let delta = number - *prev;
    *prev = number;
    let (delta_nibble, delta_ext) = nibble_parts(u32::from(delta));
    let (len_nibble, len_ext) = nibble_parts(value.len() as u32);
    out.push((delta_nibble << 4) | len_nibble);
    out.extend_from_slice(&delta_ext);
    out.extend_from_slice(&len_ext);
    out.extend_from_slice(value);
}

/// Splits a value into the 4-bit nibble and extension bytes per RFC 7252 §3.1.
fn nibble_parts(v: u32) -> (u8, Vec<u8>) {
    if v < 13 {
        (v as u8, Vec::new())
    } else if v < 269 {
        (13, vec![(v - 13) as u8])
    } else {
        (14, ((v - 269) as u16).to_be_bytes().to_vec())
    }
}

/// Decodes one option header, returning (delta, length, bytes consumed).
fn decode_option_header(buf: &[u8]) -> Result<(u16, usize, usize), ParseError> {
    let first = wire::get_u8(buf, 0, "coap option header")?;
    let mut at = 1usize;
    let mut read_part = |nibble: u8| -> Result<u16, ParseError> {
        match nibble {
            0..=12 => Ok(u16::from(nibble)),
            13 => {
                let v = wire::get_u8(buf, at, "coap option ext8")?;
                at += 1;
                Ok(u16::from(v) + 13)
            }
            14 => {
                let v = wire::get_u16(buf, at, "coap option ext16")?;
                at += 2;
                Ok(v.saturating_add(269))
            }
            _ => Err(ParseError::invalid(
                "coap option",
                "nibble 15 is reserved for the payload marker",
            )),
        }
    };
    let delta = read_part(first >> 4)?;
    let len = read_part(first & 0x0f)?;
    Ok((delta, usize::from(len), at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: CoapMessage) {
        let bytes = m.encode();
        let (decoded, used) = CoapMessage::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, m);
    }

    #[test]
    fn round_trip_get() {
        round_trip(CoapMessage::get(
            0x1234,
            vec![0xde, 0xad],
            &["sensors", "temp"],
        ));
    }

    #[test]
    fn round_trip_response_with_payload() {
        round_trip(CoapMessage::content_response(7, vec![1], b"22.4C".to_vec()));
    }

    #[test]
    fn round_trip_long_path_segment() {
        // A segment longer than 12 bytes exercises the 13-extension form,
        // and one longer than 268 exercises the 14-extension form.
        round_trip(CoapMessage::get(1, vec![], &[&"a".repeat(20)]));
        round_trip(CoapMessage::get(2, vec![], &[&"b".repeat(300)]));
    }

    #[test]
    fn code_display() {
        assert_eq!(CoapCode::GET.to_string(), "0.01");
        assert_eq!(CoapCode::CONTENT.to_string(), "2.05");
        assert_eq!(CoapCode::NOT_FOUND.to_string(), "4.04");
        assert!(CoapCode::GET.is_request());
        assert!(!CoapCode::CONTENT.is_request());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = CoapMessage::get(1, vec![], &["x"]).encode();
        bytes[0] = (bytes[0] & 0x3f) | (2 << 6);
        assert!(CoapMessage::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_long_token() {
        let mut bytes = CoapMessage::get(1, vec![0; 8], &[]).encode();
        bytes[0] = (bytes[0] & 0xf0) | 9;
        assert!(CoapMessage::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_marker_without_payload() {
        let mut bytes = CoapMessage::get(1, vec![], &[]).encode();
        bytes.push(PAYLOAD_MARKER);
        assert!(CoapMessage::decode(&bytes).is_err());
    }

    #[test]
    fn skips_unknown_options() {
        // Insert an unknown option (number 12, Content-Format) before payload.
        let mut bytes = vec![
            0x40, 0x01, 0x00, 0x01, // header, GET, id 1
            0xc0, // option delta 12, length 0 (content-format)
        ];
        bytes.push(PAYLOAD_MARKER);
        bytes.extend_from_slice(b"hi");
        let (m, _) = CoapMessage::decode(&bytes).unwrap();
        assert!(m.uri_path.is_empty());
        assert_eq!(m.payload, b"hi");
    }
}
