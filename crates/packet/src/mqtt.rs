//! MQTT 3.1.1 control-packet codec (subset used by IoT telemetry devices).
//!
//! The codec is wire-accurate for the packet types it supports: CONNECT,
//! CONNACK, PUBLISH, PUBACK, SUBSCRIBE, SUBACK, PINGREQ, PINGRESP and
//! DISCONNECT. Unsupported types decode into [`MqttPacket::Other`] so the
//! parser never fails on benign-but-unmodelled traffic.

use crate::error::ParseError;
use crate::wire;
use serde::{Deserialize, Serialize};

/// Default MQTT broker TCP port.
pub const PORT: u16 = 1883;

/// MQTT control packet type numbers.
pub mod packet_type {
    /// CONNECT.
    pub const CONNECT: u8 = 1;
    /// CONNACK.
    pub const CONNACK: u8 = 2;
    /// PUBLISH.
    pub const PUBLISH: u8 = 3;
    /// PUBACK.
    pub const PUBACK: u8 = 4;
    /// SUBSCRIBE.
    pub const SUBSCRIBE: u8 = 8;
    /// SUBACK.
    pub const SUBACK: u8 = 9;
    /// PINGREQ.
    pub const PINGREQ: u8 = 12;
    /// PINGRESP.
    pub const PINGRESP: u8 = 13;
    /// DISCONNECT.
    pub const DISCONNECT: u8 = 14;
}

/// A decoded MQTT control packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MqttPacket {
    /// Client connection request.
    Connect {
        /// Keep-alive interval in seconds.
        keep_alive: u16,
        /// Client identifier.
        client_id: String,
        /// Connect flags byte (clean session, will, auth bits).
        connect_flags: u8,
    },
    /// Broker connection acknowledgment.
    ConnAck {
        /// Whether a previous session is resumed.
        session_present: bool,
        /// Return code; 0 means accepted.
        return_code: u8,
    },
    /// Application message publication.
    Publish {
        /// Topic name.
        topic: String,
        /// Packet identifier, present when QoS > 0.
        packet_id: Option<u16>,
        /// QoS level (0..=2).
        qos: u8,
        /// Retain flag.
        retain: bool,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// QoS 1 publish acknowledgment.
    PubAck {
        /// Packet identifier being acknowledged.
        packet_id: u16,
    },
    /// Subscription request with a single topic filter.
    Subscribe {
        /// Packet identifier.
        packet_id: u16,
        /// Topic filter.
        topic: String,
        /// Requested QoS.
        qos: u8,
    },
    /// Subscription acknowledgment.
    SubAck {
        /// Packet identifier being acknowledged.
        packet_id: u16,
        /// Granted QoS or failure code.
        return_code: u8,
    },
    /// Keep-alive probe.
    PingReq,
    /// Keep-alive response.
    PingResp,
    /// Clean disconnect notification.
    Disconnect,
    /// Any other packet type; the body is kept verbatim.
    Other {
        /// The 4-bit packet type.
        packet_type: u8,
        /// The 4-bit flags nibble.
        flags: u8,
        /// Remaining-length body bytes.
        body: Vec<u8>,
    },
}

impl MqttPacket {
    /// Returns the 4-bit control packet type number.
    pub fn packet_type(&self) -> u8 {
        match self {
            MqttPacket::Connect { .. } => packet_type::CONNECT,
            MqttPacket::ConnAck { .. } => packet_type::CONNACK,
            MqttPacket::Publish { .. } => packet_type::PUBLISH,
            MqttPacket::PubAck { .. } => packet_type::PUBACK,
            MqttPacket::Subscribe { .. } => packet_type::SUBSCRIBE,
            MqttPacket::SubAck { .. } => packet_type::SUBACK,
            MqttPacket::PingReq => packet_type::PINGREQ,
            MqttPacket::PingResp => packet_type::PINGRESP,
            MqttPacket::Disconnect => packet_type::DISCONNECT,
            MqttPacket::Other { packet_type, .. } => *packet_type,
        }
    }

    /// Encodes the packet into a standalone byte vector (a TCP payload).
    pub fn encode(&self) -> Vec<u8> {
        let (flags, body) = match self {
            MqttPacket::Connect {
                keep_alive,
                client_id,
                connect_flags,
            } => {
                let mut body = Vec::new();
                put_string(&mut body, "MQTT");
                body.push(4); // protocol level 3.1.1
                body.push(*connect_flags);
                wire::put_u16(&mut body, *keep_alive);
                put_string(&mut body, client_id);
                (0, body)
            }
            MqttPacket::ConnAck {
                session_present,
                return_code,
            } => (0, vec![u8::from(*session_present), *return_code]),
            MqttPacket::Publish {
                topic,
                packet_id,
                qos,
                retain,
                payload,
            } => {
                let mut body = Vec::new();
                put_string(&mut body, topic);
                if let Some(id) = packet_id {
                    wire::put_u16(&mut body, *id);
                }
                body.extend_from_slice(payload);
                let flags = (qos << 1) | u8::from(*retain);
                (flags, body)
            }
            MqttPacket::PubAck { packet_id } => (0, packet_id.to_be_bytes().to_vec()),
            MqttPacket::Subscribe {
                packet_id,
                topic,
                qos,
            } => {
                let mut body = Vec::new();
                wire::put_u16(&mut body, *packet_id);
                put_string(&mut body, topic);
                body.push(*qos);
                (0b0010, body)
            }
            MqttPacket::SubAck {
                packet_id,
                return_code,
            } => {
                let mut body = packet_id.to_be_bytes().to_vec();
                body.push(*return_code);
                (0, body)
            }
            MqttPacket::PingReq | MqttPacket::PingResp | MqttPacket::Disconnect => (0, Vec::new()),
            MqttPacket::Other { flags, body, .. } => (*flags, body.clone()),
        };
        let mut out = Vec::with_capacity(body.len() + 5);
        out.push((self.packet_type() << 4) | (flags & 0x0f));
        encode_remaining_length(&mut out, body.len());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a packet from the start of `buf`, returning the packet and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, a malformed remaining-length varint,
    /// or a structurally invalid body for a supported type.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), ParseError> {
        let first = wire::get_u8(buf, 0, "mqtt fixed header")?;
        let ptype = first >> 4;
        let flags = first & 0x0f;
        let (remaining, len_bytes) = decode_remaining_length(&buf[1..])?;
        let body_start = 1 + len_bytes;
        let total = body_start + remaining;
        wire::require(buf, total, "mqtt body")?;
        let body = &buf[body_start..total];
        let packet = match ptype {
            packet_type::CONNECT => decode_connect(body)?,
            packet_type::CONNACK => {
                wire::require(body, 2, "mqtt connack")?;
                MqttPacket::ConnAck {
                    session_present: body[0] & 1 != 0,
                    return_code: body[1],
                }
            }
            packet_type::PUBLISH => decode_publish(flags, body)?,
            packet_type::PUBACK => MqttPacket::PubAck {
                packet_id: wire::get_u16(body, 0, "mqtt puback id")?,
            },
            packet_type::SUBSCRIBE => {
                let packet_id = wire::get_u16(body, 0, "mqtt subscribe id")?;
                let (topic, used) = get_string(&body[2..], "mqtt subscribe topic")?;
                let qos = wire::get_u8(body, 2 + used, "mqtt subscribe qos")?;
                MqttPacket::Subscribe {
                    packet_id,
                    topic,
                    qos,
                }
            }
            packet_type::SUBACK => MqttPacket::SubAck {
                packet_id: wire::get_u16(body, 0, "mqtt suback id")?,
                return_code: wire::get_u8(body, 2, "mqtt suback code")?,
            },
            packet_type::PINGREQ => MqttPacket::PingReq,
            packet_type::PINGRESP => MqttPacket::PingResp,
            packet_type::DISCONNECT => MqttPacket::Disconnect,
            other => MqttPacket::Other {
                packet_type: other,
                flags,
                body: body.to_vec(),
            },
        };
        Ok((packet, total))
    }
}

fn decode_connect(body: &[u8]) -> Result<MqttPacket, ParseError> {
    let (proto, mut at) = get_string(body, "mqtt protocol name")?;
    if proto != "MQTT" && proto != "MQIsdp" {
        return Err(ParseError::invalid(
            "mqtt connect",
            format!("unexpected protocol name {proto:?}"),
        ));
    }
    at += 1; // protocol level
    let connect_flags = wire::get_u8(body, at, "mqtt connect flags")?;
    let keep_alive = wire::get_u16(body, at + 1, "mqtt keep alive")?;
    let (client_id, _) = get_string(&body[at + 3..], "mqtt client id")?;
    Ok(MqttPacket::Connect {
        keep_alive,
        client_id,
        connect_flags,
    })
}

fn decode_publish(flags: u8, body: &[u8]) -> Result<MqttPacket, ParseError> {
    let qos = (flags >> 1) & 0x03;
    if qos == 3 {
        return Err(ParseError::invalid("mqtt publish", "qos 3 is reserved"));
    }
    let retain = flags & 0x01 != 0;
    let (topic, mut at) = get_string(body, "mqtt topic")?;
    let packet_id = if qos > 0 {
        let id = wire::get_u16(body, at, "mqtt publish id")?;
        at += 2;
        Some(id)
    } else {
        None
    };
    Ok(MqttPacket::Publish {
        topic,
        packet_id,
        qos,
        retain,
        payload: body[at..].to_vec(),
    })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    wire::put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], what: &'static str) -> Result<(String, usize), ParseError> {
    let len = usize::from(wire::get_u16(buf, 0, what)?);
    let end = 2 + len;
    let bytes = buf
        .get(2..end)
        .ok_or_else(|| ParseError::truncated(what, end, buf.len()))?;
    let s =
        std::str::from_utf8(bytes).map_err(|_| ParseError::invalid(what, "string is not utf-8"))?;
    Ok((s.to_owned(), end))
}

/// Encodes the MQTT remaining-length varint.
fn encode_remaining_length(out: &mut Vec<u8>, mut len: usize) {
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if len == 0 {
            break;
        }
    }
}

/// Decodes the MQTT remaining-length varint, returning (value, bytes used).
fn decode_remaining_length(buf: &[u8]) -> Result<(usize, usize), ParseError> {
    let mut value = 0usize;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().take(4).enumerate() {
        value |= usize::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if buf.len() < 4 {
        Err(ParseError::truncated(
            "mqtt remaining length",
            buf.len() + 1,
            buf.len(),
        ))
    } else {
        Err(ParseError::invalid(
            "mqtt remaining length",
            "varint longer than 4 bytes",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(p: MqttPacket) {
        let bytes = p.encode();
        let (decoded, used) = MqttPacket::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, p);
    }

    #[test]
    fn round_trip_connect() {
        round_trip(MqttPacket::Connect {
            keep_alive: 60,
            client_id: "sensor-12".into(),
            connect_flags: 0x02,
        });
    }

    #[test]
    fn round_trip_publish_qos0() {
        round_trip(MqttPacket::Publish {
            topic: "home/temp".into(),
            packet_id: None,
            qos: 0,
            retain: false,
            payload: b"21.5".to_vec(),
        });
    }

    #[test]
    fn round_trip_publish_qos1_retained() {
        round_trip(MqttPacket::Publish {
            topic: "home/door".into(),
            packet_id: Some(77),
            qos: 1,
            retain: true,
            payload: b"open".to_vec(),
        });
    }

    #[test]
    fn round_trip_control_packets() {
        round_trip(MqttPacket::ConnAck {
            session_present: true,
            return_code: 0,
        });
        round_trip(MqttPacket::PubAck { packet_id: 3 });
        round_trip(MqttPacket::Subscribe {
            packet_id: 9,
            topic: "home/#".into(),
            qos: 1,
        });
        round_trip(MqttPacket::SubAck {
            packet_id: 9,
            return_code: 1,
        });
        round_trip(MqttPacket::PingReq);
        round_trip(MqttPacket::PingResp);
        round_trip(MqttPacket::Disconnect);
    }

    #[test]
    fn remaining_length_multi_byte() {
        let p = MqttPacket::Publish {
            topic: "t".into(),
            packet_id: None,
            qos: 0,
            retain: false,
            payload: vec![0xaa; 300],
        };
        let bytes = p.encode();
        // 300 + 3 (topic) > 127, so the varint must be 2 bytes.
        assert!(bytes[1] & 0x80 != 0);
        round_trip(p);
    }

    #[test]
    fn rejects_qos3() {
        let mut bytes = MqttPacket::Publish {
            topic: "t".into(),
            packet_id: Some(1),
            qos: 1,
            retain: false,
            payload: vec![],
        }
        .encode();
        bytes[0] |= 0b0110; // set both QoS bits
        assert!(MqttPacket::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_wrong_protocol_name() {
        let mut bytes = MqttPacket::Connect {
            keep_alive: 10,
            client_id: "x".into(),
            connect_flags: 0,
        }
        .encode();
        // Corrupt the protocol name.
        bytes[4] = b'X';
        assert!(MqttPacket::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_type_is_preserved() {
        let p = MqttPacket::Other {
            packet_type: 15,
            flags: 0x0a,
            body: vec![1, 2, 3],
        };
        round_trip(p);
    }

    #[test]
    fn truncated_body_is_rejected() {
        let bytes = MqttPacket::PingReq.encode();
        // The 1-byte slice is missing the remaining-length byte.
        assert!(MqttPacket::decode(&bytes[..1]).is_err());
        assert!(MqttPacket::decode(&bytes).is_ok());
        let publish = MqttPacket::Publish {
            topic: "abc".into(),
            packet_id: None,
            qos: 0,
            retain: false,
            payload: b"xyz".to_vec(),
        }
        .encode();
        assert!(MqttPacket::decode(&publish[..4]).is_err());
    }
}
