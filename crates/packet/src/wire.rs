//! Bounds-checked big-endian byte accessors shared by all header codecs.

use crate::error::ParseError;

/// Reads a `u8` at `offset`, reporting `what` on truncation.
pub fn get_u8(buf: &[u8], offset: usize, what: &'static str) -> Result<u8, ParseError> {
    buf.get(offset)
        .copied()
        .ok_or_else(|| ParseError::truncated(what, offset + 1, buf.len()))
}

/// Reads a big-endian `u16` at `offset`.
pub fn get_u16(buf: &[u8], offset: usize, what: &'static str) -> Result<u16, ParseError> {
    let end = offset + 2;
    let bytes = buf
        .get(offset..end)
        .ok_or_else(|| ParseError::truncated(what, end, buf.len()))?;
    Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
}

/// Reads a big-endian `u32` at `offset`.
pub fn get_u32(buf: &[u8], offset: usize, what: &'static str) -> Result<u32, ParseError> {
    let end = offset + 4;
    let bytes = buf
        .get(offset..end)
        .ok_or_else(|| ParseError::truncated(what, end, buf.len()))?;
    Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Reads exactly `N` bytes starting at `offset`.
pub fn get_array<const N: usize>(
    buf: &[u8],
    offset: usize,
    what: &'static str,
) -> Result<[u8; N], ParseError> {
    let end = offset + N;
    let bytes = buf
        .get(offset..end)
        .ok_or_else(|| ParseError::truncated(what, end, buf.len()))?;
    let mut out = [0u8; N];
    out.copy_from_slice(bytes);
    Ok(out)
}

/// Ensures `buf` holds at least `needed` bytes.
pub fn require(buf: &[u8], needed: usize, what: &'static str) -> Result<(), ParseError> {
    if buf.len() < needed {
        Err(ParseError::truncated(what, needed, buf.len()))
    } else {
        Ok(())
    }
}

/// Appends a big-endian `u16` to `out`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u32` to `out`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_u16_reads_big_endian() {
        let buf = [0x12, 0x34, 0x56];
        assert_eq!(get_u16(&buf, 0, "x").unwrap(), 0x1234);
        assert_eq!(get_u16(&buf, 1, "x").unwrap(), 0x3456);
    }

    #[test]
    fn get_u16_reports_truncation() {
        let buf = [0x12];
        let err = get_u16(&buf, 0, "field").unwrap_err();
        assert_eq!(
            err,
            ParseError::Truncated {
                what: "field",
                needed: 2,
                available: 1
            }
        );
    }

    #[test]
    fn get_u32_round_trip() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xdead_beef);
        assert_eq!(get_u32(&out, 0, "x").unwrap(), 0xdead_beef);
    }

    #[test]
    fn get_array_reads_exact() {
        let buf = [1, 2, 3, 4, 5];
        let a: [u8; 3] = get_array(&buf, 1, "x").unwrap();
        assert_eq!(a, [2, 3, 4]);
        assert!(get_array::<4>(&buf, 3, "x").is_err());
    }

    #[test]
    fn require_checks_length() {
        assert!(require(&[0u8; 4], 4, "x").is_ok());
        assert!(require(&[0u8; 3], 4, "x").is_err());
    }
}
